//! The bypass attack the paper's Figure 2 discussion warns about: a client
//! that connects with the standard driver, skipping the proxy, is not
//! tracked — its transactions cannot be identified or selectively rolled
//! back. These tests document that limitation and show the dual-proxy
//! deployment's tracking still covers proxied clients.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_core::{Flavor, ProxyPlacement, ResilientDb, Value};

#[test]
fn bypassing_attacker_is_invisible_to_dependency_tracking() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut good = rdb.connect().unwrap();
    good.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    good.execute("INSERT INTO t (id, v) VALUES (1, 1)").unwrap();

    // The attacker uses a standard driver, bypassing the proxy.
    let mut evil = rdb.connect_untracked().unwrap();
    evil.execute("UPDATE t SET v = 666 WHERE id = 1").unwrap();

    let analysis = rdb.analyze().unwrap();
    // Only the legitimate transaction is tracked.
    assert_eq!(analysis.tracked_transactions().len(), 1);

    // The attacker's write IS in the log (it cannot hide from the WAL)…
    let updates = analysis
        .records
        .iter()
        .filter(|r| matches!(r.op, resildb_repair::RepairOp::Update { .. }))
        .count();
    assert_eq!(updates, 1);
    // …but it has no proxy id, so the selective-undo machinery cannot
    // address it: no correlation entry exists.
    let update_rec = analysis
        .records
        .iter()
        .find(|r| matches!(r.op, resildb_repair::RepairOp::Update { .. }))
        .unwrap();
    assert_eq!(
        analysis.correlation.proxy_id(update_rec.internal_txn),
        None,
        "bypass transaction must be uncorrelated"
    );
}

#[test]
fn bypass_write_does_not_break_later_tracking_or_repair() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut good = rdb.connect().unwrap();
    good.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    good.execute("INSERT INTO t (id, v) VALUES (1, 1)").unwrap();

    let mut evil = rdb.connect_untracked().unwrap();
    // The bypass write leaves the trid column untouched (it does not even
    // know about it), so the row still appears to be last written by the
    // loader transaction.
    evil.execute("UPDATE t SET v = 666 WHERE id = 1").unwrap();

    // A tracked attack afterwards is still fully repairable.
    good.execute("ANNOTATE attack").unwrap();
    good.execute("BEGIN").unwrap();
    good.execute("UPDATE t SET v = 777 WHERE id = 1").unwrap();
    good.execute("COMMIT").unwrap();
    let attack = rdb.txn_id_by_label("attack").unwrap().unwrap();
    rdb.repair(&[attack], &[]).unwrap();
    let mut s = rdb.database().session();
    let r = s.query("SELECT v FROM t WHERE id = 1").unwrap();
    // Repair restores the pre-attack image — which includes the bypass
    // write (the framework cannot distinguish it from legitimate data).
    assert_eq!(r.rows[0][0], Value::Int(666));
}

#[test]
fn dual_proxy_tracks_proxied_clients_end_to_end() {
    let rdb = ResilientDb::builder(Flavor::Sybase)
        .placement(ProxyPlacement::Dual)
        .build()
        .unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("ANNOTATE attack").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (1, 666)")
        .unwrap();
    conn.execute("COMMIT").unwrap();
    let attack = rdb.txn_id_by_label("attack").unwrap().unwrap();
    let report = rdb.repair(&[attack], &[]).unwrap();
    assert_eq!(report.undo_set.len(), 1);
    assert_eq!(rdb.database().row_count("t").unwrap(), 0);
}
