//! Whole-system tests of the flight recorder: transaction lifecycles are
//! captured exactly once, repair phases show up in the event window, and
//! a capture round-trips through the forensic exporters into the
//! `resildb-trace` explorer's causal chain.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use proptest::prelude::*;
use resildb_core::telemetry::trace::{parse_capture, to_chrome_trace, to_jsonl};
use resildb_core::{Flavor, ResilientDb, TraceExplorer, TraceSnapshot};

/// Runs `committed` committed transactions (each annotated `txn_<i>`) and
/// `aborted` rolled-back ones against a fresh instance; returns it.
fn run_mixed_workload(committed: usize, aborted: usize) -> ResilientDb {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    for i in 0..committed {
        conn.execute(&format!("ANNOTATE txn_{i}")).unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute(&format!("INSERT INTO t (id, v) VALUES ({i}, {i})"))
            .unwrap();
        if i > 0 {
            conn.execute(&format!("SELECT v FROM t WHERE id = {}", i - 1))
                .unwrap();
        }
        conn.execute("COMMIT").unwrap();
    }
    for j in 0..aborted {
        conn.execute("BEGIN").unwrap();
        conn.execute(&format!("INSERT INTO t (id, v) VALUES ({}, 0)", 10_000 + j))
            .unwrap();
        conn.execute("ROLLBACK").unwrap();
    }
    drop(conn);
    rdb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The lifecycle invariant: every committed tracked transaction
    /// appears in the capture exactly once as TxnBegin and exactly once
    /// as Commit, with no Abort; every rollback contributes exactly one
    /// Abort.
    #[test]
    fn every_committed_txn_begins_and_commits_exactly_once(
        committed in 1usize..8,
        aborted in 0usize..4,
    ) {
        let rdb = run_mixed_workload(committed, aborted);
        let snap = rdb.flight_recorder().snapshot();
        prop_assert_eq!(snap.dropped, 0);
        for i in 0..committed {
            let trid = rdb
                .txn_id_by_label(&format!("txn_{i}"))
                .unwrap()
                .expect("committed txn tracked");
            prop_assert_eq!(snap.count_for(trid, "txn_begin"), 1, "txn {}", trid);
            prop_assert_eq!(snap.count_for(trid, "commit"), 1, "txn {}", trid);
            prop_assert_eq!(snap.count_for(trid, "abort"), 0, "txn {}", trid);
            // Begin precedes commit in tick order.
            let events = snap.events_for(trid);
            let begin_at = events.iter().position(|e| e.kind.name() == "txn_begin");
            let commit_at = events.iter().position(|e| e.kind.name() == "commit");
            prop_assert!(begin_at < commit_at);
        }
        let aborts = snap
            .events
            .iter()
            .filter(|e| e.kind.name() == "abort")
            .count();
        prop_assert_eq!(aborts, aborted);
        // Every commit in the window belongs to a distinct transaction.
        let mut committed_txns: Vec<i64> = snap
            .events
            .iter()
            .filter(|e| e.kind.name() == "commit")
            .map(|e| e.txn)
            .collect();
        let total = committed_txns.len();
        committed_txns.sort_unstable();
        committed_txns.dedup();
        prop_assert_eq!(committed_txns.len(), total);
    }
}

#[test]
fn capture_shows_rewrites_harvests_and_wal_commits() {
    let rdb = run_mixed_workload(3, 0);
    let snap = rdb.flight_recorder().snapshot();
    let names: Vec<&str> = snap.events.iter().map(|e| e.kind.name()).collect();
    for required in [
        "txn_begin",
        "stmt_rewrite",
        "dep_harvested",
        "trans_dep_insert",
        "commit",
        "wal_commit",
    ] {
        assert!(names.contains(&required), "missing {required}: {names:?}");
    }
    // txn_2 read txn_1's row: the harvest must be in the window.
    let t1 = rdb.txn_id_by_label("txn_1").unwrap().unwrap();
    let t2 = rdb.txn_id_by_label("txn_2").unwrap().unwrap();
    assert_eq!(snap.count_for(t2, "dep_harvested"), 1);
    let explorer = TraceExplorer::from_snapshot(snap);
    assert!(explorer.causal_chain(t2).tainted_by.contains(&t1));
}

/// The acceptance scenario: attack → dependent transactions → repair,
/// with the capture exported, re-parsed, and explored for the causal
/// chain — exactly what `resildb-trace <capture> --txn <id>` prints.
#[test]
fn repair_scenario_round_trips_into_causal_chain() {
    let rdb = run_mixed_workload(4, 0);
    // txn_1 is the attack; txn_2 read txn_1's row, txn_3 read txn_2's.
    let attack = rdb.txn_id_by_label("txn_1").unwrap().unwrap();
    let t2 = rdb.txn_id_by_label("txn_2").unwrap().unwrap();
    let t3 = rdb.txn_id_by_label("txn_3").unwrap().unwrap();
    let report = rdb.repair(&[attack], &[]).unwrap();
    assert!(report.undo_set.contains(&t3));

    let snap = rdb.flight_recorder().snapshot();
    // Repair phases made it into the window.
    for required in ["log_scan", "correlate", "closure_computed", "compensated"] {
        assert!(
            snap.events.iter().any(|e| e.kind.name() == required),
            "missing {required}"
        );
    }
    // Each undone transaction got its own compensation tally.
    for txn in &report.undo_set {
        assert_eq!(snap.count_for(*txn, "compensated"), 1, "txn {txn}");
    }

    // Round-trip through both exporters, as `--trace-out` writes them.
    for export in [to_chrome_trace(&snap), to_jsonl(&snap)] {
        let events = parse_capture(&export).unwrap();
        assert_eq!(events, snap.events);
        let explorer = TraceExplorer::from_snapshot(TraceSnapshot::from_events(events));
        let chain = explorer.causal_chain(attack);
        assert!(chain.taints.contains(&t2));
        assert!(chain.taints.contains(&t3));
        let rendered = explorer.render_chain(attack);
        assert!(rendered.contains("taints (damage closure):"));
        assert!(rendered.contains(&t2.to_string()));
        // The per-transaction timeline is part of the chain output.
        assert!(rendered.contains("txn_begin"));
        assert!(rendered.contains("commit"));
    }
}

#[test]
fn flight_recorder_can_be_disabled_and_cleared() {
    let rdb = run_mixed_workload(2, 0);
    assert!(!rdb.flight_recorder().snapshot().events.is_empty());
    rdb.flight_recorder().clear();
    rdb.flight_recorder().set_enabled(false);
    let mut conn = rdb.connect().unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (500, 1)")
        .unwrap();
    drop(conn);
    assert!(rdb.flight_recorder().snapshot().events.is_empty());
}
