//! Tier-1 gate for the scenario fuzzer: replay the checked-in regression
//! corpus and the historical proptest failure seeds, single-threaded and
//! under real threads, and require identical verdicts (all passing — every
//! corpus seed pins a fixed bug).

use std::path::{Path, PathBuf};

use resildb_vopr::corpus::{parse_corpus, seeds_from_proptest_regressions};
use resildb_vopr::{run_seed, Canary, RunOptions, RunReport};

fn repo_file(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn read_repo_file(rel: &str) -> String {
    let path = repo_file(rel);
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("cannot read {}: {e}", path.display()),
    }
}

fn run(seed: u64, threads: usize) -> RunReport {
    run_seed(
        seed,
        &RunOptions {
            threads,
            canary: Canary::None,
        },
    )
}

fn assert_seed_passes(seed: u64, threads: usize) {
    let report = run(seed, threads);
    assert!(
        report.passed(),
        "seed 0x{seed:016x} (threads={threads}) failed:\n  {}",
        report.failures.join("\n  ")
    );
}

/// Replays a seed list at one and four threads and asserts the verdicts
/// agree — and, since every checked-in seed pins a *fixed* bug, pass.
fn assert_verdicts_identical(source: &str, seeds: &[u64]) {
    assert!(!seeds.is_empty(), "{source}: no seeds parsed");
    for &seed in seeds {
        let single = run(seed, 1);
        let threaded = run(seed, 4);
        assert_eq!(
            single.passed(),
            threaded.passed(),
            "{source} seed 0x{seed:016x}: verdict differs between threads=1 \
             ({:?}) and threads=4 ({:?})",
            single.failures,
            threaded.failures
        );
        assert!(
            single.passed(),
            "{source} seed 0x{seed:016x} regressed:\n  {}",
            single.failures.join("\n  ")
        );
    }
}

#[test]
fn smoke_seeds_pass_single_threaded() {
    for seed in 1..=10 {
        assert_seed_passes(seed, 1);
    }
}

#[test]
fn smoke_seeds_pass_with_threads() {
    for seed in 1..=10 {
        assert_seed_passes(seed, 4);
    }
}

#[test]
fn corpus_replays_clean_in_both_modes() {
    let text = read_repo_file("ci/vopr-corpus.txt");
    let seeds = match parse_corpus(&text) {
        Ok(s) => s,
        Err(e) => panic!("ci/vopr-corpus.txt is malformed: {e}"),
    };
    assert_verdicts_identical("corpus", &seeds);
}

#[test]
fn proptest_regression_seeds_replay_clean_in_both_modes() {
    for rel in [
        "tests/property_repair.proptest-regressions",
        "tests/proxy_transparency.proptest-regressions",
    ] {
        let seeds = seeds_from_proptest_regressions(&read_repo_file(rel));
        assert_verdicts_identical(rel, &seeds);
    }
}
