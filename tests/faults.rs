//! Fault-injection suite: the paper's failure-atomicity claims under every
//! named failpoint.
//!
//! Three invariants are asserted across wire, proxy, engine and repair
//! injections:
//!
//! 1. dependency records are never half-written — `trans_dep` (and the
//!    provenance/annotation tables) either describe a committed
//!    transaction or carry nothing of it;
//! 2. proxy and engine transaction state never diverge — after any failed
//!    commit the connection supports a fresh `BEGIN` and a fresh
//!    connection sees no leftover effects;
//! 3. a failed repair sweep rolls the database back to its pre-repair
//!    state.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_core::{
    failpoints, FaultAction, FaultTrigger, Flavor, Micros, ResilientDb, Response, Value, WireError,
};

/// Tracked database with `t(id, v)` seeded through the proxy.
fn setup() -> ResilientDb {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    for id in 1..=3 {
        conn.execute(&format!("INSERT INTO t (id, v) VALUES ({id}, {id})"))
            .unwrap();
    }
    rdb
}

fn counts(rdb: &ResilientDb) -> (u64, u64, u64) {
    let db = rdb.database();
    (
        db.row_count("t").unwrap(),
        db.row_count("trans_dep").unwrap(),
        db.row_count("trans_dep_prov").unwrap(),
    )
}

/// Sorted full contents of `table`, for before/after state comparison.
fn snapshot(rdb: &ResilientDb, table: &str) -> Vec<String> {
    let mut rows: Vec<String> = rdb
        .database()
        .snapshot_rows(table)
        .unwrap()
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    rows
}

/// After a failed commit, the same connection must accept a fresh
/// transaction end-to-end (invariant 2): before the divergence fix the
/// proxy forgot the transaction while the engine kept it open, so the next
/// BEGIN died with "BEGIN inside an open transaction".
fn assert_connection_recovers(rdb: &ResilientDb, conn: &mut dyn resildb_core::Connection) {
    let (t, deps, _) = counts(rdb);
    conn.execute("BEGIN").expect("fresh BEGIN after failure");
    conn.execute("INSERT INTO t (id, v) VALUES (90, 90)")
        .unwrap();
    conn.execute("COMMIT").unwrap();
    assert_eq!(counts(rdb).0, t + 1, "recovered transaction applies");
    assert_eq!(counts(rdb).1, deps + 1, "and is tracked");
    conn.execute("DELETE FROM t WHERE id = 90").unwrap();
}

// --- proxy failpoints ---------------------------------------------------

#[test]
fn failed_trans_dep_insert_aborts_the_whole_transaction() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let before = counts(&rdb);

    rdb.database().sim().faults().arm(
        failpoints::PROXY_BEFORE_TRANS_DEP_INSERT,
        FaultAction::Error,
        FaultTrigger::Once,
    );
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (10, 10)")
        .unwrap();
    let err = conn.execute("COMMIT").unwrap_err();
    assert!(matches!(err, WireError::Protocol(_)), "got {err}");

    // Invariant 1: nothing of the transaction is visible — not the user
    // write, not a half-written dependency record.
    assert_eq!(
        counts(&rdb),
        before,
        "injected commit failure must leak nothing"
    );
    // Invariant 2: proxy and engine agree the transaction is gone.
    assert_connection_recovers(&rdb, &mut *conn);
    assert_eq!(
        rdb.database()
            .sim()
            .faults()
            .fired(failpoints::PROXY_BEFORE_TRANS_DEP_INSERT),
        1
    );
}

#[test]
fn failure_after_trans_dep_insert_leaves_no_half_record() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let before = counts(&rdb);

    rdb.database().sim().faults().arm(
        failpoints::PROXY_AFTER_TRANS_DEP_INSERT,
        FaultAction::Error,
        FaultTrigger::Once,
    );
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT v FROM t WHERE id = 1").unwrap();
    conn.execute("UPDATE t SET v = 99 WHERE id = 1").unwrap();
    conn.execute("COMMIT").unwrap_err();

    // The trans_dep row WAS inserted downstream before the fault — the
    // §3.3 atomicity guarantee is exactly that the rollback takes it away
    // with the rest of the transaction.
    assert_eq!(counts(&rdb), before);
    let mut s = rdb.database().session();
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 1").unwrap().rows[0][0],
        Value::Int(1),
        "user update must be rolled back"
    );
    assert_connection_recovers(&rdb, &mut *conn);
}

#[test]
fn failure_just_before_commit_forwarding_aborts_cleanly() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let before = counts(&rdb);

    rdb.database().sim().faults().arm(
        failpoints::PROXY_BEFORE_COMMIT,
        FaultAction::Error,
        FaultTrigger::Once,
    );
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (11, 11)")
        .unwrap();
    conn.execute("COMMIT").unwrap_err();

    assert_eq!(counts(&rdb), before);
    assert_connection_recovers(&rdb, &mut *conn);
}

#[test]
fn rewrite_failpoint_fails_statement_without_touching_the_dbms() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let before = counts(&rdb);

    rdb.database().sim().faults().arm(
        failpoints::PROXY_BEFORE_REWRITE,
        FaultAction::Error,
        FaultTrigger::Once,
    );
    conn.execute("INSERT INTO t (id, v) VALUES (12, 12)")
        .unwrap_err();
    assert_eq!(
        counts(&rdb),
        before,
        "statement failed before reaching the DBMS"
    );
    // The implicit-transaction path must be reusable immediately.
    conn.execute("INSERT INTO t (id, v) VALUES (12, 12)")
        .unwrap();
    assert_eq!(counts(&rdb).0, before.0 + 1);
}

#[test]
fn harvest_failure_in_explicit_transaction_leaves_it_open_and_consistent() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();

    rdb.database().sim().faults().arm(
        failpoints::PROXY_HARVEST,
        FaultAction::Error,
        FaultTrigger::Once,
    );
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT v FROM t WHERE id = 2").unwrap_err();
    // The failure hit result post-processing: the transaction is still
    // open on both sides and the client decides its fate.
    conn.execute("UPDATE t SET v = 20 WHERE id = 2").unwrap();
    conn.execute("ROLLBACK").unwrap();
    let mut s = rdb.database().session();
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 2").unwrap().rows[0][0],
        Value::Int(2)
    );
    assert_connection_recovers(&rdb, &mut *conn);
}

// --- engine failpoints --------------------------------------------------

#[test]
fn engine_commit_record_failure_aborts_transaction_on_both_sides() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let before = counts(&rdb);

    rdb.database().sim().faults().arm(
        failpoints::ENGINE_WAL_COMMIT,
        FaultAction::Error,
        FaultTrigger::Once,
    );
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (13, 13)")
        .unwrap();
    let err = conn.execute("COMMIT").unwrap_err();
    assert!(
        matches!(&err, WireError::Db(e) if e.to_string().contains("engine.wal_commit")),
        "got {err}"
    );

    // The engine rolled back user write AND tracking rows together.
    assert_eq!(counts(&rdb), before);
    assert_connection_recovers(&rdb, &mut *conn);
}

#[test]
fn wal_append_failure_mid_statement_rolls_back_every_row() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let before = counts(&rdb);

    // Fail the SECOND row append of a three-row INSERT: the first row is
    // already in the table and must be undone.
    rdb.database().sim().faults().arm(
        failpoints::ENGINE_WAL_APPEND,
        FaultAction::Error,
        FaultTrigger::OnHit(2),
    );
    conn.execute("INSERT INTO t (id, v) VALUES (14, 14), (15, 15), (16, 16)")
        .unwrap_err();
    rdb.database().sim().faults().disarm_all();

    assert_eq!(counts(&rdb), before, "partial multi-row insert must vanish");
    conn.execute("INSERT INTO t (id, v) VALUES (14, 14)")
        .unwrap();
    assert_eq!(counts(&rdb).0, before.0 + 1);
}

// --- wire failpoints ----------------------------------------------------

#[test]
fn connection_drop_mid_transaction_rolls_back_and_poisons_the_connection() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let before = counts(&rdb);

    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (17, 17)")
        .unwrap();
    rdb.database().sim().faults().arm(
        failpoints::WIRE_CONN_DROP,
        FaultAction::Disconnect,
        FaultTrigger::Once,
    );
    assert!(matches!(
        conn.execute("INSERT INTO t (id, v) VALUES (18, 18)"),
        Err(WireError::ConnectionDropped)
    ));
    // Every later use of the severed connection fails fast.
    assert!(matches!(
        conn.execute("SELECT v FROM t"),
        Err(WireError::ConnectionDropped)
    ));

    // The server rolled the open transaction back: a fresh connection sees
    // no leftover state, and nothing was half-tracked.
    assert_eq!(counts(&rdb), before);
    let mut fresh = rdb.connect().unwrap();
    assert_connection_recovers(&rdb, &mut *fresh);
}

#[test]
fn latency_fault_charges_the_virtual_clock_and_nothing_else() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let sim = rdb.database().sim().clone();

    let t0 = sim.clock().now();
    sim.faults().arm(
        failpoints::WIRE_LATENCY,
        FaultAction::Delay(Micros::new(250_000)),
        FaultTrigger::Once,
    );
    let resp = conn.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert!(matches!(resp, Response::Rows(_)));
    assert!(
        sim.clock().now() - t0 >= Micros::new(250_000),
        "injected latency must reach the virtual clock"
    );
    assert_eq!(sim.stats().injected_delays.get(), 1);
}

// --- repair failpoints --------------------------------------------------

/// Stages two annotated attack transactions whose repair needs multiple
/// compensating statements, then returns the attack transaction ids.
fn stage_attack(rdb: &ResilientDb) -> Vec<i64> {
    let mut conn = rdb.connect().unwrap();
    conn.execute("ANNOTATE attack1").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE t SET v = 666 WHERE id = 1").unwrap();
    conn.execute("UPDATE t SET v = 667 WHERE id = 2").unwrap();
    conn.execute("COMMIT").unwrap();
    conn.execute("ANNOTATE attack2").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (50, 668)")
        .unwrap();
    conn.execute("COMMIT").unwrap();
    vec![
        rdb.txn_id_by_label("attack1").unwrap().expect("tracked"),
        rdb.txn_id_by_label("attack2").unwrap().expect("tracked"),
    ]
}

#[test]
fn failed_mid_sweep_repair_rolls_back_to_pre_repair_state() {
    let rdb = setup();
    let attacks = stage_attack(&rdb);
    let tainted = snapshot(&rdb, "t");

    // Fail between compensating statements: some compensations have
    // already executed when the sweep dies.
    rdb.database().sim().faults().arm(
        failpoints::REPAIR_MID_SWEEP,
        FaultAction::Error,
        FaultTrigger::Once,
    );
    rdb.repair(&attacks, &[]).unwrap_err();

    // Invariant 3: the half-done sweep must leave no trace.
    assert_eq!(
        snapshot(&rdb, "t"),
        tainted,
        "failed repair must roll back to the pre-repair state"
    );

    // With the fault cleared the same repair succeeds fully.
    rdb.database().sim().faults().disarm_all();
    rdb.repair(&attacks, &[]).unwrap();
    let mut s = rdb.database().session();
    let r = s.query("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    let r = s.query("SELECT v FROM t WHERE id = 2").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 50").unwrap().rows.len(),
        0
    );
}

#[test]
fn failure_before_repair_commit_rolls_back_the_entire_sweep() {
    let rdb = setup();
    let attacks = stage_attack(&rdb);
    let tainted = snapshot(&rdb, "t");

    rdb.database().sim().faults().arm(
        failpoints::REPAIR_BEFORE_COMMIT,
        FaultAction::Error,
        FaultTrigger::Once,
    );
    rdb.repair(&attacks, &[]).unwrap_err();
    assert_eq!(snapshot(&rdb, "t"), tainted);

    rdb.database().sim().faults().disarm_all();
    rdb.repair(&attacks, &[]).unwrap();
    let mut s = rdb.database().session();
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 1").unwrap().rows[0][0],
        Value::Int(1)
    );
}

// --- registry mechanics through the full stack --------------------------

#[test]
fn panic_failpoint_is_one_shot_and_survivable() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();

    rdb.database().sim().faults().arm(
        failpoints::PROXY_BEFORE_REWRITE,
        FaultAction::Panic,
        FaultTrigger::Always,
    );
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = conn.execute("SELECT v FROM t");
    }));
    assert!(caught.is_err(), "panic failpoint must unwind");

    // One-shot: the failpoint disarmed itself, the stack is usable again.
    assert!(!rdb.database().sim().faults().active());
    conn.execute("SELECT v FROM t").unwrap();
}

#[test]
fn hit_counters_observe_traffic_and_scripts_fire_on_the_exact_hit() {
    let rdb = setup();
    let faults = rdb.database().sim().faults();
    let mut conn = rdb.connect().unwrap();

    // A counting-only probe on the WAL: three single-row inserts are three
    // row appends plus three commit records.
    faults.trace(failpoints::ENGINE_WAL_APPEND);
    for id in 30..33 {
        conn.execute(&format!("INSERT INTO t (id, v) VALUES ({id}, 0)"))
            .unwrap();
    }
    let hits = faults.hits(failpoints::ENGINE_WAL_APPEND);
    assert!(hits >= 6, "expected >= 6 WAL appends, saw {hits}");

    // Scripted trigger through the stack: only the 2nd statement fails.
    faults.arm(
        failpoints::PROXY_BEFORE_REWRITE,
        FaultAction::Error,
        FaultTrigger::OnHit(2),
    );
    conn.execute("SELECT v FROM t WHERE id = 30").unwrap();
    conn.execute("SELECT v FROM t WHERE id = 31").unwrap_err();
    conn.execute("SELECT v FROM t WHERE id = 32").unwrap();
    assert_eq!(faults.fired(failpoints::PROXY_BEFORE_REWRITE), 1);
    faults.disarm_all();
}

#[test]
fn disarmed_plan_is_invisible_to_the_workload() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let faults = rdb.database().sim().faults();

    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT v FROM t").unwrap();
    conn.execute("UPDATE t SET v = 5 WHERE id = 3").unwrap();
    conn.execute("COMMIT").unwrap();

    assert!(!faults.active());
    for p in [
        failpoints::WIRE_CONN_DROP,
        failpoints::ENGINE_WAL_APPEND,
        failpoints::PROXY_BEFORE_TRANS_DEP_INSERT,
        failpoints::REPAIR_MID_SWEEP,
    ] {
        assert_eq!(faults.hits(p), 0, "inactive plans must not even count {p}");
    }
}

// --- organic regressions (no failpoints) for the satellite bugfixes ------

/// Commit-path divergence, triggered without any failpoint: dropping the
/// `trans_dep` table makes the commit-time tracking insert fail for real.
/// Before the fix the proxy forgot the transaction while the engine kept
/// it open, so the connection was wedged ("BEGIN inside an open
/// transaction" forever); the engine transaction also stayed open holding
/// its locks.
#[test]
fn organic_tracking_failure_rolls_back_and_frees_the_connection() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let mut admin = rdb.connect_untracked().unwrap();

    admin.execute("DROP TABLE trans_dep").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (60, 60)")
        .unwrap();
    let err = conn.execute("COMMIT").unwrap_err();
    assert!(matches!(err, WireError::Db(_)), "got {err}");

    // The user write must be gone (the whole transaction aborted)...
    assert_eq!(rdb.database().row_count("t").unwrap(), 3);
    // ...and the connection must not be wedged.
    conn.execute("BEGIN")
        .expect("connection must survive a failed commit");
    conn.execute("ROLLBACK").unwrap();
    // The engine side holds no leftover locks either: another connection
    // can write the same rows.
    admin
        .execute("UPDATE t SET v = 1 WHERE id = 1")
        .expect("no stale locks after aborted commit");
}

/// UTF-8 regression: multi-byte *column names* used to panic the proxy's
/// hidden-column check (`name[..6]`) whenever byte 6 fell inside a
/// character, and multi-byte *statements* used to panic the ANNOTATE
/// prefix check (`trimmed[..9]`).
#[test]
fn non_ascii_identifiers_and_statements_do_not_panic_the_proxy() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();

    // Byte 9 of this statement is inside 'é': the old ANNOTATE check
    // sliced right through it.
    let resp = conn.execute("SELECT 'é'").unwrap();
    match resp {
        Response::Rows(r) => assert_eq!(r.rows[0][0], Value::Str("é".into())),
        other => panic!("expected rows, got {other:?}"),
    }

    // Column name with a char boundary straddling byte 6 ("abcdeé"): the
    // old hidden-column check sliced `name[..6]` and panicked.
    conn.execute("CREATE TABLE \"tablé\" (id INTEGER PRIMARY KEY, \"abcdeé\" INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO \"tablé\" (id, \"abcdeé\") VALUES (1, 7)")
        .unwrap();
    let resp = conn.execute("SELECT * FROM \"tablé\"").unwrap();
    match resp {
        Response::Rows(r) => {
            assert_eq!(r.columns, vec!["id".to_string(), "abcdeé".to_string()]);
            assert_eq!(r.rows, vec![vec![Value::Int(1), Value::Int(7)]]);
        }
        other => panic!("expected rows, got {other:?}"),
    }

    conn.execute("UPDATE \"tablé\" SET \"abcdeé\" = 8 WHERE id = 1")
        .unwrap();
    conn.execute("DELETE FROM \"tablé\" WHERE id = 1").unwrap();
}

/// Repair-atomicity regression without failpoints: tampering makes a
/// compensating statement fail AFTER other compensations already ran.
/// Before the fix the earlier compensations stayed applied (half-repaired
/// database); now the failed sweep rolls back whole.
#[test]
fn organic_repair_failure_is_atomic() {
    let rdb = setup();

    // Attack 1 updates row 1; attack 2 inserts row 51.
    let mut conn = rdb.connect().unwrap();
    conn.execute("ANNOTATE a1").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE t SET v = 666 WHERE id = 1").unwrap();
    conn.execute("COMMIT").unwrap();
    conn.execute("ANNOTATE a2").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (51, 667)")
        .unwrap();
    conn.execute("COMMIT").unwrap();
    let attacks = vec![
        rdb.txn_id_by_label("a1").unwrap().unwrap(),
        rdb.txn_id_by_label("a2").unwrap().unwrap(),
    ];

    // Tamper: delete row 1 out-of-band so attack 1's compensating UPDATE
    // affects zero rows and the sweep errors. The sweep runs backward, so
    // attack 2's compensating DELETE of row 51 executes first.
    let mut admin = rdb.connect_untracked().unwrap();
    admin.execute("DELETE FROM t WHERE id = 1").unwrap();
    let pre_repair = snapshot(&rdb, "t");

    rdb.repair(&attacks, &[]).unwrap_err();
    assert_eq!(
        snapshot(&rdb, "t"),
        pre_repair,
        "row 51 must survive the failed sweep: its compensation was rolled back"
    );
    assert!(
        snapshot(&rdb, "t").iter().any(|r| r.contains("51")),
        "sanity: the tampered snapshot still holds attack 2's row"
    );
}

// --- dependency-ledger retirement under panics, disconnects and drops ----

/// The `proxy.trans_dep.inflight` gauge after every connection has
/// finished; any nonzero value is a permanently-stuck ledger entry.
fn inflight(rdb: &ResilientDb) -> f64 {
    rdb.metrics()
        .gauge("proxy.trans_dep.inflight")
        .unwrap_or(f64::NAN)
}

/// A panic unwinding out of the commit path (here: at the §3.3-critical
/// `trans_dep` insert) skips the tracker's regular retirement statements.
/// The unwind guard must retire the ledger entry anyway — before the fix
/// the gauge reported a phantom in-flight transaction forever.
#[test]
fn panic_mid_commit_cannot_leak_an_inflight_ledger_entry() {
    let rdb = setup();
    assert_eq!(inflight(&rdb), 0.0);
    let mut conn = rdb.connect().unwrap();

    rdb.database().sim().faults().arm(
        failpoints::PROXY_BEFORE_TRANS_DEP_INSERT,
        FaultAction::Panic,
        FaultTrigger::Once,
    );
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (70, 70)")
        .unwrap();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = conn.execute("COMMIT");
    }));
    assert!(caught.is_err(), "panic failpoint must unwind");
    drop(conn);

    assert_eq!(
        inflight(&rdb),
        0.0,
        "panicked commit left a stuck dependency-ledger entry"
    );
    // The factory is still serviceable: a fresh connection tracks normally.
    let before = counts(&rdb);
    let mut conn = rdb.connect().unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (71, 71)")
        .unwrap();
    assert_eq!(counts(&rdb).1, before.1 + 1, "fresh transaction is tracked");
    assert_eq!(inflight(&rdb), 0.0);
}

/// Same invariant when the panic fires inside the *engine's* commit (WAL
/// commit record append), i.e. below the proxy entirely.
#[test]
fn engine_commit_panic_cannot_leak_an_inflight_ledger_entry() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();

    rdb.database().sim().faults().arm(
        failpoints::ENGINE_WAL_COMMIT,
        FaultAction::Panic,
        FaultTrigger::Once,
    );
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (72, 72)")
        .unwrap();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = conn.execute("COMMIT");
    }));
    assert!(caught.is_err(), "panic failpoint must unwind");
    drop(conn);
    assert_eq!(
        inflight(&rdb),
        0.0,
        "engine-level commit panic left a stuck ledger entry"
    );
}

/// A connection severed mid-commit (between the tracking writes and the
/// COMMIT) must retire its ledger entry through the error path.
#[test]
fn mid_commit_disconnect_retires_the_inflight_entry() {
    let rdb = setup();
    let mut conn = rdb.connect().unwrap();
    let aborted_before = rdb.metrics().counter("proxy.trans_dep.aborted");

    rdb.database().sim().faults().arm(
        failpoints::PROXY_BEFORE_COMMIT,
        FaultAction::Disconnect,
        FaultTrigger::Once,
    );
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (73, 73)")
        .unwrap();
    let err = conn.execute("COMMIT").unwrap_err();
    assert!(matches!(err, WireError::ConnectionDropped), "got {err}");
    drop(conn);

    assert_eq!(inflight(&rdb), 0.0, "disconnected commit leaked its entry");
    assert_eq!(
        rdb.metrics().counter("proxy.trans_dep.aborted"),
        aborted_before + 1,
        "the severed transaction must be retired as aborted, exactly once"
    );
}

/// Dropping a connection with a transaction still open (client crash, or
/// a harness giving up on a wedged session) retires the entry via the
/// tracker's Drop — nobody else holds that transaction id.
#[test]
fn dropped_connection_with_open_txn_retires_its_ledger_entry() {
    let rdb = setup();
    let aborted_before = rdb.metrics().counter("proxy.trans_dep.aborted");

    let mut conn = rdb.connect().unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (74, 74)")
        .unwrap();
    assert_eq!(inflight(&rdb), 1.0, "sanity: the open txn is in flight");
    drop(conn);

    assert_eq!(
        inflight(&rdb),
        0.0,
        "dropping a connection mid-transaction leaked its ledger entry"
    );
    assert_eq!(
        rdb.metrics().counter("proxy.trans_dep.aborted"),
        aborted_before + 1
    );
    // The engine side rolled back too: the row never became visible.
    let mut check = rdb.connect().unwrap();
    let rows = check.execute("SELECT v FROM t WHERE id = 74").unwrap();
    assert!(
        matches!(rows, Response::Rows(ref r) if r.rows.is_empty()),
        "open transaction's write must not survive the connection drop"
    );
}
