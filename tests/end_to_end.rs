//! Cross-crate end-to-end test: TPC-C workload through the facade, attack
//! injection, dependency analysis, selective repair, state verification.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_core::{FalseDepRule, Flavor, ResilientDb, Value};
use resildb_tpcc::{Attack, AttackKind, Loader, Mix, TpccConfig, TpccRunner, ATTACK_LABEL};

#[test]
fn tpcc_attack_analysis_and_repair_pipeline() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    let cfg = TpccConfig::tiny();
    Loader::new(cfg.clone(), 17).load(&mut *conn).unwrap();

    // Legitimate pre-attack activity.
    let mut runner = TpccRunner::new(cfg.clone(), 23);
    Mix::standard(20, 5).run(&mut runner, &mut *conn).unwrap();

    // The attack: a forged payment in warehouse 1, district 1.
    Attack {
        kind: AttackKind::ForgedPayment,
        w_id: 1,
        d_id: 1,
        target_id: 1,
    }
    .execute(&mut *conn)
    .unwrap();

    // Legitimate post-attack activity — some of it becomes collateral.
    Mix::standard(40, 6).run(&mut runner, &mut *conn).unwrap();

    let attack = rdb.txn_id_by_label(ATTACK_LABEL).unwrap().expect("tracked");
    let analysis = rdb.analyze().unwrap();

    // Tracking-all closure vs. discarding false ytd dependencies.
    let all = analysis.undo_set(&[attack], &[]);
    let rules = vec![
        FalseDepRule::IgnoreDerivedColumns {
            table: "warehouse".into(),
            columns: vec!["w_ytd".into()],
        },
        FalseDepRule::IgnoreDerivedColumns {
            table: "district".into(),
            columns: vec!["d_ytd".into()],
        },
    ];
    let filtered = analysis.undo_set(&[attack], &rules);
    assert!(
        filtered.len() <= all.len(),
        "filtering can only shrink the undo set"
    );
    assert!(filtered.contains(&attack));

    // DOT export mentions paper-style labels.
    let dot = analysis.to_dot(&filtered);
    assert!(dot.contains("ATTACK"));

    // Execute the repair with the filtered set.
    let tool = rdb.repair_controller();
    let report = tool
        .execute(
            &analysis,
            &resildb_core::RepairPlan::with_undo_set(&[], filtered.clone()),
        )
        .unwrap();
    assert!(report.saved > 0, "legitimate work survives: {report:?}");

    // The forged w_ytd inflation is gone: w_ytd is consistent with the
    // sum of recorded payments (all legitimate payments are ≤ 5000).
    let mut s = rdb.database().session();
    let r = s
        .query("SELECT w_ytd FROM warehouse WHERE w_id = 1")
        .unwrap();
    let Value::Float(ytd) = r.rows[0][0] else {
        panic!()
    };
    assert!(
        ytd < 1_000_000.0,
        "forged million must be rolled back, got {ytd}"
    );
}

#[test]
fn double_repair_is_detected_not_silently_reapplied() {
    let rdb = ResilientDb::new(Flavor::Oracle).unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("ANNOTATE attack").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (1, 666)")
        .unwrap();
    conn.execute("COMMIT").unwrap();
    let attack = rdb.txn_id_by_label("attack").unwrap().unwrap();
    let report = rdb.repair(&[attack], &[]).unwrap();
    assert_eq!(report.undo_set.len(), 1);
    assert_eq!(rdb.database().row_count("t").unwrap(), 0);
    // Repair is not idempotent: the undone transaction's records are still
    // in the historical log, so attempting the same repair again trips the
    // sweep's affected-rows sanity check instead of corrupting state.
    let again = rdb.repair(&[attack], &[]);
    assert!(matches!(again, Err(resildb_core::RepairError::Analysis(_))));
    assert_eq!(rdb.database().row_count("t").unwrap(), 0, "state unchanged");
}

#[test]
fn dual_proxy_placement_tracks_identically() {
    use resildb_core::ProxyPlacement;
    let rdb = ResilientDb::builder(Flavor::Postgres)
        .placement(ProxyPlacement::Dual)
        .build()
        .unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (1, 1)").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT v FROM t WHERE id = 1").unwrap();
    conn.execute("UPDATE t SET v = 2 WHERE id = 1").unwrap();
    conn.execute("COMMIT").unwrap();
    let analysis = rdb.analyze().unwrap();
    assert_eq!(analysis.tracked_transactions().len(), 2);
    // The reader depends on the loader.
    let ids: Vec<i64> = analysis.tracked_transactions().into_iter().collect();
    assert!(analysis.graph.dependencies_of(ids[1]).contains(&ids[0]));
}

#[test]
fn untracked_admin_connection_does_not_pollute_tracking() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut admin = rdb.connect_untracked().unwrap();
    admin
        .execute("CREATE TABLE t (id INTEGER, trid INTEGER)")
        .unwrap();
    admin
        .execute("INSERT INTO t (id, trid) VALUES (1, NULL)")
        .unwrap();
    assert_eq!(rdb.database().row_count("trans_dep").unwrap(), 0);
}
