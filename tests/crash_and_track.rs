//! Interaction of ordinary crash recovery with the tracking layer: the
//! dependency records live in regular tables and the WAL, so they survive
//! a crash, and repair still works afterwards.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_core::{Flavor, ResilientDb, Value};

#[test]
fn tracking_tables_survive_crash_recovery() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (1, 1)").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT v FROM t WHERE id = 1").unwrap();
    conn.execute("UPDATE t SET v = 2 WHERE id = 1").unwrap();
    conn.execute("COMMIT").unwrap();

    let deps_before = rdb.database().row_count("trans_dep").unwrap();
    assert!(deps_before > 0);
    rdb.database().simulate_crash_and_recover().unwrap();
    assert_eq!(rdb.database().row_count("trans_dep").unwrap(), deps_before);
}

#[test]
fn repair_works_after_crash_recovery() {
    let rdb = ResilientDb::new(Flavor::Oracle).unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (1, 1)").unwrap();
    conn.execute("ANNOTATE attack").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE t SET v = 666 WHERE id = 1").unwrap();
    conn.execute("COMMIT").unwrap();
    drop(conn);

    rdb.database().simulate_crash_and_recover().unwrap();

    let attack = rdb.txn_id_by_label("attack").unwrap().expect("tracked");
    rdb.repair(&[attack], &[]).unwrap();
    let mut s = rdb.database().session();
    let r = s.query("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
}

#[test]
fn uncommitted_transaction_lost_in_crash_never_tracked() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (id) VALUES (1)").unwrap();
    // Crash before COMMIT: the open transaction is gone.
    rdb.database().simulate_crash_and_recover().unwrap();
    assert_eq!(rdb.database().row_count("t").unwrap(), 0);
    let analysis = rdb.analyze().unwrap();
    assert!(analysis.tracked_transactions().is_empty());
}
