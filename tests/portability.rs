//! The paper's portability claim, as a test: an identical workload, attack
//! and repair produce identical logical results on all three flavors, even
//! though each flavor's log pipeline is completely different.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_core::{Flavor, ResilientDb, Value};

/// Runs a fixed banking scenario on one flavor and returns
/// (undo-set size, final table contents projected on user columns).
fn run_scenario(flavor: Flavor) -> (usize, Vec<Vec<Value>>) {
    let rdb = ResilientDb::new(flavor).unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, owner VARCHAR(12), bal FLOAT)")
        .unwrap();
    let script: &[(&str, &[&str])] = &[
        (
            "load",
            &["INSERT INTO acct (id, owner, bal) VALUES (1, 'alice', 100.0), (2, 'bob', 50.0), (3, 'carol', 75.0)"],
        ),
        ("attack", &["UPDATE acct SET bal = 1000000.0 WHERE id = 1"]),
        (
            "dep_transfer",
            &[
                "SELECT bal FROM acct WHERE id = 1",
                "UPDATE acct SET bal = bal + 25.0 WHERE id = 2",
            ],
        ),
        (
            "indep_open",
            &["INSERT INTO acct (id, owner, bal) VALUES (4, 'dave', 10.0)"],
        ),
        ("indep_update", &["UPDATE acct SET bal = bal - 5.0 WHERE id = 3"]),
        (
            "dep_close",
            &["SELECT bal FROM acct WHERE id = 2", "DELETE FROM acct WHERE id = 2"],
        ),
    ];
    for (label, stmts) in script {
        conn.execute(&format!("ANNOTATE {label}")).unwrap();
        conn.execute("BEGIN").unwrap();
        for s in *stmts {
            conn.execute(s).unwrap();
        }
        conn.execute("COMMIT").unwrap();
    }
    let attack = rdb.txn_id_by_label("attack").unwrap().unwrap();
    let report = rdb.repair(&[attack], &[]).unwrap();

    let mut s = rdb.database().session();
    let rows = s
        .query("SELECT id, owner, bal FROM acct ORDER BY id")
        .unwrap()
        .rows;
    (report.undo_set.len(), rows)
}

#[test]
fn identical_repair_outcome_on_all_three_flavors() {
    let pg = run_scenario(Flavor::Postgres);
    let ora = run_scenario(Flavor::Oracle);
    let syb = run_scenario(Flavor::Sybase);
    assert_eq!(pg, ora, "PostgreSQL vs Oracle");
    assert_eq!(pg, syb, "PostgreSQL vs Sybase");

    // And the outcome is the *right* one: attack + the two dependent
    // transactions undone; bob's account (deleted by a dependent txn)
    // restored at its pre-attack balance; independents preserved.
    let (undo_len, rows) = pg;
    assert_eq!(undo_len, 3);
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::from("alice"), Value::Float(100.0)],
            vec![Value::Int(2), Value::from("bob"), Value::Float(50.0)],
            vec![Value::Int(3), Value::from("carol"), Value::Float(70.0)],
            vec![Value::Int(4), Value::from("dave"), Value::Float(10.0)],
        ]
    );
}

#[test]
fn all_flavors_expose_a_working_log_adapter() {
    for flavor in Flavor::ALL {
        let rdb = ResilientDb::new(flavor).unwrap();
        let mut conn = rdb.connect().unwrap();
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .unwrap();
        conn.execute("INSERT INTO t (id, v) VALUES (1, 1)").unwrap();
        conn.execute("UPDATE t SET v = 2 WHERE id = 1").unwrap();
        conn.execute("DELETE FROM t WHERE id = 1").unwrap();
        let analysis = rdb.analyze().unwrap();
        let kinds: Vec<&'static str> = analysis
            .records
            .iter()
            .map(|r| match &r.op {
                resildb_repair::RepairOp::Insert { .. } => "I",
                resildb_repair::RepairOp::Delete { .. } => "D",
                resildb_repair::RepairOp::Update { .. } => "U",
                resildb_repair::RepairOp::Commit => "C",
                resildb_repair::RepairOp::Abort => "A",
            })
            .collect();
        assert!(kinds.contains(&"I"), "{flavor}: {kinds:?}");
        assert!(kinds.contains(&"U"), "{flavor}: {kinds:?}");
        assert!(kinds.contains(&"D"), "{flavor}: {kinds:?}");
        // Update/delete dependencies were reconstructed from the log.
        let ids: Vec<i64> = analysis.tracked_transactions().into_iter().collect();
        assert_eq!(ids.len(), 3, "{flavor}");
        assert!(
            analysis.graph.dependencies_of(ids[1]).contains(&ids[0]),
            "{flavor}: update dep missing"
        );
        assert!(
            analysis.graph.dependencies_of(ids[2]).contains(&ids[1]),
            "{flavor}: delete dep missing"
        );
    }
}
