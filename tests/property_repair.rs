//! Property-based whole-system test: for random transactional workloads,
//! selectively undoing a random "attack" transaction leaves the database
//! in exactly the state obtained by replaying only the surviving
//! transactions in their original order.
//!
//! This is the semantic definition of the paper's repair goal ("undo the
//! damage while preserving the effects of good transactions"), used here
//! as an executable oracle.
//!
//! Workload generation never re-inserts a previously deleted primary key:
//! an insert that succeeds *because* an attacker deleted the old row is a
//! dependency through absence, which row-based read-set tracking cannot
//! see — the false-negative class the paper's §3.1 discusses.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resildb_core::{Flavor, ResilientDb, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, v: i64 },
    Update { id: i64, delta: i64 },
    Delete { id: i64 },
    Read { id: i64 },
}

#[derive(Debug, Clone)]
struct Txn {
    label: String,
    ops: Vec<Op>,
}

/// Generates a valid workload: every op targets a live id; inserted ids
/// are never reused.
fn generate_workload(seed: u64, txn_count: usize) -> Vec<Txn> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<i64> = Vec::new();
    let mut next_id = 1i64;
    let mut txns = Vec::with_capacity(txn_count);
    for t in 0..txn_count {
        let op_count = rng.gen_range(1..=4);
        let mut ops = Vec::with_capacity(op_count);
        for op_no in 0..op_count {
            // Read-only transactions are not tracked (they cannot pollute
            // the database), so make sure the first op of each txn writes.
            let choice = if op_no == 0 {
                rng.gen_range(0..6)
            } else {
                rng.gen_range(0..10)
            };
            if live.is_empty() || choice < 3 {
                let id = next_id;
                next_id += 1;
                live.push(id);
                ops.push(Op::Insert {
                    id,
                    v: rng.gen_range(0..100),
                });
            } else if choice < 6 {
                let id = live[rng.gen_range(0..live.len())];
                ops.push(Op::Update {
                    id,
                    delta: rng.gen_range(-5..=5),
                });
            } else if choice < 8 {
                let id = live[rng.gen_range(0..live.len())];
                ops.push(Op::Read { id });
            } else {
                let idx = rng.gen_range(0..live.len());
                let id = live.swap_remove(idx);
                ops.push(Op::Delete { id });
            }
        }
        txns.push(Txn {
            label: format!("txn_{t}"),
            ops,
        });
    }
    txns
}

fn run_workload(rdb: &ResilientDb, txns: &[Txn]) {
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    for txn in txns {
        conn.execute(&format!("ANNOTATE {}", txn.label)).unwrap();
        conn.execute("BEGIN").unwrap();
        for op in &txn.ops {
            let sql = match op {
                Op::Insert { id, v } => format!("INSERT INTO t (id, v) VALUES ({id}, {v})"),
                Op::Update { id, delta } => {
                    format!("UPDATE t SET v = v + {delta} WHERE id = {id}")
                }
                Op::Delete { id } => format!("DELETE FROM t WHERE id = {id}"),
                Op::Read { id } => format!("SELECT v FROM t WHERE id = {id}"),
            };
            conn.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
        conn.execute("COMMIT").unwrap();
    }
}

fn final_state(rdb: &ResilientDb) -> Vec<(i64, i64)> {
    let mut s = rdb.database().session();
    s.query("SELECT id, v FROM t ORDER BY id")
        .unwrap()
        .rows
        .into_iter()
        .map(|row| match (&row[0], &row[1]) {
            (Value::Int(a), Value::Int(b)) => (*a, *b),
            other => panic!("{other:?}"),
        })
        .collect()
}

fn check_repair_matches_replay(seed: u64, txn_count: usize, attack_idx: usize, flavor: Flavor) {
    let txns = generate_workload(seed, txn_count);
    let attack_idx = attack_idx % txns.len();

    // World A: full workload, then repair from the attack txn.
    let world_a = ResilientDb::new(flavor).unwrap();
    run_workload(&world_a, &txns);
    let attack = world_a
        .txn_id_by_label(&txns[attack_idx].label)
        .unwrap()
        .expect("attack txn tracked");
    let analysis = world_a.analyze().unwrap();
    let undo = analysis.undo_set(&[attack], &[]);
    // Map undone proxy ids back to workload labels.
    let undone_labels: std::collections::HashSet<String> =
        undo.iter().map(|id| analysis.graph.label(*id)).collect();
    world_a
        .repair_controller()
        .execute(
            &analysis,
            &resildb_core::RepairPlan::with_undo_set(&[], undo.clone()),
        )
        .unwrap();

    // World B: replay only the surviving transactions.
    let survivors: Vec<Txn> = txns
        .iter()
        .filter(|t| !undone_labels.contains(&t.label))
        .cloned()
        .collect();
    let world_b = ResilientDb::new(flavor).unwrap();
    run_workload(&world_b, &survivors);

    assert_eq!(
        final_state(&world_a),
        final_state(&world_b),
        "seed {seed}, {txn_count} txns, attack {attack_idx} ({}), undone {undone_labels:?}",
        txns[attack_idx].label
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn repair_equals_replay_of_survivors_postgres(
        seed in 0u64..10_000,
        txn_count in 3usize..14,
        attack_idx in 0usize..14,
    ) {
        check_repair_matches_replay(seed, txn_count, attack_idx, Flavor::Postgres);
    }

    #[test]
    fn repair_equals_replay_of_survivors_sybase(
        seed in 0u64..10_000,
        txn_count in 3usize..10,
        attack_idx in 0usize..10,
    ) {
        check_repair_matches_replay(seed, txn_count, attack_idx, Flavor::Sybase);
    }

    #[test]
    fn repair_equals_replay_of_survivors_oracle(
        seed in 0u64..10_000,
        txn_count in 3usize..10,
        attack_idx in 0usize..10,
    ) {
        check_repair_matches_replay(seed, txn_count, attack_idx, Flavor::Oracle);
    }
}
