//! End-to-end tests of column-level (per-attribute) dependency tracking —
//! the §6 extension: false sharing disappears *without* any DBA rules.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_core::{Flavor, ResilientDb, TrackingGranularity, Value};

#[test]
fn facade_exposes_column_granularity() {
    let rdb = ResilientDb::builder(Flavor::Postgres)
        .granularity(TrackingGranularity::Column)
        .build()
        .unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER)")
        .unwrap();
    let schema = rdb.database().table("t").unwrap().read().schema().clone();
    assert!(schema.has_column("trid"));
    assert!(schema.has_column("trid__a"));
    assert!(schema.has_column("trid__b"));
}

#[test]
fn false_sharing_vanishes_without_rules() {
    // The paper's §5.3 scenario, with NO DBA rules at all.
    let rdb = ResilientDb::builder(Flavor::Postgres)
        .granularity(TrackingGranularity::Column)
        .build()
        .unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE warehouse (w_id INTEGER PRIMARY KEY, w_tax FLOAT, w_ytd FLOAT)")
        .unwrap();
    conn.execute("INSERT INTO warehouse (w_id, w_tax, w_ytd) VALUES (1, 0.05, 0.0)")
        .unwrap();

    // Attack bumps only w_ytd.
    conn.execute("ANNOTATE attack").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE warehouse SET w_ytd = w_ytd + 5000.0 WHERE w_id = 1")
        .unwrap();
    conn.execute("COMMIT").unwrap();

    // A New-Order-like txn reads w_tax of the same row and writes.
    conn.execute("ANNOTATE neworder").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT w_tax FROM warehouse WHERE w_id = 1")
        .unwrap();
    conn.execute("UPDATE warehouse SET w_tax = 0.06 WHERE w_id = 1")
        .unwrap();
    conn.execute("COMMIT").unwrap();

    // An audit txn genuinely reads w_ytd and writes.
    conn.execute("ANNOTATE audit").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT w_ytd FROM warehouse WHERE w_id = 1")
        .unwrap();
    conn.execute("UPDATE warehouse SET w_tax = 0.07 WHERE w_id = 1")
        .unwrap();
    conn.execute("COMMIT").unwrap();

    let attack = rdb.txn_id_by_label("attack").unwrap().unwrap();
    let neworder = rdb.txn_id_by_label("neworder").unwrap().unwrap();
    let audit = rdb.txn_id_by_label("audit").unwrap().unwrap();

    let analysis = rdb.analyze().unwrap();
    let undo = analysis.undo_set(&[attack], &[]); // NO rules
    assert!(
        !undo.contains(&neworder),
        "w_tax reader must not depend on a w_ytd writer: {undo:?}"
    );
    assert!(
        undo.contains(&audit),
        "w_ytd reader genuinely depends on the attack: {undo:?}"
    );
}

#[test]
fn per_column_write_write_chains_are_precise() {
    // Two writers touch disjoint columns of one row; a third overwrites
    // one of them. Only the matching chain is dependent.
    let rdb = ResilientDb::builder(Flavor::Oracle)
        .granularity(TrackingGranularity::Column)
        .build()
        .unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t (id, a, b) VALUES (1, 0, 0)")
        .unwrap();
    for (label, stmt) in [
        ("writes_a", "UPDATE t SET a = 1 WHERE id = 1"),
        ("writes_b", "UPDATE t SET b = 2 WHERE id = 1"),
        ("overwrites_a", "UPDATE t SET a = 3 WHERE id = 1"),
    ] {
        conn.execute(&format!("ANNOTATE {label}")).unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute(stmt).unwrap();
        conn.execute("COMMIT").unwrap();
    }
    let writes_a = rdb.txn_id_by_label("writes_a").unwrap().unwrap();
    let writes_b = rdb.txn_id_by_label("writes_b").unwrap().unwrap();
    let overwrites_a = rdb.txn_id_by_label("overwrites_a").unwrap().unwrap();
    let analysis = rdb.analyze().unwrap();
    assert!(analysis
        .graph
        .dependencies_of(overwrites_a)
        .contains(&writes_a));
    assert!(
        !analysis
            .graph
            .dependencies_of(overwrites_a)
            .contains(&writes_b),
        "disjoint-column writers must not chain: {:?}",
        analysis.graph.dependencies_of(overwrites_a)
    );
}

#[test]
fn column_level_repair_round_trips_on_all_flavors() {
    for flavor in Flavor::ALL {
        let rdb = ResilientDb::builder(flavor)
            .granularity(TrackingGranularity::Column)
            .build()
            .unwrap();
        let mut conn = rdb.connect().unwrap();
        conn.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal FLOAT, note VARCHAR(8))")
            .unwrap();
        conn.execute("INSERT INTO acct (id, bal, note) VALUES (1, 100.0, 'ok'), (2, 50.0, 'ok')")
            .unwrap();
        conn.execute("ANNOTATE attack").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("UPDATE acct SET bal = 1000000.0 WHERE id = 1")
            .unwrap();
        conn.execute("COMMIT").unwrap();
        // Dependent via the *bal* column specifically.
        conn.execute("ANNOTATE dep").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("SELECT bal FROM acct WHERE id = 1").unwrap();
        conn.execute("UPDATE acct SET bal = bal + 1.0 WHERE id = 2")
            .unwrap();
        conn.execute("COMMIT").unwrap();
        // Independent: touches only the note column of the same row.
        conn.execute("ANNOTATE indep").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("SELECT note FROM acct WHERE id = 1").unwrap();
        conn.execute("UPDATE acct SET note = 'seen' WHERE id = 2")
            .unwrap();
        conn.execute("COMMIT").unwrap();

        let attack = rdb.txn_id_by_label("attack").unwrap().unwrap();
        let indep = rdb.txn_id_by_label("indep").unwrap().unwrap();
        let report = rdb.repair(&[attack], &[]).unwrap();
        assert!(!report.undo_set.contains(&indep), "{flavor}: {report:?}");
        let mut s = rdb.database().session();
        let r = s.query("SELECT bal, note FROM acct ORDER BY id").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(100.0), "{flavor}");
        assert_eq!(r.rows[1][0], Value::Float(50.0), "{flavor}");
        assert_eq!(
            r.rows[1][1],
            Value::from("seen"),
            "{flavor}: indep preserved"
        );
    }
}
