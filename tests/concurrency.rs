//! Concurrency correctness under real OS threads.
//!
//! The thread-scaling work (striped row latches, group-committed WAL,
//! sharded statement/rewrite caches, sharded dependency store) is only
//! admissible if concurrency changes *nothing observable*: the tracked
//! database must end in byte-for-byte the state a serial execution
//! produces, and the paper's core bookkeeping invariant — every committed
//! transaction leaves exactly one `trans_dep` record — must hold no
//! matter how many sessions commit at once.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::collections::HashSet;
use std::sync::{Arc, Barrier};

use resildb_core::{
    Connection, Database, Driver, Flavor, LinkProfile, NativeDriver, ResilientDb, Response, Value,
};

const THREADS: usize = 4;
const TXNS_PER_THREAD: usize = 12;

/// Deterministic workload for one worker: explicit transactions over a
/// disjoint id range (worker `t` owns ids `t*1000..`). Disjointness makes
/// the interleaving immaterial — any serial order must produce the same
/// final state — while the shared table still forces every worker through
/// the same lock stripes, WAL, and tracking tables.
fn workload(thread: usize) -> Vec<Vec<String>> {
    let base = (thread * 1000) as i64;
    (0..TXNS_PER_THREAD)
        .map(|i| {
            let id = base + i as i64;
            vec![
                format!(
                    "INSERT INTO accounts (id, owner, balance) VALUES ({id}, 'w{thread}', {})",
                    100 + (id % 37)
                ),
                // A read inside the transaction exercises dependency
                // harvesting concurrently with other sessions' writes.
                format!("SELECT balance FROM accounts WHERE id = {id}"),
                format!(
                    "UPDATE accounts SET balance = balance + {} WHERE id = {id}",
                    (id % 7) + 1
                ),
            ]
        })
        .collect()
}

fn run_txn(conn: &mut dyn Connection, stmts: &[String], commit: bool) {
    conn.execute("BEGIN").unwrap();
    for s in stmts {
        conn.execute(s).unwrap_or_else(|e| panic!("{s}: {e}"));
    }
    conn.execute(if commit { "COMMIT" } else { "ROLLBACK" })
        .unwrap();
}

fn rows_debug(conn: &mut dyn Connection, sql: &str) -> String {
    format!("{:?}", conn.execute(sql).unwrap())
}

const CREATE: &str =
    "CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner VARCHAR(8), balance INTEGER)";
const FINAL_STATE: &str = "SELECT id, owner, balance FROM accounts ORDER BY id";

/// Four workers hammer one tracked database from four OS threads; the
/// client-visible final state must be byte-identical to the same
/// workloads run serially on an untracked reference database.
#[test]
fn threaded_final_state_matches_serial_byte_for_byte() {
    // Tracked database, shared by all workers.
    let rdb = Arc::new(ResilientDb::new(Flavor::Postgres).unwrap());
    rdb.connect().unwrap().execute(CREATE).unwrap();

    let barrier = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rdb = Arc::clone(&rdb);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut conn = rdb.connect().unwrap();
                barrier.wait();
                for txn in workload(t) {
                    run_txn(&mut *conn, &txn, true);
                }
            });
        }
    });

    // Serial reference: same workloads, one untracked connection, worker
    // order — the disjoint ranges make any order equivalent.
    let raw_db = Database::in_memory(Flavor::Postgres);
    let mut raw = NativeDriver::new(raw_db, LinkProfile::local())
        .connect()
        .unwrap();
    raw.execute(CREATE).unwrap();
    for t in 0..THREADS {
        for txn in workload(t) {
            run_txn(&mut *raw, &txn, true);
        }
    }

    let expected = rows_debug(&mut *raw, FINAL_STATE);
    let got = rows_debug(&mut *rdb.connect().unwrap(), FINAL_STATE);
    assert_eq!(
        expected, got,
        "threaded tracked execution diverged from serial untracked execution"
    );
    // And through `SELECT *`, which additionally proves the hidden trid
    // column stays stripped under concurrency.
    let expected_star = rows_debug(&mut *raw, "SELECT * FROM accounts ORDER BY id");
    let got_star = rows_debug(
        &mut *rdb.connect().unwrap(),
        "SELECT * FROM accounts ORDER BY id",
    );
    assert_eq!(expected_star, got_star, "SELECT * diverged under threads");
}

/// Extracts the `tr_id` column of every `trans_dep` row via an untracked
/// connection (the proxy hides its own tables from tracked clients).
fn trans_dep_trids(rdb: &ResilientDb) -> Vec<i64> {
    let mut conn = rdb.connect_untracked().unwrap();
    match conn.execute("SELECT tr_id FROM trans_dep").unwrap() {
        Response::Rows(r) => r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Int(i) => *i,
                other => panic!("non-integer tr_id: {other:?}"),
            })
            .collect(),
        other => panic!("expected rows, got {other:?}"),
    }
}

/// The bookkeeping invariant under concurrent commit: every committed
/// write transaction records exactly one `trans_dep` row with a distinct
/// trid, rolled-back transactions record none, and the shared dependency
/// store's counters agree with the table — even with eight sessions
/// committing through the group-commit path at once.
#[test]
fn every_committed_txn_has_exactly_one_dep_record() {
    const STRESS_THREADS: usize = 8;
    const COMMITS: usize = 10;
    const ROLLBACKS: usize = 3;

    let rdb = Arc::new(ResilientDb::new(Flavor::Postgres).unwrap());
    rdb.connect().unwrap().execute(CREATE).unwrap();

    let rows_before = trans_dep_trids(&rdb).len();
    let snap_before = rdb.metrics();
    let committed_before = snap_before.counter("proxy.trans_dep.committed");
    let aborted_before = snap_before.counter("proxy.trans_dep.aborted");

    let barrier = Arc::new(Barrier::new(STRESS_THREADS));
    std::thread::scope(|scope| {
        for t in 0..STRESS_THREADS {
            let rdb = Arc::clone(&rdb);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut conn = rdb.connect().unwrap();
                let base = (t * 10_000) as i64;
                barrier.wait();
                for i in 0..(COMMITS + ROLLBACKS) {
                    let id = base + i as i64;
                    let stmts = vec![
                        format!(
                            "INSERT INTO accounts (id, owner, balance) VALUES ({id}, 's{t}', {i})"
                        ),
                        format!("UPDATE accounts SET balance = balance + 1 WHERE id = {id}"),
                    ];
                    // Interleave rollbacks among the commits so aborted
                    // transactions run concurrently with committing ones.
                    run_txn(&mut *conn, &stmts, i % 4 != 3);
                }
            });
        }
    });

    // Each worker ran 13 transactions; i % 4 == 3 rolls back at
    // i ∈ {3, 7, 11} — 10 commits and 3 rollbacks per worker.
    let trids = trans_dep_trids(&rdb);
    let new_rows = trids.len() - rows_before;
    assert_eq!(
        new_rows,
        STRESS_THREADS * COMMITS,
        "every committed transaction must leave exactly one trans_dep row"
    );
    let distinct: HashSet<i64> = trids.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        trids.len(),
        "trids must be unique across concurrent sessions"
    );

    let snap = rdb.metrics();
    assert_eq!(
        snap.counter("proxy.trans_dep.committed") - committed_before,
        (STRESS_THREADS * COMMITS) as u64,
        "dependency-store commit counter must match the committed volume"
    );
    assert_eq!(
        snap.counter("proxy.trans_dep.aborted") - aborted_before,
        (STRESS_THREADS * ROLLBACKS) as u64,
        "dependency-store abort counter must match the rolled-back volume"
    );
    assert_eq!(
        snap.gauge("proxy.trans_dep.inflight"),
        Some(0.0),
        "no transaction may remain in flight after all sessions finish"
    );
}
