//! Integration tests for the static trackability analyzer wired into the
//! proxy enforcement path, plus a differential property test checking the
//! analyzer's verdicts against what the dynamic tracker actually records.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use resildb_analyze::{
    is_tracking_column, profiles_from_groups, Analyzer, Granularity, TxnProfile,
};
use resildb_core::ResilientDb;
use resildb_engine::{Database, Flavor, Value};
use resildb_proxy::{prepare_database, EnforcementPolicy, ProxyConfig, TrackingProxy};
use resildb_repair::RepairOp;
use resildb_tpcc::{record_profiled_corpus, Loader, TpccConfig, TpccRunner, TxnKind};
use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver, WireError};

/// A tracking proxy plus its statistics handle over a fresh database.
fn proxy_with(
    policy: EnforcementPolicy,
    read_only_deps: bool,
) -> (
    Database,
    Box<dyn Connection>,
    std::sync::Arc<resildb_proxy::TrackerStats>,
) {
    let db = Database::in_memory(Flavor::Postgres);
    let native = NativeDriver::new(db.clone(), LinkProfile::local());
    prepare_database(&mut *native.connect().unwrap()).unwrap();
    let mut config = ProxyConfig::new(Flavor::Postgres).with_enforcement(policy);
    config.record_read_only_deps = read_only_deps;
    let (driver, stats) =
        TrackingProxy::single_proxy_with_stats(db.clone(), LinkProfile::local(), config);
    let conn = driver.connect().unwrap();
    (db, conn, stats)
}

#[test]
fn reject_policy_refuses_untracked_statements() {
    let (db, mut conn, stats) = proxy_with(EnforcementPolicy::Reject, false);
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (1, 10)")
        .unwrap();

    // An aggregate read loses its row-level dependencies: refused before
    // it reaches the DBMS.
    let err = conn.execute("SELECT COUNT(v) FROM t").unwrap_err();
    match err {
        WireError::Protocol(msg) => {
            assert!(msg.contains("refused"), "{msg}");
            assert!(msg.contains("U-AGG"), "{msg}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }

    // Trackable statements pass unharmed.
    let resp = conn.execute("SELECT v FROM t WHERE id = 1").unwrap();
    match resp {
        resildb_wire::Response::Rows(r) => assert_eq!(r.rows, vec![vec![Value::Int(10)]]),
        other => panic!("{other:?}"),
    }

    let snap = stats.snapshot();
    assert_eq!(snap.rejected, 1);
    assert_eq!(snap.untracked, 1);
    assert!(snap.sound >= 2, "{snap:?}");
    // The refused statement left no trace in the dependency tables.
    assert_eq!(db.row_count("trans_dep").unwrap(), 1); // the INSERT only
}

#[test]
fn reject_policy_applies_on_rewrite_cache_hits_too() {
    let (_db, mut conn, stats) = proxy_with(EnforcementPolicy::Reject, false);
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    // Same statement shape twice: the second execution takes the cached
    // path and must still be refused via the memoised verdict.
    assert!(conn.execute("SELECT MAX(v) FROM t").is_err());
    assert!(conn.execute("SELECT MAX(v) FROM t").is_err());
    assert_eq!(stats.snapshot().rejected, 2);
}

#[test]
fn warn_policy_forwards_but_counts() {
    let (_db, mut conn, stats) = proxy_with(EnforcementPolicy::Warn, false);
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (1, 10)")
        .unwrap();
    // Forwarded despite being untracked…
    conn.execute("SELECT COUNT(v) FROM t").unwrap();
    // …but the audit trail knows.
    let snap = stats.snapshot();
    assert_eq!(snap.untracked, 1);
    assert_eq!(snap.rejected, 0);
    assert!(snap.sound >= 2, "{snap:?}");
}

#[test]
fn allow_policy_keeps_the_classifier_off_the_statement_path() {
    let (_db, mut conn, stats) = proxy_with(EnforcementPolicy::Allow, false);
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (1, 10)")
        .unwrap();
    conn.execute("SELECT COUNT(v) FROM t").unwrap();
    // The paper's behaviour: nothing classified, nothing counted.
    let snap = stats.snapshot();
    assert_eq!(
        (snap.sound, snap.degraded, snap.untracked, snap.rejected),
        (0, 0, 0, 0)
    );
}

/// Reader statement shapes spanning the verdict lattice.
#[derive(Debug, Clone)]
enum ReaderShape {
    /// `SELECT v FROM t WHERE id = k` — sound.
    Point,
    /// `SELECT id, v FROM t` — sound.
    Scan,
    /// `SELECT COUNT(v) FROM t` — untracked (U-AGG).
    Count,
    /// `SELECT MAX(v) FROM t` — untracked (U-AGG).
    Max,
    /// `SELECT DISTINCT v FROM t` — untracked (U-DISTINCT).
    Distinct,
}

impl ReaderShape {
    fn sql(&self, k: i64) -> String {
        match self {
            ReaderShape::Point => format!("SELECT v FROM t WHERE id = {k}"),
            ReaderShape::Scan => "SELECT id, v FROM t".into(),
            ReaderShape::Count => "SELECT COUNT(v) FROM t".into(),
            ReaderShape::Max => "SELECT MAX(v) FROM t".into(),
            ReaderShape::Distinct => "SELECT DISTINCT v FROM t".into(),
        }
    }
}

fn reader_shape() -> impl Strategy<Value = ReaderShape> {
    prop_oneof![
        Just(ReaderShape::Point),
        Just(ReaderShape::Scan),
        Just(ReaderShape::Count),
        Just(ReaderShape::Max),
        Just(ReaderShape::Distinct),
    ]
}

/// The proxy transaction id recorded in `annot` for `label`.
fn txn_id(db: &Database, label: &str) -> i64 {
    let mut s = db.session();
    match s
        .query(&format!("SELECT tr_id FROM annot WHERE descr = '{label}'"))
        .unwrap()
        .rows[0][0]
    {
        Value::Int(v) => v,
        ref other => panic!("{other:?}"),
    }
}

/// Every dependency recorded for `reader` (dep lists may span rows).
fn deps_of(db: &Database, reader: i64) -> Vec<i64> {
    let mut s = db.session();
    s.query(&format!(
        "SELECT dep_tr_ids FROM trans_dep WHERE tr_id = {reader}"
    ))
    .unwrap()
    .rows
    .iter()
    .flat_map(|row| match &row[0] {
        Value::Str(list) => list
            .split_whitespace()
            .map(|t| t.parse::<i64>().unwrap())
            .collect::<Vec<_>>(),
        other => panic!("{other:?}"),
    })
    .collect()
}

/// The TPC-C transaction class of a runner label (`Order_0_3_0_4` →
/// `NewOrder`), or `None` for unlabeled transactions (the loader).
fn class_of(label: &str) -> Option<&'static str> {
    let prefix = label.split('_').next()?;
    TxnKind::ALL
        .iter()
        .find(|k| k.label_prefix() == prefix)
        .map(|k| k.class_name())
}

/// Per-table dynamic write footprint harvested from the repair log.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct DynFootprint {
    inserts: bool,
    deletes: bool,
    updated: BTreeSet<String>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Static-vs-dynamic write-set agreement on the TPC-C corpus: the
    /// blast-radius analyzer's per-class write footprints must bound what
    /// a real tracked run of the *same deterministic workload* stamped in
    /// the engine log (static ⊇ dynamic for every class, every seed), and
    /// be *exact* for classes whose every statement the analyzer calls
    /// sound — over-approximation there would mean false conflict edges.
    #[test]
    fn static_write_sets_bound_dynamic_footprints(seed in 1u64..1000) {
        // Static side: profiles of the deterministic run for `seed`.
        let groups = record_profiled_corpus(1, seed);
        let profiles = profiles_from_groups(&groups);
        let by_class: BTreeMap<&str, &TxnProfile> =
            profiles.iter().map(|p| (p.name.as_str(), p)).collect();

        // Dynamic side: the same run, behind the tracking proxy.
        let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
        let cfg = TpccConfig::tiny();
        let mut conn = rdb.connect().unwrap();
        Loader::new(cfg.clone(), seed).load(&mut *conn).unwrap();
        let mut runner = TpccRunner::new(cfg, seed);
        for kind in TxnKind::ALL {
            runner.run(&mut *conn, kind).unwrap();
        }
        drop(conn);
        let analysis = rdb.analyze().unwrap();

        // Harvest per-class footprints from the log, skipping the proxy's
        // own bookkeeping tables and hidden tracking columns.
        let mut dynamic: BTreeMap<&str, BTreeMap<String, DynFootprint>> = BTreeMap::new();
        for rec in &analysis.records {
            if rec.table.is_empty()
                || resildb_proxy::TRACKING_TABLES.contains(&rec.table.as_str())
            {
                continue;
            }
            let Some(&trid) = analysis.correlation.proxy_of.get(&rec.internal_txn) else {
                continue;
            };
            let label = analysis.graph.label(trid);
            let Some(class) = class_of(&label) else {
                continue; // loader transaction
            };
            let fp = dynamic
                .entry(class)
                .or_default()
                .entry(rec.table.clone())
                .or_default();
            match &rec.op {
                RepairOp::Insert { .. } => fp.inserts = true,
                RepairOp::Delete { .. } => fp.deletes = true,
                RepairOp::Update { .. } => fp.updated.extend(
                    rec.changed_columns()
                        .into_iter()
                        .filter(|c| !is_tracking_column(c)),
                ),
                _ => {}
            }
        }

        // Soundness: every dynamic write lies inside the static profile.
        for (class, tables) in &dynamic {
            let profile = by_class[class];
            for (table, fp) in tables {
                let stat = profile.writes.get(table).unwrap_or_else(|| {
                    panic!("{class} dynamically wrote {table}, statically never")
                });
                prop_assert!(!fp.inserts || stat.inserts, "{class}/{table}: insert escaped");
                prop_assert!(!fp.deletes || stat.deletes, "{class}/{table}: delete escaped");
                for col in &fp.updated {
                    prop_assert!(
                        stat.updated.as_ref().is_some_and(|u| u.contains(col)),
                        "{class} dynamically updated {table}.{col}, statically never"
                    );
                }
            }
        }

        // Exactness on all-sound classes: the statically claimed write
        // footprint was fully exercised — table set, insert/delete flags
        // and updated-column sets all match the log.
        let analyzer = Analyzer::new(Granularity::Row);
        for kind in TxnKind::ALL {
            let class = kind.class_name();
            let all_sound = groups
                .iter()
                .filter(|(name, _)| name == class)
                .flat_map(|(_, stmts)| stmts)
                .all(|sql| analyzer.classify_sql(sql).is_sound());
            if !all_sound {
                continue;
            }
            let profile = by_class[class];
            let empty = BTreeMap::new();
            let dyn_tables = dynamic.get(class).unwrap_or(&empty);
            prop_assert_eq!(
                profile.writes.keys().collect::<Vec<_>>(),
                dyn_tables.keys().collect::<Vec<_>>(),
                "{} writes different table sets statically vs dynamically",
                class
            );
            for (table, stat) in &profile.writes {
                let fp = &dyn_tables[table];
                prop_assert_eq!(
                    (stat.inserts, stat.deletes),
                    (fp.inserts, fp.deletes),
                    "{}/{} insert/delete shape mismatch",
                    class,
                    table
                );
                if let Some(cols) = stat.updated.as_ref().and_then(|u| u.columns()) {
                    prop_assert_eq!(
                        cols,
                        &fp.updated,
                        "{}/{} updated-column mismatch",
                        class,
                        table
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Differential check of the static verdict against the dynamic
    /// tracker: a statement the analyzer calls *sound* must yield the
    /// writer in the reader's recorded dependency set, and a statement it
    /// calls *untracked* must demonstrably lose that dependency.
    #[test]
    fn static_verdict_predicts_dynamic_dependency_capture(
        k in 1i64..50,
        shape in reader_shape(),
    ) {
        let (db, mut conn, _stats) = proxy_with(EnforcementPolicy::Allow, true);
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)").unwrap();

        conn.execute("ANNOTATE writer").unwrap();
        conn.execute(&format!("INSERT INTO t (id, v) VALUES ({k}, {k})")).unwrap();

        let sql = shape.sql(k);
        conn.execute("ANNOTATE reader").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute(&sql).unwrap();
        conn.execute("COMMIT").unwrap();

        let writer = txn_id(&db, "writer");
        let reader = txn_id(&db, "reader");
        let deps = deps_of(&db, reader);

        let verdict = Analyzer::new(Granularity::Row).classify_sql(&sql);
        if verdict.is_sound() {
            prop_assert!(
                deps.contains(&writer),
                "sound {sql:?} must capture writer {writer} in {deps:?}"
            );
        } else {
            prop_assert!(verdict.is_untracked(), "{sql:?} → {verdict}");
            prop_assert!(
                !deps.contains(&writer),
                "untracked {sql:?} should demonstrably miss writer {writer}, got {deps:?}"
            );
        }
    }
}
