//! Integration tests of the unified facade API: the [`Session`] trait over
//! all three session kinds, the unified [`Error`], and the single
//! [`ResilientDb::metrics`] snapshot covering proxy, engine, simulation
//! and repair layers.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_core::{
    telemetry::export, Error, ErrorKind, Flavor, Literal, ResilientDb, Session, Value,
};

/// A small workload written once against the trait: runs identically over
/// an embedded engine session, an untracked native connection, and a
/// tracked proxy connection.
fn generic_workload<S: Session>(session: &mut S, table: &str) -> Result<usize, Error> {
    session.execute(&format!("CREATE TABLE {table} (a INTEGER, b TEXT)"))?;
    session.execute(&format!(
        "INSERT INTO {table} (a, b) VALUES (1, 'x'), (2, 'y')"
    ))?;
    for i in 0..4 {
        session.execute(&format!("UPDATE {table} SET b = 'z' WHERE a = {}", i % 2))?;
    }
    let resp = session.execute(&format!("SELECT a, b FROM {table} ORDER BY a"))?;
    Ok(resp.rows().unwrap().rows.len())
}

#[test]
fn generic_workload_runs_over_every_session_kind() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();

    let mut engine = rdb.database().session();
    assert_eq!(generic_workload(&mut engine, "t_engine").unwrap(), 2);

    let mut untracked = rdb.connect_untracked().unwrap();
    assert_eq!(generic_workload(&mut untracked, "t_native").unwrap(), 2);

    let mut tracked = rdb.connect().unwrap();
    assert_eq!(generic_workload(&mut tracked, "t_proxy").unwrap(), 2);

    // The tracked run left dependency records; the others did not.
    assert!(rdb.database().row_count("trans_dep").unwrap() > 0);
}

#[test]
fn prepared_statements_work_where_supported() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();

    // Engine sessions and native connections support preparation.
    let mut engine = rdb.database().session();
    Session::execute(&mut engine, "CREATE TABLE p (a INTEGER)").unwrap();
    let h = Session::prepare(&mut engine, "INSERT INTO p (a) VALUES (?)").unwrap();
    Session::execute_prepared(&mut engine, h, &[Literal::Int(5)]).unwrap();
    let resp = Session::execute(&mut engine, "SELECT a FROM p").unwrap();
    assert_eq!(resp.rows().unwrap().rows, vec![vec![Value::Int(5)]]);

    let mut native = rdb.connect_untracked().unwrap();
    let h = Session::prepare(&mut native, "SELECT a FROM p WHERE a = ?").unwrap();
    let resp = Session::execute_prepared(&mut native, h, &[Literal::Int(5)]).unwrap();
    assert_eq!(resp.rows().unwrap().rows.len(), 1);

    // The tracking proxy refuses: client-side preparation would bypass the
    // SQL rewriting the repair capability rests on.
    let mut tracked = rdb.connect().unwrap();
    let err = Session::prepare(&mut tracked, "SELECT a FROM p WHERE a = ?").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Protocol);
}

#[test]
fn unified_error_kinds_are_uniform_across_sessions() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut engine = rdb.database().session();
    let mut tracked = rdb.connect().unwrap();
    let engine_err = Session::execute(&mut engine, "SELECT * FROM missing").unwrap_err();
    let tracked_err = Session::execute(&mut tracked, "SELECT * FROM missing").unwrap_err();
    // Different layers (EngineError vs WireError::Db) — one kind.
    assert_eq!(engine_err.kind(), ErrorKind::Statement);
    assert_eq!(tracked_err.kind(), ErrorKind::Statement);
    assert!(matches!(engine_err, Error::Engine(_)));
    assert!(matches!(tracked_err, Error::Wire(_)));
}

#[test]
fn one_metrics_call_covers_all_four_layers() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    Session::execute(
        &mut conn,
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal FLOAT)",
    )
    .unwrap();
    Session::execute(
        &mut conn,
        "INSERT INTO acct (id, bal) VALUES (1, 10.0), (2, 20.0)",
    )
    .unwrap();

    conn.execute("ANNOTATE attack").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE acct SET bal = 999.0 WHERE id = 1")
        .unwrap();
    conn.execute("COMMIT").unwrap();
    // Repeat a statement shape so the rewrite cache records hits.
    for _ in 0..3 {
        Session::execute(&mut conn, "UPDATE acct SET bal = bal + 1.0 WHERE id = 2").unwrap();
    }

    let attack = rdb.txn_id_by_label("attack").unwrap().expect("tracked");
    rdb.repair(&[attack], &[]).unwrap();

    let snap = rdb.metrics();
    // Proxy layer: the repeated shape must have hit the rewrite cache.
    assert!(snap.counter("proxy.rewrite_cache.hits") > 0);
    // Engine layer: commits were counted and execute spans timed.
    assert!(snap.counter("engine.commit.count") > 0);
    assert!(snap.histogram("engine.execute").unwrap().count > 0);
    // Simulation layer: statements flowed through the substrate.
    assert!(snap.counter("sim.statements") > 0);
    // Repair layer: at least one phase histogram is non-empty.
    let repair_observed = ["repair.log_scan", "repair.correlate", "repair.compensate"]
        .iter()
        .any(|name| snap.histogram(name).map(|h| h.count).unwrap_or(0) > 0);
    assert!(repair_observed, "no repair-phase histogram recorded");

    // The trait surface reports the same registry (plus proxy folds come
    // only from the facade, which holds the cache/stats handles).
    let via_session = Session::metrics(&conn);
    assert_eq!(
        via_session.counter("engine.commit.count"),
        snap.counter("engine.commit.count")
    );
}

#[test]
fn text_and_json_exporters_agree_on_the_same_snapshot() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    generic_workload(&mut conn, "t_export").unwrap();
    let snap = rdb.metrics();

    let text = export::to_text(&snap);
    let json = export::to_json(&snap);
    // Every counter appears in both renderings with the same value.
    for (name, value) in &snap.counters {
        assert!(
            text.contains(&format!("counter {name} {value}")),
            "text export missing {name}"
        );
        assert!(
            json.contains(&format!("\"{name}\":{value}")),
            "json export missing {name}"
        );
    }
    for name in snap.histograms.keys() {
        assert!(text.contains(&format!("histogram {name} ")));
        assert!(json.contains(&format!("\"{name}\":{{\"count\"")));
    }
}

#[test]
fn disabling_telemetry_stops_recording() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    Session::execute(&mut conn, "CREATE TABLE q (a INTEGER)").unwrap();
    let before = rdb.metrics().histogram("engine.execute").unwrap().count;
    rdb.telemetry().set_enabled(false);
    Session::execute(&mut conn, "INSERT INTO q (a) VALUES (1)").unwrap();
    let after = rdb.metrics().histogram("engine.execute").unwrap().count;
    assert_eq!(before, after, "disabled telemetry must not record spans");
}
