//! Durability: a tracked database saved to a WAL file and reopened in a
//! "new process" retains its data, its tracking state, and — crucially —
//! its repairability.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_core::{Database, Flavor, ResilientDb, SimContext, Value};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("resildb-{tag}-{}.wal", std::process::id()))
}

#[test]
fn save_and_reopen_preserves_data_and_counters() {
    let path = temp_path("basic");
    {
        let db = Database::in_memory(Flavor::Postgres);
        let mut s = db.session();
        s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(8))")
            .unwrap();
        s.execute_sql("INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        s.execute_sql("UPDATE t SET v = 'z' WHERE id = 2").unwrap();
        db.save_wal(std::fs::File::create(&path).unwrap()).unwrap();
    }
    let db = Database::open_from_wal(
        "reopened",
        Flavor::Postgres,
        SimContext::free(),
        std::fs::File::open(&path).unwrap(),
    )
    .unwrap();
    let mut s = db.session();
    let r = s.query("SELECT id, v FROM t ORDER BY id").unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::Int(1), Value::from("a")],
            vec![Value::Int(2), Value::from("z")],
        ]
    );
    // New activity continues with fresh ids and is itself recoverable.
    s.execute_sql("INSERT INTO t (id, v) VALUES (3, 'c')")
        .unwrap();
    db.simulate_crash_and_recover().unwrap();
    assert_eq!(db.row_count("t").unwrap(), 3);
    std::fs::remove_file(&path).ok();
}

#[test]
fn repair_still_works_after_reopen() {
    let path = temp_path("repair");
    {
        let rdb = ResilientDb::new(Flavor::Oracle).unwrap();
        let mut conn = rdb.connect().unwrap();
        conn.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal FLOAT)")
            .unwrap();
        conn.execute("INSERT INTO acct (id, bal) VALUES (1, 100.0), (2, 50.0)")
            .unwrap();
        conn.execute("ANNOTATE attack").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("UPDATE acct SET bal = 1000000.0 WHERE id = 1")
            .unwrap();
        conn.execute("COMMIT").unwrap();
        conn.execute("UPDATE acct SET bal = bal + 1.0 WHERE id = 2")
            .unwrap();
        rdb.database()
            .save_wal(std::fs::File::create(&path).unwrap())
            .unwrap();
    }
    // "New process": reopen from the log and repair there.
    let db = Database::open_from_wal(
        "reopened",
        Flavor::Oracle,
        SimContext::free(),
        std::fs::File::open(&path).unwrap(),
    )
    .unwrap();
    let tool = resildb_core::RepairController::new(db.clone());
    let analysis = tool.analyze().unwrap();
    let mut s = db.session();
    let attack = match s
        .query("SELECT tr_id FROM annot WHERE descr = 'attack'")
        .unwrap()
        .rows[0][0]
    {
        Value::Int(v) => v,
        ref other => panic!("{other:?}"),
    };
    let undo = analysis.undo_set(&[attack], &[]);
    tool.execute(
        &analysis,
        &resildb_core::RepairPlan::with_undo_set(&[attack], undo),
    )
    .unwrap();
    let r = s.query("SELECT bal FROM acct ORDER BY id").unwrap();
    assert_eq!(r.rows[0][0], Value::Float(100.0));
    assert_eq!(r.rows[1][0], Value::Float(51.0));
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_log_is_rejected_cleanly() {
    let db = Database::in_memory(Flavor::Postgres);
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (id INTEGER)").unwrap();
    s.execute_sql("INSERT INTO t (id) VALUES (1)").unwrap();
    let mut buf = Vec::new();
    db.save_wal(&mut buf).unwrap();
    // Flip a byte deep inside the stream.
    let mid = buf.len() / 2;
    buf[mid] ^= 0xFF;
    let result = Database::open_from_wal("x", Flavor::Postgres, SimContext::free(), &buf[..]);
    assert!(result.is_err(), "corruption must not be silently accepted");
}
