//! Transparency property: the tracking proxy must be invisible to clients.
//! For randomly generated queries over identical data, a tracked database
//! (trid columns injected, queries rewritten, results stripped) must return
//! exactly what an untracked database returns.
//!
//! This is the paper's central usability claim — "without requiring any
//! modifications" extends to application-visible semantics — turned into
//! an executable property.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resildb_core::{
    Connection, Database, Driver, Flavor, LinkProfile, NativeDriver, ResilientDb, Response,
    TrackingGranularity, Value,
};

const COLUMNS: [&str; 4] = ["id", "grp", "amt", "name"];

/// Builds a deterministic random query over the fixed test schema.
fn generate_query(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sql = String::from("SELECT ");
    if rng.gen_bool(0.15) {
        sql.push_str("DISTINCT ");
    }
    // Projection: 1-4 items mixing columns, arithmetic, wildcard.
    if rng.gen_bool(0.15) {
        sql.push('*');
    } else {
        let n = rng.gen_range(1..=3);
        let items: Vec<String> = (0..n)
            .map(|_| match rng.gen_range(0..4) {
                0 => COLUMNS[rng.gen_range(0..COLUMNS.len())].to_string(),
                1 => format!("amt + {}", rng.gen_range(0..10)),
                2 => "grp * 10 + id".to_string(),
                _ => format!("{} AS x{}", COLUMNS[rng.gen_range(0..3)], rng.gen_range(0..9)),
            })
            .collect();
        sql.push_str(&items.join(", "));
    }
    sql.push_str(" FROM t");
    if rng.gen_bool(0.8) {
        let conds: Vec<String> = (0..rng.gen_range(1..=3))
            .map(|_| match rng.gen_range(0..5) {
                0 => format!("id {} {}", ["=", "<", ">", "<=", ">="][rng.gen_range(0..5)], rng.gen_range(0..30)),
                1 => format!("grp = {}", rng.gen_range(0..4)),
                2 => format!("amt BETWEEN {} AND {}", rng.gen_range(0..50), rng.gen_range(50..120)),
                3 => format!("name LIKE 'n%{}'", rng.gen_range(0..10)),
                _ => format!("id IN ({}, {}, {})", rng.gen_range(0..30), rng.gen_range(0..30), rng.gen_range(0..30)),
            })
            .collect();
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join([" AND ", " OR "][rng.gen_range(0..2)]));
    }
    if rng.gen_bool(0.5) {
        sql.push_str(&format!(" ORDER BY {}", COLUMNS[rng.gen_range(0..3)]));
        if rng.gen_bool(0.3) {
            sql.push_str(" DESC");
        }
        sql.push_str(", id");
    }
    if rng.gen_bool(0.3) {
        sql.push_str(&format!(" LIMIT {}", rng.gen_range(0..15)));
    }
    sql
}

/// Aggregate variants, exercised separately (they pass through unrewritten).
fn generate_aggregate_query(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let agg = ["COUNT(*)", "SUM(amt)", "MIN(amt)", "MAX(id)", "AVG(amt)"]
        [rng.gen_range(0..5)];
    let mut sql = format!("SELECT grp, {agg} FROM t");
    if rng.gen_bool(0.6) {
        sql.push_str(&format!(" WHERE id < {}", rng.gen_range(5..30)));
    }
    sql.push_str(" GROUP BY grp ORDER BY grp");
    sql
}

fn load(conn: &mut dyn Connection) {
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, amt INTEGER, name VARCHAR(8))")
        .unwrap();
    let mut rng = StdRng::seed_from_u64(424242);
    for id in 0..30 {
        let grp = rng.gen_range(0..4);
        let amt = rng.gen_range(0..120);
        conn.execute(&format!(
            "INSERT INTO t (id, grp, amt, name) VALUES ({id}, {grp}, {amt}, 'n{}')",
            id % 10
        ))
        .unwrap();
    }
}

fn rows_of(resp: Response) -> (Vec<String>, Vec<Vec<Value>>) {
    match resp {
        Response::Rows(r) => (r.columns, r.rows),
        other => panic!("expected rows, got {other:?}"),
    }
}

fn check_transparency(seed: u64, granularity: TrackingGranularity, aggregate: bool) {
    let sql = if aggregate {
        generate_aggregate_query(seed)
    } else {
        generate_query(seed)
    };

    // Untracked reference database.
    let raw_db = Database::in_memory(Flavor::Postgres);
    let mut raw = NativeDriver::new(raw_db, LinkProfile::local())
        .connect()
        .unwrap();
    load(&mut *raw);

    // Tracked database with identical data.
    let rdb = ResilientDb::builder(Flavor::Postgres)
        .granularity(granularity)
        .build()
        .unwrap();
    let mut tracked = rdb.connect().unwrap();
    load(&mut *tracked);

    let expected = rows_of(raw.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}")));
    let got = rows_of(tracked.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}")));
    assert_eq!(expected, got, "proxy changed the result of {sql:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tracked_results_equal_untracked_row_level(seed in any::<u64>()) {
        check_transparency(seed, TrackingGranularity::Row, false);
    }

    #[test]
    fn tracked_results_equal_untracked_column_level(seed in any::<u64>()) {
        check_transparency(seed, TrackingGranularity::Column, false);
    }

    #[test]
    fn tracked_aggregates_equal_untracked(seed in any::<u64>()) {
        check_transparency(seed, TrackingGranularity::Row, true);
    }
}
