//! Transparency property: the tracking proxy must be invisible to clients.
//! For randomly generated queries over identical data, a tracked database
//! (trid columns injected, queries rewritten, results stripped) must return
//! exactly what an untracked database returns.
//!
//! This is the paper's central usability claim — "without requiring any
//! modifications" extends to application-visible semantics — turned into
//! an executable property.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resildb_core::{
    failpoints, prepare_database, Connection, Database, Driver, FaultAction, FaultTrigger, Flavor,
    LinkProfile, NativeDriver, ProxyConfig, ResilientDb, Response, TrackingGranularity,
    TrackingProxy, Value, WireError,
};

const COLUMNS: [&str; 4] = ["id", "grp", "amt", "name"];

/// Builds a deterministic random query over the fixed test schema.
fn generate_query(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sql = String::from("SELECT ");
    if rng.gen_bool(0.15) {
        sql.push_str("DISTINCT ");
    }
    // Projection: 1-4 items mixing columns, arithmetic, wildcard.
    if rng.gen_bool(0.15) {
        sql.push('*');
    } else {
        let n = rng.gen_range(1..=3);
        let items: Vec<String> = (0..n)
            .map(|_| match rng.gen_range(0..4) {
                0 => COLUMNS[rng.gen_range(0..COLUMNS.len())].to_string(),
                1 => format!("amt + {}", rng.gen_range(0..10)),
                2 => "grp * 10 + id".to_string(),
                _ => format!(
                    "{} AS x{}",
                    COLUMNS[rng.gen_range(0..3)],
                    rng.gen_range(0..9)
                ),
            })
            .collect();
        sql.push_str(&items.join(", "));
    }
    sql.push_str(" FROM t");
    if rng.gen_bool(0.8) {
        let conds: Vec<String> = (0..rng.gen_range(1..=3))
            .map(|_| match rng.gen_range(0..5) {
                0 => format!(
                    "id {} {}",
                    ["=", "<", ">", "<=", ">="][rng.gen_range(0..5)],
                    rng.gen_range(0..30)
                ),
                1 => format!("grp = {}", rng.gen_range(0..4)),
                2 => format!(
                    "amt BETWEEN {} AND {}",
                    rng.gen_range(0..50),
                    rng.gen_range(50..120)
                ),
                3 => format!("name LIKE 'n%{}'", rng.gen_range(0..10)),
                _ => format!(
                    "id IN ({}, {}, {})",
                    rng.gen_range(0..30),
                    rng.gen_range(0..30),
                    rng.gen_range(0..30)
                ),
            })
            .collect();
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join([" AND ", " OR "][rng.gen_range(0..2)]));
    }
    if rng.gen_bool(0.5) {
        sql.push_str(&format!(" ORDER BY {}", COLUMNS[rng.gen_range(0..3)]));
        if rng.gen_bool(0.3) {
            sql.push_str(" DESC");
        }
        sql.push_str(", id");
    }
    if rng.gen_bool(0.3) {
        sql.push_str(&format!(" LIMIT {}", rng.gen_range(0..15)));
    }
    sql
}

/// Aggregate variants, exercised separately (they pass through unrewritten).
fn generate_aggregate_query(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let agg = ["COUNT(*)", "SUM(amt)", "MIN(amt)", "MAX(id)", "AVG(amt)"][rng.gen_range(0..5)];
    let mut sql = format!("SELECT grp, {agg} FROM t");
    if rng.gen_bool(0.6) {
        sql.push_str(&format!(" WHERE id < {}", rng.gen_range(5..30)));
    }
    sql.push_str(" GROUP BY grp ORDER BY grp");
    sql
}

fn load(conn: &mut dyn Connection) {
    conn.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, amt INTEGER, name VARCHAR(8))",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(424242);
    for id in 0..30 {
        let grp = rng.gen_range(0..4);
        let amt = rng.gen_range(0..120);
        conn.execute(&format!(
            "INSERT INTO t (id, grp, amt, name) VALUES ({id}, {grp}, {amt}, 'n{}')",
            id % 10
        ))
        .unwrap();
    }
}

fn rows_of(resp: Response) -> (Vec<String>, Vec<Vec<Value>>) {
    match resp {
        Response::Rows(r) => (r.columns, r.rows),
        other => panic!("expected rows, got {other:?}"),
    }
}

fn check_transparency(seed: u64, granularity: TrackingGranularity, aggregate: bool) {
    let sql = if aggregate {
        generate_aggregate_query(seed)
    } else {
        generate_query(seed)
    };

    // Untracked reference database.
    let raw_db = Database::in_memory(Flavor::Postgres);
    let mut raw = NativeDriver::new(raw_db, LinkProfile::local())
        .connect()
        .unwrap();
    load(&mut *raw);

    // Tracked database with identical data.
    let rdb = ResilientDb::builder(Flavor::Postgres)
        .granularity(granularity)
        .build()
        .unwrap();
    let mut tracked = rdb.connect().unwrap();
    load(&mut *tracked);

    let expected = rows_of(raw.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}")));
    let got = rows_of(
        tracked
            .execute(&sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}")),
    );
    assert_eq!(expected, got, "proxy changed the result of {sql:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tracked_results_equal_untracked_row_level(seed in any::<u64>()) {
        check_transparency(seed, TrackingGranularity::Row, false);
    }

    #[test]
    fn tracked_results_equal_untracked_column_level(seed in any::<u64>()) {
        check_transparency(seed, TrackingGranularity::Column, false);
    }

    #[test]
    fn tracked_aggregates_equal_untracked(seed in any::<u64>()) {
        check_transparency(seed, TrackingGranularity::Row, true);
    }
}

// --- Rewrite-cache transparency -----------------------------------------
//
// The statement-template rewrite cache must be invisible twice over: a
// warm replay through one proxy must return byte-identical results to the
// cold first pass, and an entire workload run with the cache must leave
// client responses AND the recorded dependency rows identical to a run
// without it.

/// A deterministic mixed workload: schema + bulk load, then transactions
/// combining generated reads with writes. Statement shapes repeat with
/// varying literals — the cache's intended steady state.
fn generate_workload(seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stmts = vec![
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, amt INTEGER, name VARCHAR(8))"
            .to_string(),
    ];
    for id in 0..20 {
        stmts.push(format!(
            "INSERT INTO t (id, grp, amt, name) VALUES ({id}, {}, {}, 'n{}')",
            rng.gen_range(0..4),
            rng.gen_range(0..120),
            id % 10
        ));
    }
    for i in 0..8 {
        stmts.push("BEGIN".to_string());
        stmts.push(generate_query(rng.gen_range(0..u64::MAX)));
        match rng.gen_range(0..3) {
            0 => stmts.push(format!(
                "UPDATE t SET amt = amt + {} WHERE grp = {}",
                rng.gen_range(1..9),
                rng.gen_range(0..4)
            )),
            1 => stmts.push(format!(
                "INSERT INTO t (id, grp, amt, name) VALUES ({}, {}, {}, 'w{}')",
                100 + i,
                rng.gen_range(0..4),
                rng.gen_range(0..120),
                i
            )),
            _ => stmts.push(format!("DELETE FROM t WHERE id = {}", rng.gen_range(0..20))),
        }
        stmts.push("COMMIT".to_string());
    }
    stmts
}

/// Runs `stmts` through a fresh tracked database, returning the printed
/// client-visible response of every statement, the final contents of the
/// three tracking tables, and the rewrite-cache hit count.
fn run_workload(stmts: &[String], cache: bool) -> (Vec<String>, Vec<String>, u64) {
    let db = Database::in_memory(Flavor::Postgres);
    prepare_database(
        &mut *NativeDriver::new(db.clone(), LinkProfile::local())
            .connect()
            .unwrap(),
    )
    .unwrap();
    let mut config = ProxyConfig::new(Flavor::Postgres);
    if !cache {
        config = config.without_rewrite_cache();
    }
    let (driver, cache_handle) =
        TrackingProxy::single_proxy_with_cache(db.clone(), LinkProfile::local(), config);
    let mut conn = driver.connect().unwrap();
    let responses: Vec<String> = stmts
        .iter()
        .map(|s| {
            format!(
                "{:?}",
                conn.execute(s).unwrap_or_else(|e| panic!("{s}: {e}"))
            )
        })
        .collect();
    let tracking: Vec<String> = ["trans_dep", "trans_dep_prov", "annot"]
        .iter()
        .map(|t| format!("{:?}", db.snapshot_rows(t).unwrap()))
        .collect();
    (responses, tracking, cache_handle.stats().hits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache on vs cache off over the same workload: every client-visible
    /// response and every recorded dependency/provenance/annotation row
    /// must be byte-identical — the cache may only change the CPU cost.
    #[test]
    fn cached_workload_is_byte_identical_to_uncached(seed in any::<u64>()) {
        let stmts = generate_workload(seed);
        let (warm_resp, warm_deps, hits) = run_workload(&stmts, true);
        let (cold_resp, cold_deps, cold_hits) = run_workload(&stmts, false);
        prop_assert_eq!(cold_hits, 0, "disabled cache must never hit");
        prop_assert!(hits > 0, "repeated statement shapes must hit the cache");
        prop_assert_eq!(&warm_resp, &cold_resp, "client-visible results diverged");
        prop_assert_eq!(&warm_deps, &cold_deps, "dependency rows diverged");
    }

    /// Replaying a read-only query set twice through ONE proxy: the second
    /// (warm) pass is served from the cache and must return byte-identical
    /// results to the cold first pass.
    #[test]
    fn warm_replay_matches_cold_through_one_proxy(seed in any::<u64>()) {
        let queries: Vec<String> = (0..6).map(|i| generate_query(seed.wrapping_add(i))).collect();
        let db = Database::in_memory(Flavor::Postgres);
        prepare_database(
            &mut *NativeDriver::new(db.clone(), LinkProfile::local()).connect().unwrap(),
        )
        .unwrap();
        let (driver, cache) = TrackingProxy::single_proxy_with_cache(
            db,
            LinkProfile::local(),
            ProxyConfig::new(Flavor::Postgres),
        );
        let mut conn = driver.connect().unwrap();
        load(&mut *conn);
        let cold: Vec<String> = queries
            .iter()
            .map(|q| format!("{:?}", conn.execute(q).unwrap_or_else(|e| panic!("{q}: {e}"))))
            .collect();
        let hits_after_cold = cache.stats().hits;
        let warm: Vec<String> = queries
            .iter()
            .map(|q| format!("{:?}", conn.execute(q).unwrap_or_else(|e| panic!("{q}: {e}"))))
            .collect();
        prop_assert_eq!(&warm, &cold, "warm replay diverged from cold pass");
        prop_assert!(
            cache.stats().hits >= hits_after_cold + queries.len() as u64,
            "every replayed query must hit the cache"
        );
    }
}

// --- Non-ASCII identifier transparency ----------------------------------
//
// Harvest and strip work on raw identifier strings; multi-byte characters
// must never panic the proxy (the hidden-column and ANNOTATE checks used
// to slice at fixed byte offsets) and must survive the rewrite → print →
// re-parse round trip intact.

const IDENT_CHARS: [char; 10] = ['a', 'b', 'é', 'ß', 'λ', 'ж', '日', 'ü', 'ñ', 'φ'];

fn gen_ident(rng: &mut StdRng, prefix: &str) -> String {
    let mut s = String::from(prefix);
    for _ in 0..rng.gen_range(1..=5) {
        s.push(IDENT_CHARS[rng.gen_range(0..IDENT_CHARS.len())]);
    }
    s
}

/// Same statements against an untracked database and a tracked one: every
/// client-visible response must match, identifiers and all.
fn check_non_ascii_transparency(seed: u64, granularity: TrackingGranularity) {
    let mut rng = StdRng::seed_from_u64(seed);
    let table = gen_ident(&mut rng, "t_");
    let c1 = gen_ident(&mut rng, "c1_");
    let c2 = gen_ident(&mut rng, "c2_");

    let mut stmts = vec![format!(
        "CREATE TABLE \"{table}\" (id INTEGER PRIMARY KEY, \"{c1}\" INTEGER, \"{c2}\" VARCHAR(16))"
    )];
    for id in 0..8 {
        stmts.push(format!(
            "INSERT INTO \"{table}\" (id, \"{c1}\", \"{c2}\") VALUES ({id}, {}, 'vé{id}')",
            rng.gen_range(0..50)
        ));
    }
    let pivot = rng.gen_range(0..50);
    stmts.push(format!("SELECT * FROM \"{table}\" ORDER BY id"));
    stmts.push(format!(
        "SELECT \"{c1}\", \"{c2}\" FROM \"{table}\" WHERE \"{c1}\" >= {pivot} ORDER BY id"
    ));
    stmts.push(format!(
        "UPDATE \"{table}\" SET \"{c1}\" = \"{c1}\" + 1 WHERE id < {}",
        rng.gen_range(0..8)
    ));
    stmts.push(format!(
        "DELETE FROM \"{table}\" WHERE id = {}",
        rng.gen_range(0..8)
    ));
    stmts.push(format!("SELECT * FROM \"{table}\" ORDER BY id"));

    let raw_db = Database::in_memory(Flavor::Postgres);
    let mut raw = NativeDriver::new(raw_db, LinkProfile::local())
        .connect()
        .unwrap();
    let rdb = ResilientDb::builder(Flavor::Postgres)
        .granularity(granularity)
        .build()
        .unwrap();
    let mut tracked = rdb.connect().unwrap();

    for s in &stmts {
        let expected = format!(
            "{:?}",
            raw.execute(s).unwrap_or_else(|e| panic!("{s}: {e}"))
        );
        let got = format!(
            "{:?}",
            tracked.execute(s).unwrap_or_else(|e| panic!("{s}: {e}"))
        );
        assert_eq!(expected, got, "proxy changed the result of {s:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn non_ascii_identifiers_are_transparent_row_level(seed in any::<u64>()) {
        check_non_ascii_transparency(seed, TrackingGranularity::Row);
    }

    #[test]
    fn non_ascii_identifiers_are_transparent_column_level(seed in any::<u64>()) {
        check_non_ascii_transparency(seed, TrackingGranularity::Column);
    }
}

// --- COMMIT-failure transparency ------------------------------------------
//
// An explicit-transaction COMMIT that fails inside the proxy must behave
// identically with and without the rewrite cache: same client-visible
// error, same surviving data, same recorded dependency rows.

/// Runs `stmts` through a tracked database; once `arm_at` statements have
/// executed, arms `proxy.before_commit` to fail on its `fail_hit`-th hit
/// from that point. Errors are captured as part of the response stream.
fn run_commit_failure_workload(
    stmts: &[String],
    cache: bool,
    arm_at: usize,
    fail_hit: u64,
) -> (Vec<String>, Vec<String>) {
    let db = Database::in_memory(Flavor::Postgres);
    prepare_database(
        &mut *NativeDriver::new(db.clone(), LinkProfile::local())
            .connect()
            .unwrap(),
    )
    .unwrap();
    let mut config = ProxyConfig::new(Flavor::Postgres);
    if !cache {
        config = config.without_rewrite_cache();
    }
    let (driver, _cache) =
        TrackingProxy::single_proxy_with_cache(db.clone(), LinkProfile::local(), config);
    let mut conn = driver.connect().unwrap();
    let mut responses = Vec::with_capacity(stmts.len());
    for (i, s) in stmts.iter().enumerate() {
        if i == arm_at {
            db.sim().faults().arm(
                failpoints::PROXY_BEFORE_COMMIT,
                FaultAction::Error,
                FaultTrigger::OnHit(fail_hit),
            );
        }
        responses.push(match conn.execute(s) {
            Ok(r) => format!("{r:?}"),
            Err(e) => format!("error: {e}"),
        });
    }
    assert_eq!(
        db.sim().faults().fired(failpoints::PROXY_BEFORE_COMMIT),
        1,
        "exactly one commit must have been failed"
    );
    let tracking: Vec<String> = ["trans_dep", "trans_dep_prov", "annot"]
        .iter()
        .map(|t| format!("{:?}", db.snapshot_rows(t).unwrap()))
        .collect();
    (responses, tracking)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One explicit-transaction COMMIT fails mid-workload. With the cache
    /// and without it, the client sees the same error in the same place,
    /// the aborted transaction leaks nothing, and the surviving workload
    /// records identical dependency rows.
    #[test]
    fn commit_failure_is_identical_with_and_without_rewrite_cache(seed in any::<u64>()) {
        let stmts = generate_workload(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        // Statements 0..=20 are schema + load; the 8 explicit transaction
        // blocks follow. Fail one of their COMMITs.
        let arm_at = 21;
        let fail_hit = rng.gen_range(1..=8);
        let (warm_resp, warm_deps) =
            run_commit_failure_workload(&stmts, true, arm_at, fail_hit);
        let (cold_resp, cold_deps) =
            run_commit_failure_workload(&stmts, false, arm_at, fail_hit);
        prop_assert!(
            warm_resp.iter().any(|r| r.starts_with("error: ")),
            "the injected commit failure must surface to the client"
        );
        prop_assert_eq!(&warm_resp, &cold_resp, "client-visible results diverged");
        prop_assert_eq!(&warm_deps, &cold_deps, "dependency rows diverged");
    }
}

/// Client-side prepared statements would bypass the proxy's rewriting (no
/// trid stamping, no harvested reads), so the tracking connections must
/// refuse them rather than silently punching a hole in the audit trail.
#[test]
fn tracking_proxy_refuses_client_prepared_statements() {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    assert!(matches!(
        conn.prepare("INSERT INTO t (a) VALUES (?)"),
        Err(WireError::Protocol(_))
    ));
}
