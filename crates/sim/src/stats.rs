//! Cumulative simulation counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter safe to bump from any thread.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Counters for everything charged to the virtual clock.
///
/// # Examples
///
/// ```
/// use resildb_sim::{CostModel, PageKey, SimContext};
///
/// let sim = SimContext::new(CostModel::disk_bound_oltp(), 4);
/// sim.charge_page_read(PageKey::new(9, 0));
/// assert_eq!(sim.stats().page_misses.get(), 1);
/// ```
#[derive(Debug, Default)]
#[allow(missing_docs)] // field names are self-describing counters
pub struct SimStats {
    pub page_hits: Counter,
    pub page_misses: Counter,
    pub pages_written: Counter,
    pub log_bytes: Counter,
    pub log_forces: Counter,
    pub statements: Counter,
    pub rows_touched: Counter,
    pub round_trips: Counter,
    pub network_bytes: Counter,
    pub injected_delays: Counter,
}

impl SimStats {
    /// Buffer-pool hit ratio in `[0, 1]`; `1.0` when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.page_hits.get() as f64;
        let total = hits + self.page_misses.get() as f64;
        if total == 0.0 {
            1.0
        } else {
            hits / total
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pages: {} hit / {} miss (ratio {:.2}), {} written; log: {} B in {} forces; \
             {} stmts / {} rows; net: {} rtts / {} B",
            self.page_hits.get(),
            self.page_misses.get(),
            self.hit_ratio(),
            self.pages_written.get(),
            self.log_bytes.get(),
            self.log_forces.get(),
            self.statements.get(),
            self.rows_touched.get(),
            self.round_trips.get(),
            self.network_bytes.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.add(2);
        c.add(3);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn hit_ratio_handles_empty_and_mixed() {
        let s = SimStats::default();
        assert_eq!(s.hit_ratio(), 1.0);
        s.page_hits.add(3);
        s.page_misses.add(1);
        assert_eq!(s.hit_ratio(), 0.75);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SimStats::default().to_string().is_empty());
    }
}
