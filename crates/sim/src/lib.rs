//! Deterministic performance-simulation substrate for resildb.
//!
//! The DSN 2004 paper measures the tracking proxy's throughput penalty on
//! real hardware (IDE disks, a 100 Mbps LAN). This crate replaces those
//! physical resources with a *virtual-time* model so the benchmark harness
//! can reproduce the **shape** of the paper's Figure 4 deterministically and
//! in milliseconds of wall-clock time:
//!
//! * [`VirtualClock`] — a monotonically advancing microsecond counter that
//!   engine components charge costs to;
//! * [`CostModel`] — latency parameters for page I/O, log forces, per-row
//!   CPU work and network round trips;
//! * [`BufferPool`] — an LRU page cache deciding which logical page accesses
//!   hit memory and which pay the disk-read cost (this is what makes the
//!   paper's small-footprint `W=1` vs. large-footprint `W=10` axis work);
//! * [`SimStats`] — counters for everything charged.
//!
//! All pieces are bundled in a cheaply cloneable [`SimContext`].
//!
//! # Examples
//!
//! ```
//! use resildb_sim::{CostModel, PageKey, SimContext};
//!
//! let sim = SimContext::new(CostModel::disk_bound_oltp(), 64);
//! // First touch of a page misses and pays the read latency.
//! sim.charge_page_read(PageKey::new(1, 0));
//! let after_miss = sim.clock().now();
//! // Second touch hits the pool: only CPU-scale cost.
//! sim.charge_page_read(PageKey::new(1, 0));
//! assert!(sim.clock().now() - after_miss < after_miss);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod buffer;
mod clock;
mod cost;
mod fault;
mod lru;
mod rng;
mod stats;

pub use buffer::{BufferPool, PageAccess, PageKey};
pub use clock::{Micros, VirtualClock};
pub use cost::CostModel;
pub use fault::{failpoints, FaultAction, FaultPlan, FaultTrigger, InjectedFault};
pub use lru::LruMap;
pub use rng::DetRng;
pub use stats::SimStats;

// Telemetry (spans, histograms, metric registry) rides on the simulation
// context so every layer sharing a `SimContext` also shares one metrics
// domain. Re-exported here so downstream crates need no extra dependency.
pub use resildb_telemetry as telemetry;
pub use resildb_telemetry::{
    EventKind, FlightRecorder, HistogramSnapshot, IncidentDecomposition, IncidentMark,
    IncidentPhase, IncidentRecord, IncidentTimeline, MetricsRegistry, MetricsServer,
    MetricsSnapshot, OwnedSpan, Recorder, Sample, SampleRates, Sampler, SamplerHandle,
    ServerRoutes, Span, Telemetry, TraceEvent, TraceSnapshot, TraceVerdict,
};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

std::thread_local! {
    /// Virtual-time charges accrued by this OS thread since it last paid
    /// them off (realtime mode only). Kept thread-local so accrual never
    /// contends and sleeps are attributable to the thread that incurred
    /// the cost.
    static PENDING_WAIT_MICROS: Cell<u64> = const { Cell::new(0) };

    /// Wall-clock time this thread over-slept on earlier payments
    /// (`thread::sleep` overshoots by scheduler latency). Credited against
    /// the next payment so the thread's cumulative real wait tracks its
    /// cumulative virtual charge instead of drifting by one overshoot per
    /// statement — the drift, not the virtual costs, would otherwise
    /// dominate wall-clock measurements.
    static WAIT_CREDIT_MICROS: Cell<u64> = const { Cell::new(0) };
}

/// Shared handle bundling the clock, cost model, buffer pool and counters.
///
/// Cloning is cheap (`Arc` internally); every clone observes the same
/// virtual time and cache state, so a server engine and the proxy layered on
/// top of it charge one common timeline.
#[derive(Debug, Clone)]
pub struct SimContext {
    inner: Arc<SimInner>,
}

#[derive(Debug)]
struct SimInner {
    clock: VirtualClock,
    cost: CostModel,
    pool: Mutex<BufferPool>,
    stats: SimStats,
    faults: FaultPlan,
    telemetry: Telemetry,
    /// When set, every virtual-time charge also accrues to the charging
    /// thread's pending-wait balance (see [`SimContext::pay_pending_wait`])
    /// so wall-clock benchmarks experience simulated device latencies as
    /// real, overlappable waits.
    realtime: AtomicBool,
}

impl SimContext {
    /// Creates a context with the given cost model and buffer-pool capacity
    /// (in pages). Telemetry starts *disabled* — span guards cost one
    /// relaxed atomic load — so raw engine paths and benchmarks pay
    /// nothing; use [`Self::with_telemetry`] (or the facade, which
    /// enables recording) to collect spans.
    pub fn new(cost: CostModel, pool_pages: usize) -> Self {
        Self::with_telemetry(cost, pool_pages, Telemetry::disabled())
    }

    /// Creates a context recording into the given telemetry domain.
    /// Sharing one [`Telemetry`] across several contexts (e.g. benchmark
    /// cells) accumulates their spans into a single registry.
    pub fn with_telemetry(cost: CostModel, pool_pages: usize, telemetry: Telemetry) -> Self {
        Self {
            inner: Arc::new(SimInner {
                clock: VirtualClock::new(),
                cost,
                pool: Mutex::new(BufferPool::new(pool_pages)),
                stats: SimStats::default(),
                faults: FaultPlan::new(),
                telemetry,
                realtime: AtomicBool::new(false),
            }),
        }
    }

    /// A context with zero costs — useful in functional tests where timing
    /// is irrelevant.
    pub fn free() -> Self {
        Self::new(CostModel::free(), usize::MAX)
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &SimStats {
        &self.inner.stats
    }

    /// The fault-injection plan shared by every layer of this simulation.
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.faults
    }

    /// The telemetry domain shared by every layer of this simulation.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Advances the virtual clock and, in realtime mode, accrues the same
    /// span to the charging thread's pending-wait balance.
    fn tick(&self, d: Micros) {
        self.inner.clock.advance(d);
        if d != Micros::ZERO && self.inner.realtime.load(Ordering::Relaxed) {
            PENDING_WAIT_MICROS.with(|w| w.set(w.get() + d.as_micros()));
        }
    }

    /// Advances the virtual clock by an explicit amount — used by layers
    /// with their own cost models (the tracking proxy's rewrite CPU). Flows
    /// through the same path as every built-in charge, so realtime mode
    /// accrues it to the calling thread's pending-wait balance too.
    pub fn advance(&self, d: Micros) {
        self.tick(d);
    }

    /// Switches realtime mode on or off. In realtime mode every virtual
    /// charge is also owed as real wall-clock time by the thread that
    /// incurred it, to be slept off at a latch-free point via
    /// [`Self::pay_pending_wait`]. The virtual clock keeps advancing
    /// exactly as before, so metrics and determinism are unaffected —
    /// realtime mode only adds wall-clock realism on top.
    pub fn set_realtime(&self, on: bool) {
        self.inner.realtime.store(on, Ordering::Relaxed);
    }

    /// Whether realtime mode is on.
    pub fn is_realtime(&self) -> bool {
        self.inner.realtime.load(Ordering::Relaxed)
    }

    /// Sleeps off the calling thread's accrued virtual-time balance (no-op
    /// when nothing is owed or realtime mode is off). Callers must hold no
    /// engine latches: the wire layer invokes this once per statement,
    /// after the engine has released its short-term locks, which is what
    /// lets concurrent sessions overlap their simulated device waits the
    /// way real OLTP threads overlap I/O.
    pub fn pay_pending_wait(&self) {
        let owed = PENDING_WAIT_MICROS.with(Cell::take);
        if owed == 0 || !self.inner.realtime.load(Ordering::Relaxed) {
            return;
        }
        // Settle against earlier overshoot first: `thread::sleep` runs
        // long by the scheduler's timer slack, and thousands of small
        // sleeps would otherwise accumulate that slack into a drift that
        // swamps the virtual costs being simulated.
        let credit = WAIT_CREDIT_MICROS.with(Cell::take);
        if credit >= owed {
            WAIT_CREDIT_MICROS.with(|c| c.set(credit - owed));
            return;
        }
        let target = owed - credit;
        let start = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_micros(target));
        let slept = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        WAIT_CREDIT_MICROS.with(|c| c.set(c.get() + slept.saturating_sub(target)));
    }

    /// Evaluates failpoint `name`, applying [`FaultAction::Delay`] faults to
    /// the virtual clock in place; only faults the caller must surface
    /// (error / disconnect) are returned.
    pub fn fault_check(&self, name: &str) -> Option<InjectedFault> {
        let fault = self.inner.faults.check(name)?;
        // A fired fault is a forensic landmark: flight-record it (one
        // relaxed load when tracing is off) before applying its effect.
        let flight = self.inner.telemetry.flight();
        if flight.is_enabled() {
            flight.emit(
                0,
                0,
                EventKind::FaultHit {
                    failpoint: name.to_string(),
                },
            );
        }
        match fault {
            InjectedFault::Delay(d) => {
                self.inner.stats.injected_delays.add(1);
                self.tick(d);
                None
            }
            other => Some(other),
        }
    }

    /// Records a logical read of `page`, charging the page-read latency on a
    /// buffer-pool miss (plus a possible dirty-page write-back) and a small
    /// in-memory access cost on a hit. Returns whether the access hit.
    pub fn charge_page_read(&self, page: PageKey) -> PageAccess {
        let access = self.inner.pool.lock().access(page, false);
        self.apply_access_cost(&access);
        access
    }

    /// Records a logical write of `page`; same cache behaviour as
    /// [`Self::charge_page_read`] but the page is left dirty so its eventual
    /// eviction pays the write-back cost.
    pub fn charge_page_write(&self, page: PageKey) -> PageAccess {
        let access = self.inner.pool.lock().access(page, true);
        self.apply_access_cost(&access);
        access
    }

    fn apply_access_cost(&self, access: &PageAccess) {
        let cost = &self.inner.cost;
        if access.hit {
            self.inner.stats.page_hits.add(1);
            self.tick(cost.buffer_hit);
        } else {
            self.inner.stats.page_misses.add(1);
            self.tick(cost.page_read);
        }
        if access.evicted_dirty {
            self.inner.stats.pages_written.add(1);
            self.tick(cost.page_write);
        }
    }

    /// Charges a write-ahead-log append of `bytes` bytes. Log appends are
    /// sequential; the force (fsync) cost is charged separately at commit
    /// via [`Self::charge_log_force`].
    pub fn charge_log_append(&self, bytes: usize) {
        self.inner.stats.log_bytes.add(bytes as u64);
        self.tick(Micros::from_nanos(
            self.inner.cost.log_append_per_byte_ns * bytes as u64,
        ));
    }

    /// Charges the synchronous log force performed at commit.
    pub fn charge_log_force(&self) {
        self.inner.stats.log_forces.add(1);
        self.tick(self.inner.cost.log_force);
    }

    /// Charges fixed per-statement CPU cost plus per-row processing for
    /// `rows` rows touched.
    pub fn charge_statement(&self, rows: usize) {
        self.inner.stats.statements.add(1);
        self.inner.stats.rows_touched.add(rows as u64);
        let c = &self.inner.cost;
        self.tick(c.cpu_per_statement + c.cpu_per_row * rows as u64);
    }

    /// Charges one client↔server round trip carrying `bytes` bytes.
    pub fn charge_round_trip(&self, bytes: usize) {
        self.inner.stats.round_trips.add(1);
        self.inner.stats.network_bytes.add(bytes as u64);
        let c = &self.inner.cost;
        self.tick(c.network_rtt + Micros::from_nanos(c.network_per_byte_ns * bytes as u64));
    }

    /// Charges one round trip over an explicitly described link — used by
    /// the wire layer, where the client↔server and proxy↔server legs can
    /// have different latencies (paper Figure 2's dual-proxy deployment).
    pub fn charge_link(&self, rtt: Micros, per_byte_ns: u64, bytes: usize) {
        self.inner.stats.round_trips.add(1);
        self.inner.stats.network_bytes.add(bytes as u64);
        self.tick(rtt + Micros::from_nanos(per_byte_ns * bytes as u64));
    }

    /// Drops every cached page (e.g. between benchmark phases).
    pub fn flush_pool(&self) {
        self.inner.pool.lock().clear();
    }

    /// Buffer-pool occupancy in pages (for diagnostics).
    pub fn pool_len(&self) -> usize {
        self.inner.pool.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_costs_differ() {
        let sim = SimContext::new(CostModel::disk_bound_oltp(), 8);
        sim.charge_page_read(PageKey::new(1, 0));
        let t_miss = sim.clock().now();
        sim.charge_page_read(PageKey::new(1, 0));
        let t_hit = sim.clock().now() - t_miss;
        assert!(
            t_hit < t_miss,
            "hit {t_hit:?} should be cheaper than miss {t_miss:?}"
        );
        assert_eq!(sim.stats().page_hits.get(), 1);
        assert_eq!(sim.stats().page_misses.get(), 1);
    }

    #[test]
    fn dirty_eviction_charges_write_back() {
        let sim = SimContext::new(CostModel::disk_bound_oltp(), 1);
        sim.charge_page_write(PageKey::new(1, 0));
        assert_eq!(sim.stats().pages_written.get(), 0);
        // Evicts the dirty page.
        sim.charge_page_read(PageKey::new(1, 1));
        assert_eq!(sim.stats().pages_written.get(), 1);
    }

    #[test]
    fn free_context_never_advances() {
        let sim = SimContext::free();
        sim.charge_page_read(PageKey::new(1, 0));
        sim.charge_statement(100);
        sim.charge_round_trip(4096);
        sim.charge_log_append(1 << 20);
        sim.charge_log_force();
        assert_eq!(sim.clock().now(), Micros::ZERO);
    }

    #[test]
    fn clones_share_the_timeline() {
        let sim = SimContext::new(CostModel::disk_bound_oltp(), 8);
        let other = sim.clone();
        sim.charge_log_force();
        assert_eq!(sim.clock().now(), other.clock().now());
        assert!(other.clock().now() > Micros::ZERO);
    }

    #[test]
    fn statement_cost_scales_with_rows() {
        let sim = SimContext::new(CostModel::disk_bound_oltp(), 8);
        sim.charge_statement(0);
        let t0 = sim.clock().now();
        sim.charge_statement(1000);
        assert!(sim.clock().now() - t0 > t0);
    }
}
