//! Deterministic fault injection: named failpoints with scripted triggers.
//!
//! The paper's central claims are *failure* properties — the dependency
//! record is atomic with the transaction it describes (§3.3), and repair
//! leaves the database in a consistent pre-attack state — so the test
//! harness needs a way to make the interesting failures happen on demand.
//! A [`FaultPlan`] is a registry of **failpoints**: named code locations
//! (`proxy.before_trans_dep_insert`, `wire.conn_drop`, …) that the wire,
//! proxy, engine and repair layers evaluate at their fault-sensitive
//! moments. A disarmed plan is a single relaxed atomic load per
//! evaluation; an armed failpoint can inject an error, a connection drop,
//! extra latency, or a one-shot panic, on the hit its trigger scripts.
//!
//! The plan lives on the [`crate::SimContext`] every component already
//! shares, so arming a fault on the database's context reaches all layers
//! at once.
//!
//! # Examples
//!
//! ```
//! use resildb_sim::{FaultAction, FaultTrigger, SimContext};
//!
//! let sim = SimContext::free();
//! sim.faults().arm(
//!     "engine.wal_append",
//!     FaultAction::Error,
//!     FaultTrigger::OnHit(3),
//! );
//! assert!(sim.fault_check("engine.wal_append").is_none()); // hit 1
//! assert!(sim.fault_check("engine.wal_append").is_none()); // hit 2
//! assert!(sim.fault_check("engine.wal_append").is_some()); // hit 3 fires
//! assert_eq!(sim.faults().hits("engine.wal_append"), 3);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::clock::Micros;

/// Well-known failpoint names, one per fault-sensitive code location.
///
/// The constants are defined here — next to the registry — so tests, docs
/// and the injection sites themselves share one spelling. Layers own their
/// prefix: `wire.*`, `proxy.*`, `engine.*`, `repair.*`.
pub mod failpoints {
    /// Wire layer, evaluated on every statement a native connection
    /// carries: a [`super::FaultAction::Disconnect`] severs the connection
    /// (the server rolls its open transaction back, every later use fails).
    pub const WIRE_CONN_DROP: &str = "wire.conn_drop";
    /// Wire layer: extra link latency ([`super::FaultAction::Delay`])
    /// charged to the virtual clock on top of the link profile.
    pub const WIRE_LATENCY: &str = "wire.latency";
    /// Engine: one WAL record append (row operation, DDL, commit, abort).
    pub const ENGINE_WAL_APPEND: &str = "engine.wal_append";
    /// Engine: the commit-record append + log force of a transaction with
    /// writes. A failure here aborts the transaction, as in real DBMSs.
    pub const ENGINE_WAL_COMMIT: &str = "engine.wal_commit";
    /// Proxy: before a statement is parsed/rewritten (nothing has reached
    /// the DBMS yet).
    pub const PROXY_BEFORE_REWRITE: &str = "proxy.before_rewrite";
    /// Proxy: before harvested trid columns are folded into the
    /// transaction's dependency set and stripped from the result.
    pub const PROXY_HARVEST: &str = "proxy.harvest";
    /// Proxy: after provenance/annotation rows, right before the
    /// commit-time `trans_dep` insert (§3.3's atomicity-critical write).
    pub const PROXY_BEFORE_TRANS_DEP_INSERT: &str = "proxy.before_trans_dep_insert";
    /// Proxy: after the `trans_dep` insert, before COMMIT is forwarded.
    pub const PROXY_AFTER_TRANS_DEP_INSERT: &str = "proxy.after_trans_dep_insert";
    /// Proxy: immediately before the COMMIT is forwarded downstream.
    pub const PROXY_BEFORE_COMMIT: &str = "proxy.before_commit";
    /// Repair: between two compensating statements of the sweep.
    pub const REPAIR_MID_SWEEP: &str = "repair.mid_sweep";
    /// Repair: after the last compensating statement, before the sweep's
    /// enclosing transaction commits.
    pub const REPAIR_BEFORE_COMMIT: &str = "repair.before_commit";
    /// Live repair: after drain + re-analysis, before the fence shrinks
    /// from the static table surface to the row-level closure.
    pub const REPAIR_LIVE_BEFORE_SHRINK: &str = "repair.live.before_shrink";
    /// Live repair: after the closure converged, before the fence lifts.
    pub const REPAIR_LIVE_BEFORE_LIFT: &str = "repair.live.before_lift";
}

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with an injected error (each layer maps it to
    /// its own error type).
    Error,
    /// Sever the (simulated) connection: the call fails and the owning
    /// connection becomes unusable.
    Disconnect,
    /// Charge extra latency to the virtual clock, then continue normally.
    Delay(Micros),
    /// Panic at the failpoint. Panics are one-shot: the failpoint disarms
    /// itself before unwinding so recovery code can run.
    Panic,
}

/// When an armed failpoint fires, in terms of its (1-based) hit count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire on every hit.
    Always,
    /// Fire on the first hit after arming, never again.
    Once,
    /// Fire on exactly the `n`th hit (1-based) counted from arming.
    OnHit(u64),
    /// Fire on the first `n` hits.
    Times(u64),
    /// Never fire — a counting-only probe (see [`FaultPlan::trace`]).
    Never,
}

/// The fault a caller must surface after evaluating a failpoint.
///
/// `Delay` is applied to the clock inside [`crate::SimContext::fault_check`]
/// and never escapes it; `Panic` unwinds from inside [`FaultPlan::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Fail the operation with an injected error.
    Error,
    /// Treat the connection as lost.
    Disconnect,
    /// Extra latency to charge (only returned by [`FaultPlan::check`];
    /// [`crate::SimContext::fault_check`] consumes it).
    Delay(Micros),
}

#[derive(Debug, Default)]
struct FailpointState {
    armed: Option<(FaultAction, FaultTrigger)>,
    /// Hits observed while the plan was active, including before arming
    /// this particular point (counting starts when *any* point is armed).
    hits: u64,
    /// Hits counted since this point was last armed (trigger arithmetic).
    hits_since_armed: u64,
    /// Times the point fired since it was last armed.
    fired: u64,
}

impl FailpointState {
    /// The trigger decision, as one indivisible step over this point's
    /// counters: count the hit, evaluate the script against the counters,
    /// and — when it fires — advance `fired` before the decision escapes.
    /// The caller holds the registry lock for the whole call, so two
    /// threads racing the same failpoint serialize on the full
    /// read-decide-update sequence: `Once` cannot fire twice and
    /// `Times(n)` cannot overshoot, no matter how many sessions hit the
    /// point at once.
    fn decide(&mut self) -> Option<FaultAction> {
        self.hits += 1;
        let (action, trigger) = self.armed?;
        self.hits_since_armed += 1;
        let fire = match trigger {
            FaultTrigger::Always => true,
            FaultTrigger::Once => self.fired == 0,
            FaultTrigger::OnHit(n) => self.hits_since_armed == n,
            FaultTrigger::Times(n) => self.fired < n,
            FaultTrigger::Never => false,
        };
        if !fire {
            return None;
        }
        self.fired += 1;
        Some(action)
    }
}

/// A registry of named failpoints shared by every layer of one simulation.
///
/// Disarmed evaluation is one relaxed atomic load — cheap enough to leave
/// compiled into release builds and benchmarked hot paths.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Number of currently armed failpoints; the fast-path gate.
    armed: AtomicUsize,
    points: Mutex<HashMap<String, FailpointState>>,
}

impl FaultPlan {
    /// Creates an empty (fully disarmed) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms failpoint `name` with `action`, fired per `trigger`. Re-arming
    /// an armed point replaces its script and restarts its trigger
    /// arithmetic.
    pub fn arm(&self, name: &str, action: FaultAction, trigger: FaultTrigger) {
        let mut points = self.points.lock();
        let state = points.entry(name.to_string()).or_default();
        if state.armed.is_none() {
            self.armed.fetch_add(1, Ordering::Relaxed);
        }
        state.armed = Some((action, trigger));
        state.hits_since_armed = 0;
        state.fired = 0;
    }

    /// Arms a counting-only probe: `name`'s hits are recorded (and the
    /// plan is kept active) but nothing is ever injected.
    pub fn trace(&self, name: &str) {
        self.arm(name, FaultAction::Error, FaultTrigger::Never);
    }

    /// Disarms failpoint `name` (hit counters are kept).
    pub fn disarm(&self, name: &str) {
        let mut points = self.points.lock();
        if let Some(state) = points.get_mut(name) {
            if state.armed.take().is_some() {
                self.armed.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Disarms every failpoint (hit counters are kept).
    pub fn disarm_all(&self) {
        let mut points = self.points.lock();
        for state in points.values_mut() {
            if state.armed.take().is_some() {
                self.armed.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Hits recorded for `name` while the plan was active.
    pub fn hits(&self, name: &str) -> u64 {
        self.points.lock().get(name).map_or(0, |s| s.hits)
    }

    /// Times `name` fired since it was last armed.
    pub fn fired(&self, name: &str) -> u64 {
        self.points.lock().get(name).map_or(0, |s| s.fired)
    }

    /// All failpoints with a non-zero hit count, sorted by name — used to
    /// fold `fault.hits.*` counters into a metrics snapshot.
    pub fn hit_counts(&self) -> Vec<(String, u64)> {
        let points = self.points.lock();
        let mut counts: Vec<(String, u64)> = points
            .iter()
            .filter(|(_, s)| s.hits > 0)
            .map(|(name, s)| (name.clone(), s.hits))
            .collect();
        counts.sort();
        counts
    }

    /// Whether any failpoint is currently armed.
    pub fn active(&self) -> bool {
        self.armed.load(Ordering::Relaxed) != 0
    }

    /// Evaluates failpoint `name`: counts the hit (when the plan is
    /// active) and returns the fault to inject, if the point is armed and
    /// its trigger fires. [`FaultAction::Panic`] unwinds from here after
    /// disarming itself.
    pub fn check(&self, name: &str) -> Option<InjectedFault> {
        if self.armed.load(Ordering::Relaxed) == 0 {
            return None; // fast path: fully disarmed plan
        }
        let mut points = self.points.lock();
        // Keyed by owned String but probed by &str: only a name's first
        // hit allocates; every later check reuses the existing entry.
        if !points.contains_key(name) {
            points.insert(name.to_string(), FailpointState::default());
        }
        let state = points.get_mut(name)?;
        let action = state.decide()?;
        match action {
            FaultAction::Error => Some(InjectedFault::Error),
            FaultAction::Disconnect => Some(InjectedFault::Disconnect),
            FaultAction::Delay(d) => Some(InjectedFault::Delay(d)),
            FaultAction::Panic => {
                // One-shot: disarm before unwinding so cleanup code that
                // re-traverses the failpoint is not re-panicked.
                state.armed = None;
                self.armed.fetch_sub(1, Ordering::Relaxed);
                drop(points);
                panic!("injected panic at failpoint {name}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_injects_and_counts_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.check("x").is_none());
        assert_eq!(plan.hits("x"), 0, "inactive plans must not count hits");
        assert!(!plan.active());
    }

    #[test]
    fn always_fires_every_hit() {
        let plan = FaultPlan::new();
        plan.arm("p", FaultAction::Error, FaultTrigger::Always);
        for _ in 0..3 {
            assert_eq!(plan.check("p"), Some(InjectedFault::Error));
        }
        assert_eq!(plan.fired("p"), 3);
    }

    #[test]
    fn once_fires_exactly_once() {
        let plan = FaultPlan::new();
        plan.arm("p", FaultAction::Disconnect, FaultTrigger::Once);
        assert_eq!(plan.check("p"), Some(InjectedFault::Disconnect));
        assert!(plan.check("p").is_none());
        assert_eq!((plan.hits("p"), plan.fired("p")), (2, 1));
    }

    #[test]
    fn on_hit_fires_on_the_nth_hit_after_arming() {
        let plan = FaultPlan::new();
        plan.trace("p");
        plan.check("p"); // pre-arming traffic must not advance the script
        plan.arm("p", FaultAction::Error, FaultTrigger::OnHit(2));
        assert!(plan.check("p").is_none());
        assert_eq!(plan.check("p"), Some(InjectedFault::Error));
        assert!(plan.check("p").is_none());
    }

    #[test]
    fn times_fires_first_n_hits() {
        let plan = FaultPlan::new();
        plan.arm("p", FaultAction::Error, FaultTrigger::Times(2));
        assert!(plan.check("p").is_some());
        assert!(plan.check("p").is_some());
        assert!(plan.check("p").is_none());
    }

    #[test]
    fn trace_counts_without_injecting() {
        let plan = FaultPlan::new();
        plan.trace("observed");
        for _ in 0..5 {
            assert!(plan.check("observed").is_none());
        }
        assert_eq!(plan.hits("observed"), 5);
        // Other names are counted too while the plan is active.
        plan.check("bystander");
        assert_eq!(plan.hits("bystander"), 1);
    }

    #[test]
    fn disarm_stops_injection_and_keeps_counters() {
        let plan = FaultPlan::new();
        plan.arm("p", FaultAction::Error, FaultTrigger::Always);
        plan.check("p");
        plan.disarm("p");
        assert!(!plan.active());
        assert!(plan.check("p").is_none());
        assert_eq!(plan.hits("p"), 1, "hits stop with the plan inactive");
        plan.trace("q");
        plan.check("p");
        assert_eq!(plan.hits("p"), 2, "active again via the probe");
    }

    #[test]
    fn rearming_restarts_the_trigger() {
        let plan = FaultPlan::new();
        plan.arm("p", FaultAction::Error, FaultTrigger::Once);
        assert!(plan.check("p").is_some());
        assert!(plan.check("p").is_none());
        plan.arm("p", FaultAction::Error, FaultTrigger::Once);
        assert!(plan.check("p").is_some(), "re-arming resets `fired`");
    }

    #[test]
    fn panic_action_is_one_shot() {
        let plan = FaultPlan::new();
        plan.arm("p", FaultAction::Panic, FaultTrigger::Always);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.check("p")));
        assert!(caught.is_err());
        assert!(!plan.active(), "panic disarms its failpoint");
        assert!(plan.check("p").is_none());
    }

    /// Hammers one armed failpoint from `threads` OS threads, `checks`
    /// evaluations each, and returns how many evaluations fired.
    fn fired_under_contention(plan: &FaultPlan, threads: usize, checks: usize) -> usize {
        use std::sync::Barrier;
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (plan, barrier) = (&*plan, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        (0..checks).filter(|_| plan.check("p").is_some()).count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
        })
    }

    #[test]
    fn once_fires_exactly_once_across_threads() {
        let plan = FaultPlan::new();
        plan.arm("p", FaultAction::Error, FaultTrigger::Once);
        let fired = fired_under_contention(&plan, 8, 200);
        assert_eq!(fired, 1, "Once must fire exactly once under contention");
        assert_eq!(plan.fired("p"), 1);
        assert_eq!(plan.hits("p"), 8 * 200, "every evaluation is counted");
    }

    #[test]
    fn times_never_overshoots_across_threads() {
        let plan = FaultPlan::new();
        plan.arm("p", FaultAction::Error, FaultTrigger::Times(5));
        let fired = fired_under_contention(&plan, 8, 200);
        assert_eq!(fired, 5, "Times(5) must fire exactly 5 times");
        assert_eq!(plan.fired("p"), 5);
    }

    #[test]
    fn on_hit_fires_exactly_once_across_threads() {
        let plan = FaultPlan::new();
        plan.arm("p", FaultAction::Error, FaultTrigger::OnHit(37));
        let fired = fired_under_contention(&plan, 8, 200);
        assert_eq!(fired, 1, "OnHit(n) is a single hit, even when racing");
    }

    #[test]
    fn disarm_all_clears_every_point() {
        let plan = FaultPlan::new();
        plan.arm("a", FaultAction::Error, FaultTrigger::Always);
        plan.arm("b", FaultAction::Error, FaultTrigger::Always);
        plan.disarm_all();
        assert!(!plan.active());
        assert!(plan.check("a").is_none());
        assert!(plan.check("b").is_none());
    }
}
