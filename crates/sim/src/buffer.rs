//! LRU buffer pool deciding which page accesses hit memory.

use std::collections::{BTreeMap, HashMap};

/// Identifies one logical disk page: a table (or log segment) id plus a page
/// number within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning object (table/index/segment) id.
    pub object: u32,
    /// Page number within the object.
    pub page: u64,
}

impl PageKey {
    /// Creates a key.
    pub const fn new(object: u32, page: u64) -> Self {
        Self { object, page }
    }
}

/// Outcome of one buffer-pool access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAccess {
    /// Whether the page was already resident.
    pub hit: bool,
    /// Whether making room evicted a dirty page (costing a write-back).
    pub evicted_dirty: bool,
}

#[derive(Debug)]
struct Resident {
    last_use: u64,
    dirty: bool,
}

/// A strict-LRU page cache.
///
/// The pool tracks residency and dirtiness only — actual page *contents*
/// live in the engine's tables; this type exists purely so the cost model
/// can distinguish cache hits from disk reads, which is the mechanism behind
/// the paper's footprint-size axis (W=1 workloads fit in cache, W=10
/// workloads do not).
///
/// # Examples
///
/// ```
/// use resildb_sim::{BufferPool, PageKey};
///
/// let mut pool = BufferPool::new(2);
/// assert!(!pool.access(PageKey::new(0, 1), false).hit);
/// assert!(pool.access(PageKey::new(0, 1), false).hit);
/// ```
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    tick: u64,
    resident: HashMap<PageKey, Resident>,
    by_age: BTreeMap<u64, PageKey>,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            resident: HashMap::new(),
            by_age: BTreeMap::new(),
        }
    }

    /// Touches `key`, marking it dirty if `dirty`, and reports hit/eviction.
    pub fn access(&mut self, key: PageKey, dirty: bool) -> PageAccess {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.resident.get_mut(&key) {
            self.by_age.remove(&entry.last_use);
            entry.last_use = tick;
            entry.dirty |= dirty;
            self.by_age.insert(tick, key);
            return PageAccess {
                hit: true,
                evicted_dirty: false,
            };
        }
        if self.capacity == 0 {
            // Cache disabled: every access misses; dirty accesses pay the
            // write-back immediately.
            return PageAccess {
                hit: false,
                evicted_dirty: dirty,
            };
        }
        let mut evicted_dirty = false;
        if self.resident.len() >= self.capacity {
            if let Some((&age, &victim)) = self.by_age.iter().next() {
                self.by_age.remove(&age);
                if let Some(v) = self.resident.remove(&victim) {
                    evicted_dirty = v.dirty;
                }
            }
        }
        self.resident.insert(
            key,
            Resident {
                last_use: tick,
                dirty,
            },
        );
        self.by_age.insert(tick, key);
        PageAccess {
            hit: false,
            evicted_dirty,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Evicts everything (dirty pages are dropped without cost — callers
    /// flushing between benchmark phases account for that themselves).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.by_age.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut pool = BufferPool::new(2);
        let (a, b, c) = (PageKey::new(0, 1), PageKey::new(0, 2), PageKey::new(0, 3));
        pool.access(a, false);
        pool.access(b, false);
        // Touch `a` so `b` is now the LRU victim.
        assert!(pool.access(a, false).hit);
        pool.access(c, false);
        assert!(pool.access(a, false).hit, "a should have survived");
        assert!(!pool.access(b, false).hit, "b should have been evicted");
    }

    #[test]
    fn dirty_eviction_is_reported_once() {
        let mut pool = BufferPool::new(1);
        pool.access(PageKey::new(0, 1), true);
        let acc = pool.access(PageKey::new(0, 2), false);
        assert!(acc.evicted_dirty);
        let acc2 = pool.access(PageKey::new(0, 3), false);
        assert!(!acc2.evicted_dirty, "clean page eviction is free");
    }

    #[test]
    fn redirtying_a_resident_page_sticks() {
        let mut pool = BufferPool::new(2);
        let a = PageKey::new(0, 1);
        pool.access(a, false);
        pool.access(a, true); // now dirty
        pool.access(PageKey::new(0, 2), false);
        let acc = pool.access(PageKey::new(0, 3), false); // evicts `a`
        assert!(acc.evicted_dirty);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut pool = BufferPool::new(0);
        let a = PageKey::new(0, 1);
        assert!(!pool.access(a, false).hit);
        assert!(!pool.access(a, false).hit);
        assert_eq!(pool.len(), 0);
        assert!(pool.access(a, true).evicted_dirty);
    }

    #[test]
    fn clear_empties_pool() {
        let mut pool = BufferPool::new(4);
        pool.access(PageKey::new(0, 1), true);
        assert!(!pool.is_empty());
        pool.clear();
        assert!(pool.is_empty());
        assert!(!pool.access(PageKey::new(0, 1), false).hit);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut pool = BufferPool::new(3);
        for i in 0..100 {
            pool.access(PageKey::new(0, i), i % 2 == 0);
            assert!(pool.len() <= 3);
        }
    }
}
