//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// A span (or instant, measured from simulation start) of virtual time in
/// microseconds.
///
/// # Examples
///
/// ```
/// use resildb_sim::Micros;
///
/// let t = Micros::from_millis(2) + Micros::new(500);
/// assert_eq!(t.as_micros(), 2_500);
/// assert_eq!(t.as_secs_f64(), 0.0025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(u64);

impl Micros {
    /// Zero duration.
    pub const ZERO: Micros = Micros(0);

    /// Creates a span of `n` microseconds.
    pub const fn new(n: u64) -> Self {
        Micros(n)
    }

    /// Creates a span from nanoseconds, rounding to the nearest microsecond
    /// (so many sub-microsecond charges still accumulate sensibly, callers
    /// should batch nanosecond-scale costs before converting).
    pub const fn from_nanos(n: u64) -> Self {
        Micros((n + 500) / 1000)
    }

    /// Creates a span of `n` milliseconds.
    pub const fn from_millis(n: u64) -> Self {
        Micros(n * 1000)
    }

    /// Creates a span of `n` seconds.
    pub const fn from_secs(n: u64) -> Self {
        Micros(n * 1_000_000)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl Mul<u64> for Micros {
    type Output = Micros;
    fn mul(self, rhs: u64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// A monotonically advancing virtual clock shared by all simulated
/// components.
///
/// The clock never reads wall time: components *charge* latencies to it and
/// the benchmark harness divides work done by elapsed virtual time. This
/// keeps every run deterministic.
///
/// # Examples
///
/// ```
/// use resildb_sim::{Micros, VirtualClock};
///
/// let clock = VirtualClock::new();
/// clock.advance(Micros::from_millis(5));
/// assert_eq!(clock.now(), Micros::from_millis(5));
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        Micros(self.micros.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Micros) {
        if d != Micros::ZERO {
            self.micros.fetch_add(d.as_micros(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_conversions() {
        assert_eq!(Micros::from_secs(1), Micros::from_millis(1000));
        assert_eq!(Micros::from_nanos(1500), Micros::new(2));
        assert_eq!(Micros::from_nanos(400), Micros::ZERO);
        assert_eq!(Micros::new(3) * 4, Micros::new(12));
        assert_eq!(Micros::new(5) - Micros::new(2), Micros::new(3));
        assert_eq!(Micros::new(2).saturating_sub(Micros::new(5)), Micros::ZERO);
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(Micros::new(7).to_string(), "7us");
        assert_eq!(Micros::from_millis(2).to_string(), "2.000ms");
        assert_eq!(Micros::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn clock_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Micros::ZERO);
        c.advance(Micros::new(10));
        c.advance(Micros::new(5));
        assert_eq!(c.now(), Micros::new(15));
    }
}
