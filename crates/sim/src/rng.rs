//! Deterministic seeded randomness for scenario generation.
//!
//! The scenario fuzzer's contract is that a failure reproduces from its
//! seed alone, so every random choice in a run must come from one
//! deterministic generator whose sequence is a pure function of that
//! seed. [`DetRng`] is a splitmix64 stream: fast, portable (no
//! platform-dependent arithmetic), and — crucially — *forkable*: deriving
//! an independent child stream for a sub-component (workload, faults,
//! attack placement) means inserting a draw into one component cannot
//! shift the sequence another component sees, which keeps shrunken
//! scenarios recognizable next to their parents.
//!
//! # Examples
//!
//! ```
//! use resildb_sim::DetRng;
//!
//! let mut rng = DetRng::new(42);
//! let a = rng.next_u64();
//! assert_eq!(DetRng::new(42).next_u64(), a, "same seed, same sequence");
//!
//! let mut faults = rng.fork("faults");
//! let mut workload = rng.fork("workload");
//! assert_ne!(faults.next_u64(), workload.next_u64());
//! ```

/// A deterministic splitmix64 generator (see module docs).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[lo, hi)`. `lo..hi` must be non-empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform draw in `[0, n)`, as a usize index.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % (n as u64)) as usize
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Picks one element of `items` uniformly.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Derives an independent child stream named `label`. The child's
    /// seed mixes this generator's *seed position* with a hash of the
    /// label, so forks are order-insensitive: `fork("a")` yields the same
    /// stream whether or not `fork("b")` happened first.
    pub fn fork(&self, label: &str) -> DetRng {
        // FNV-1a over the label, folded into the parent state without
        // advancing it.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        DetRng::new(self.state ^ h.rotate_left(17))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_order_insensitive() {
        let parent = DetRng::new(9);
        let mut f1 = parent.fork("faults");
        let other = DetRng::new(9);
        let _ = other.fork("workload");
        let mut f2 = other.fork("faults");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let v = rng.range(5, 12);
            assert!((5..12).contains(&v));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = DetRng::new(11);
        let hits = (0..10_000).filter(|_| rng.chance(1, 4)).count();
        assert!(
            (2000..3000).contains(&hits),
            "1/4 chance wildly off: {hits}"
        );
    }
}
