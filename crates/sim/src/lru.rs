//! A generic bounded least-recently-used map.
//!
//! Shared by the proxy's statement-template rewrite cache and the engine's
//! parsed-statement cache; the [`BufferPool`](crate::BufferPool) keeps its
//! own specialised implementation because it must also track dirtiness and
//! report write-back evictions.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A strict-LRU map holding at most `capacity` entries; capacity 0 disables
/// the map entirely (every `get` misses, every `insert` is dropped).
#[derive(Debug)]
pub struct LruMap<K, V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<K, (u64, V)>,
    by_age: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// Creates a map bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            by_age: BTreeMap::new(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        self.by_age.remove(&entry.0);
        entry.0 = tick;
        self.by_age.insert(tick, key.clone());
        Some(&entry.1)
    }

    /// Inserts `key → value`, evicting the least-recently-used entry when
    /// full. Returns whether an older entry was evicted to make room.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.entries.insert(key.clone(), (tick, value)) {
            self.by_age.remove(&old.0);
            self.by_age.insert(tick, key);
            return false;
        }
        self.by_age.insert(tick, key);
        let mut evicted = false;
        if self.entries.len() > self.capacity {
            if let Some((&age, victim)) = self.by_age.iter().next() {
                let victim = victim.clone();
                self.by_age.remove(&age);
                self.entries.remove(&victim);
                evicted = true;
            }
        }
        evicted
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_age.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_refreshes_recency() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get(&"a"), Some(&1));
        assert!(m.insert("c", 3), "b should be evicted");
        assert_eq!(m.get(&"b"), None);
        assert_eq!(m.get(&"a"), Some(&1));
        assert_eq!(m.get(&"c"), Some(&3));
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut m = LruMap::new(2);
        m.insert(1, "x");
        m.insert(2, "y");
        assert!(!m.insert(1, "z"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1), Some(&"z"));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut m = LruMap::new(0);
        assert!(!m.insert(1, 1));
        assert_eq!(m.get(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut m = LruMap::new(3);
        for i in 0..50 {
            m.insert(i, i);
            assert!(m.len() <= 3);
        }
        assert_eq!(m.capacity(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut m = LruMap::new(4);
        m.insert(1, 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
    }
}
