//! Latency parameters for the simulated hardware.

use crate::clock::Micros;

/// Latency parameters charged to the [`crate::VirtualClock`].
///
/// The presets are calibrated to the *relative* magnitudes that drive the
/// paper's Figure 4, not to absolute 2004 hardware numbers: random page I/O
/// is orders of magnitude slower than CPU work, sequential log appends are
/// cheap per byte but each commit pays a synchronous force, and a LAN round
/// trip sits between CPU and disk cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Random page read on a buffer-pool miss.
    pub page_read: Micros,
    /// Write-back of an evicted dirty page.
    pub page_write: Micros,
    /// Touching a page already cached in the buffer pool.
    pub buffer_hit: Micros,
    /// Synchronous log force (fsync) at commit.
    pub log_force: Micros,
    /// Sequential log append cost per byte, in nanoseconds.
    pub log_append_per_byte_ns: u64,
    /// Fixed CPU cost of parsing/planning/dispatching one statement.
    pub cpu_per_statement: Micros,
    /// CPU cost per row touched by a statement.
    pub cpu_per_row: Micros,
    /// Fixed client↔server round-trip latency.
    pub network_rtt: Micros,
    /// Network transfer cost per byte, in nanoseconds.
    pub network_per_byte_ns: u64,
}

impl CostModel {
    /// All costs zero — functional tests only.
    pub fn free() -> Self {
        Self {
            page_read: Micros::ZERO,
            page_write: Micros::ZERO,
            buffer_hit: Micros::ZERO,
            log_force: Micros::ZERO,
            log_append_per_byte_ns: 0,
            cpu_per_statement: Micros::ZERO,
            cpu_per_row: Micros::ZERO,
            network_rtt: Micros::ZERO,
            network_per_byte_ns: 0,
        }
    }

    /// A disk-bound OLTP profile modelled on the paper's testbed
    /// (7200 RPM server disk ≈ 8 ms random I/O, commodity 100 Mbps LAN
    /// ≈ 200 µs RTT + 80 ns/byte, log force ≈ 2 ms thanks to sequential
    /// placement).
    pub fn disk_bound_oltp() -> Self {
        Self {
            page_read: Micros::new(8_000),
            page_write: Micros::new(8_000),
            buffer_hit: Micros::new(2),
            log_force: Micros::new(2_000),
            log_append_per_byte_ns: 25,
            cpu_per_statement: Micros::new(60),
            cpu_per_row: Micros::new(4),
            network_rtt: Micros::new(200),
            network_per_byte_ns: 80,
        }
    }

    /// Variant of [`Self::disk_bound_oltp`] with the network free — models
    /// the paper's "local configuration" where client and server share one
    /// machine (the shared-CPU penalty is modelled by a higher per-statement
    /// cost instead of network latency).
    pub fn local_oltp() -> Self {
        Self {
            network_rtt: Micros::new(15),
            network_per_byte_ns: 2,
            // Client and server compete for the same CPU.
            cpu_per_statement: Micros::new(90),
            cpu_per_row: Micros::new(6),
            ..Self::disk_bound_oltp()
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::disk_bound_oltp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let m = CostModel::disk_bound_oltp();
        assert!(m.page_read > m.log_force, "random I/O dwarfs a log force");
        assert!(m.log_force > m.network_rtt);
        assert!(m.network_rtt > m.cpu_per_statement);
        assert!(m.cpu_per_statement > m.buffer_hit);
    }

    #[test]
    fn local_profile_trades_network_for_cpu() {
        let net = CostModel::disk_bound_oltp();
        let local = CostModel::local_oltp();
        assert!(local.network_rtt < net.network_rtt);
        assert!(local.cpu_per_statement > net.cpu_per_statement);
    }

    #[test]
    fn default_is_disk_bound() {
        assert_eq!(CostModel::default(), CostModel::disk_bound_oltp());
    }
}
