//! Property tests for the LRU buffer pool against a naive reference model.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::collections::VecDeque;

use proptest::prelude::*;
use resildb_sim::{BufferPool, PageKey};

/// A deliberately simple LRU reference: a deque of (key, dirty), most
/// recently used at the back.
#[derive(Debug, Default)]
struct ModelPool {
    capacity: usize,
    entries: VecDeque<(PageKey, bool)>,
}

impl ModelPool {
    fn access(&mut self, key: PageKey, dirty: bool) -> (bool, bool) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let (k, d) = self.entries.remove(pos).expect("pos valid");
            self.entries.push_back((k, d || dirty));
            return (true, false);
        }
        if self.capacity == 0 {
            return (false, dirty);
        }
        let mut evicted_dirty = false;
        if self.entries.len() >= self.capacity {
            let (_, d) = self.entries.pop_front().expect("nonempty");
            evicted_dirty = d;
        }
        self.entries.push_back((key, dirty));
        (false, evicted_dirty)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pool_matches_reference_lru(
        capacity in 0usize..8,
        accesses in proptest::collection::vec((0u32..4, 0u64..12, any::<bool>()), 1..200),
    ) {
        let mut pool = BufferPool::new(capacity);
        let mut model = ModelPool { capacity, ..ModelPool::default() };
        for (object, page, dirty) in accesses {
            let key = PageKey::new(object, page);
            let got = pool.access(key, dirty);
            let (hit, evicted_dirty) = model.access(key, dirty);
            prop_assert_eq!(got.hit, hit, "hit mismatch on {:?}", key);
            prop_assert_eq!(got.evicted_dirty, evicted_dirty, "eviction mismatch on {:?}", key);
            prop_assert!(pool.len() <= capacity);
            prop_assert_eq!(pool.len(), model.entries.len());
        }
    }

    #[test]
    fn clear_always_resets(
        capacity in 1usize..6,
        accesses in proptest::collection::vec((0u64..10, any::<bool>()), 1..50),
    ) {
        let mut pool = BufferPool::new(capacity);
        for (page, dirty) in &accesses {
            pool.access(PageKey::new(0, *page), *dirty);
        }
        pool.clear();
        prop_assert!(pool.is_empty());
        // Every *distinct* page misses on its first access after a clear.
        let mut seen = std::collections::HashSet::new();
        for (page, _) in accesses.iter() {
            if seen.len() >= capacity {
                break;
            }
            if seen.insert(*page) {
                prop_assert!(!pool.access(PageKey::new(0, *page), false).hit);
            }
        }
    }
}
