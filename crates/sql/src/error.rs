//! Parse-error type.

use std::error::Error;
use std::fmt;

/// Error produced when lexing or parsing SQL text fails.
///
/// Carries a human-readable message and the byte offset in the input at
/// which the problem was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    offset: usize,
}

impl ParseError {
    /// Creates a new parse error at the given byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset,
        }
    }

    /// The human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset into the original input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = ParseError::new("unexpected token", 17);
        assert_eq!(e.to_string(), "unexpected token at offset 17");
        assert_eq!(e.message(), "unexpected token");
        assert_eq!(e.offset(), 17);
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(ParseError::new("x", 0));
    }
}
