//! Lexical tokens of the resildb SQL dialect.

use std::fmt;

/// A reserved word recognised by the lexer.
///
/// Identifiers that match a keyword case-insensitively are lexed as
/// [`Token::Keyword`]; everything else becomes [`Token::Ident`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing SQL keywords
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Create,
    Drop,
    Table,
    Primary,
    Key,
    Not,
    Null,
    Identity,
    Default,
    And,
    Or,
    In,
    Between,
    Like,
    Is,
    As,
    Distinct,
    Begin,
    Commit,
    Rollback,
    Transaction,
    Work,
    True,
    False,
    For,
    Of,
    Integer,
    Int,
    Bigint,
    Float,
    Real,
    Double,
    Precision,
    Numeric,
    Decimal,
    Varchar,
    Char,
    Text,
    Timestamp,
}

impl Keyword {
    /// Looks up a keyword from an identifier, case-insensitively.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        let upper = s.to_ascii_uppercase();
        Some(match upper.as_str() {
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "ORDER" => Order,
            "BY" => By,
            "ASC" => Asc,
            "DESC" => Desc,
            "LIMIT" => Limit,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "UPDATE" => Update,
            "SET" => Set,
            "DELETE" => Delete,
            "CREATE" => Create,
            "DROP" => Drop,
            "TABLE" => Table,
            "PRIMARY" => Primary,
            "KEY" => Key,
            "NOT" => Not,
            "NULL" => Null,
            "IDENTITY" => Identity,
            "DEFAULT" => Default,
            "AND" => And,
            "OR" => Or,
            "IN" => In,
            "BETWEEN" => Between,
            "LIKE" => Like,
            "IS" => Is,
            "AS" => As,
            "DISTINCT" => Distinct,
            "BEGIN" => Begin,
            "COMMIT" => Commit,
            "ROLLBACK" => Rollback,
            "TRANSACTION" => Transaction,
            "WORK" => Work,
            "TRUE" => True,
            "FALSE" => False,
            "FOR" => For,
            "OF" => Of,
            "INTEGER" => Integer,
            "INT" => Int,
            "BIGINT" => Bigint,
            "FLOAT" => Float,
            "REAL" => Real,
            "DOUBLE" => Double,
            "PRECISION" => Precision,
            "NUMERIC" => Numeric,
            "DECIMAL" => Decimal,
            "VARCHAR" => Varchar,
            "CHAR" => Char,
            "TEXT" => Text,
            "TIMESTAMP" => Timestamp,
            _ => return None,
        })
    }

    /// The canonical upper-case spelling of this keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Select => "SELECT",
            From => "FROM",
            Where => "WHERE",
            Group => "GROUP",
            Order => "ORDER",
            By => "BY",
            Asc => "ASC",
            Desc => "DESC",
            Limit => "LIMIT",
            Insert => "INSERT",
            Into => "INTO",
            Values => "VALUES",
            Update => "UPDATE",
            Set => "SET",
            Delete => "DELETE",
            Create => "CREATE",
            Drop => "DROP",
            Table => "TABLE",
            Primary => "PRIMARY",
            Key => "KEY",
            Not => "NOT",
            Null => "NULL",
            Identity => "IDENTITY",
            Default => "DEFAULT",
            And => "AND",
            Or => "OR",
            In => "IN",
            Between => "BETWEEN",
            Like => "LIKE",
            Is => "IS",
            As => "AS",
            Distinct => "DISTINCT",
            Begin => "BEGIN",
            Commit => "COMMIT",
            Rollback => "ROLLBACK",
            Transaction => "TRANSACTION",
            Work => "WORK",
            True => "TRUE",
            False => "FALSE",
            For => "FOR",
            Of => "OF",
            Integer => "INTEGER",
            Int => "INT",
            Bigint => "BIGINT",
            Float => "FLOAT",
            Real => "REAL",
            Double => "DOUBLE",
            Precision => "PRECISION",
            Numeric => "NUMERIC",
            Decimal => "DECIMAL",
            Varchar => "VARCHAR",
            Char => "CHAR",
            Text => "TEXT",
            Timestamp => "TIMESTAMP",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single lexical token together with its spelling-relevant payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A reserved word such as `SELECT`.
    Keyword(Keyword),
    /// An unquoted identifier, stored in its original case.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A single-quoted string literal (quotes and escapes resolved).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `||`
    Concat,
    /// `?` — a positional parameter placeholder (prepared statements and
    /// cached statement templates).
    Question,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(s) => f.write_str(s),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => f.write_str(","),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Semicolon => f.write_str(";"),
            Token::Dot => f.write_str("."),
            Token::Star => f.write_str("*"),
            Token::Eq => f.write_str("="),
            Token::Neq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Concat => f.write_str("||"),
            Token::Question => f.write_str("?"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_ident("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_ident("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_ident("w_id"), None);
    }

    #[test]
    fn keyword_display_round_trips() {
        for kw in [Keyword::Select, Keyword::Between, Keyword::Varchar] {
            assert_eq!(Keyword::from_ident(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn token_display_is_never_empty() {
        let tokens = [
            Token::Keyword(Keyword::Commit),
            Token::Ident("abc".into()),
            Token::Int(0),
            Token::Str(String::new()),
            Token::Eof,
        ];
        for t in tokens {
            assert!(!t.to_string().is_empty());
        }
    }
}
