//! SQL front-end for the resildb intrusion-resilient DBMS framework.
//!
//! This crate implements the SQL dialect shared by the [`resildb`
//! engine](https://docs.rs/resildb-engine), the transaction-dependency
//! tracking proxy and the repair tool. It covers the statement classes the
//! DSN 2004 paper's intercepting proxy needs to understand and rewrite:
//!
//! * `SELECT` with joins (`FROM` list + `WHERE`), aggregates, `GROUP BY`,
//!   `ORDER BY` and `LIMIT`;
//! * `INSERT`, `UPDATE`, `DELETE`;
//! * `CREATE TABLE` / `DROP TABLE` (the proxy intercepts `CREATE TABLE` to
//!   inject the `trid` tracking column);
//! * `BEGIN` / `COMMIT` / `ROLLBACK`.
//!
//! The AST is value-oriented and printable: every parsed statement can be
//! rendered back to SQL text with [`Statement`]'s `Display` impl, and the
//! rendered text re-parses to the same AST (a property the test-suite
//! verifies). This round-trip guarantee is what makes text-level query
//! rewriting — the heart of the paper's portable tracking mechanism — safe.
//!
//! # Examples
//!
//! ```
//! use resildb_sql::{parse_statement, Statement};
//!
//! # fn main() -> Result<(), resildb_sql::ParseError> {
//! let stmt = parse_statement("SELECT w_name, w_ytd FROM warehouse WHERE w_id = 3")?;
//! match &stmt {
//!     Statement::Select(sel) => assert_eq!(sel.from[0].name, "warehouse"),
//!     _ => unreachable!(),
//! }
//! // Round-trip: printing yields canonical SQL.
//! assert_eq!(
//!     stmt.to_string(),
//!     "SELECT w_name, w_ytd FROM warehouse WHERE w_id = 3"
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod parser;
mod printer;
mod rw;
mod template;
mod token;

pub use ast::{
    Assignment, BinaryOp, ColumnDef, ColumnRef, CreateTable, Delete, DropTable, Expr, Insert,
    Literal, OrderByItem, Select, SelectItem, Statement, TableRef, TypeName, UnaryOp, Update,
    TRID_PARAM,
};
pub use error::ParseError;
pub use lexer::Lexer;
pub use parser::Parser;
pub use rw::{statement_access, ColumnSet, StatementAccess, TableRead, TableWrite, WriteKind};
pub use template::{
    bind_statement, collect_params, parse_span_literal, parse_template, scan_statement, BindError,
    LiteralKind, LiteralSpan, SqlTemplate, StatementScan, TemplateSlot,
};
pub use token::{Keyword, Token};

/// Parses a single SQL statement (a trailing semicolon is permitted).
///
/// # Errors
///
/// Returns [`ParseError`] if the input is not a single well-formed statement
/// in the supported dialect.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), resildb_sql::ParseError> {
/// let stmt = resildb_sql::parse_statement("DELETE FROM new_order WHERE no_o_id = 7")?;
/// assert!(matches!(stmt, resildb_sql::Statement::Delete(_)));
/// # Ok(())
/// # }
/// ```
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    Parser::new(input)?.parse_single_statement()
}

/// Parses a semicolon-separated script into a list of statements.
///
/// Empty statements (stray semicolons) are skipped.
///
/// # Errors
///
/// Returns [`ParseError`] on the first malformed statement.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), resildb_sql::ParseError> {
/// let stmts = resildb_sql::parse_statements("BEGIN; COMMIT;")?;
/// assert_eq!(stmts.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_statements(input: &str) -> Result<Vec<Statement>, ParseError> {
    Parser::new(input)?.parse_statements()
}

/// Parses a single statement that may contain `?` parameter placeholders,
/// returning it together with the number of placeholders (numbered
/// left-to-right from zero in source order). Bind concrete values with
/// [`bind_statement`] before executing the statement.
///
/// # Errors
///
/// Returns [`ParseError`] if the input is not a single well-formed
/// statement in the supported dialect.
///
/// # Examples
///
/// ```
/// use resildb_sql::{bind_statement, parse_prepared, Literal};
///
/// # fn main() -> Result<(), resildb_sql::ParseError> {
/// let (stmt, params) = parse_prepared("SELECT a FROM t WHERE id = ? AND b < ?")?;
/// assert_eq!(params, 2);
/// let bound = bind_statement(&stmt, &[Literal::Int(7), Literal::Int(9)])?;
/// assert_eq!(bound.to_string(), "SELECT a FROM t WHERE id = 7 AND b < 9");
/// # Ok(())
/// # }
/// ```
pub fn parse_prepared(input: &str) -> Result<(Statement, u32), ParseError> {
    Parser::new(input)?.parse_single_with_param_count()
}
