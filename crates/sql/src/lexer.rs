//! Hand-written SQL lexer.

use crate::error::ParseError;
use crate::token::{Keyword, Token};

/// Converts SQL text into a stream of [`Token`]s.
///
/// The lexer handles `--` line comments, `/* */` block comments,
/// single-quoted strings with `''` escaping, and double-quoted identifiers.
///
/// # Examples
///
/// ```
/// use resildb_sql::{Lexer, Token};
///
/// # fn main() -> Result<(), resildb_sql::ParseError> {
/// let tokens = Lexer::new("SELECT 1").tokenize()?;
/// assert_eq!(tokens.len(), 3); // SELECT, 1, <eof>
/// assert_eq!(tokens[1].0, Token::Int(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the whole input, returning `(token, byte_offset)` pairs ending
    /// with [`Token::Eof`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on an unterminated string/comment or an
    /// unexpected character.
    pub fn tokenize(mut self) -> Result<Vec<(Token, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                out.push((Token::Eof, start));
                return Ok(out);
            };
            let token = match c {
                b',' => self.single(Token::Comma),
                b'(' => self.single(Token::LParen),
                b')' => self.single(Token::RParen),
                b';' => self.single(Token::Semicolon),
                b'.' => self.single(Token::Dot),
                b'*' => self.single(Token::Star),
                b'=' => self.single(Token::Eq),
                b'+' => self.single(Token::Plus),
                b'-' => self.single(Token::Minus),
                b'/' => self.single(Token::Slash),
                b'%' => self.single(Token::Percent),
                b'?' => self.single(Token::Question),
                b'<' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'=') => self.single(Token::LtEq),
                        Some(b'>') => self.single(Token::Neq),
                        _ => Token::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.single(Token::GtEq)
                    } else {
                        Token::Gt
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.single(Token::Neq)
                    } else {
                        return Err(ParseError::new("expected '=' after '!'", self.pos));
                    }
                }
                b'|' => {
                    self.pos += 1;
                    if self.peek() == Some(b'|') {
                        self.single(Token::Concat)
                    } else {
                        return Err(ParseError::new("expected '|' after '|'", self.pos));
                    }
                }
                b'\'' => self.lex_string()?,
                b'"' => self.lex_quoted_ident()?,
                b'0'..=b'9' => self.lex_number()?,
                c if c == b'_' || c.is_ascii_alphabetic() => self.lex_word(),
                other => {
                    return Err(ParseError::new(
                        format!("unexpected character {:?}", other as char),
                        self.pos,
                    ));
                }
            };
            out.push((token, start));
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<u8> {
        self.bytes.get(self.pos + n).copied()
    }

    fn single(&mut self, t: Token) -> Token {
        self.pos += 1;
        t
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'-') if self.peek_at(1) == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(ParseError::new("unterminated block comment", start));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_string(&mut self) -> Result<Token, ParseError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(b'\'') => {
                    if self.peek_at(1) == Some(b'\'') {
                        value.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(Token::Str(value));
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 character (peek saw a byte,
                    // so the iterator cannot be empty).
                    let rest = &self.input[self.pos..];
                    let Some(ch) = rest.chars().next() else {
                        return Err(ParseError::new("unterminated string literal", start));
                    };
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(ParseError::new("unterminated string literal", start)),
            }
        }
    }

    fn lex_quoted_ident(&mut self) -> Result<Token, ParseError> {
        let start = self.pos;
        self.pos += 1;
        let ident_start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let name = self.input[ident_start..self.pos].to_string();
                self.pos += 1;
                return Ok(Token::Ident(name));
            }
            self.pos += 1;
        }
        Err(ParseError::new("unterminated quoted identifier", start))
    }

    fn lex_number(&mut self) -> Result<Token, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut look = 1;
            if matches!(self.peek_at(1), Some(b'+' | b'-')) {
                look = 2;
            }
            if matches!(self.peek_at(look), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.pos += look + 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| ParseError::new(format!("invalid float literal {text:?}"), start))
        } else {
            text.parse::<i64>().map(Token::Int).map_err(|_| {
                ParseError::new(format!("integer literal out of range {text:?}"), start)
            })
        }
    }

    fn lex_word(&mut self) -> Token {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c == b'_' || c == b'$' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let word = &self.input[start..self.pos];
        match Keyword::from_ident(word) {
            Some(kw) => Token::Keyword(kw),
            None => Token::Ident(word.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        Lexer::new(input)
            .tokenize()
            .expect("lex ok")
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT a FROM t WHERE x = 1;");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("a".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("t".into()),
                Token::Keyword(Keyword::Where),
                Token::Ident("x".into()),
                Token::Eq,
                Token::Int(1),
                Token::Semicolon,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let t = toks("<> != <= >= < > || + - * / %");
        assert_eq!(
            t,
            vec![
                Token::Neq,
                Token::Neq,
                Token::LtEq,
                Token::GtEq,
                Token::Lt,
                Token::Gt,
                Token::Concat,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn string_escaping_doubles_quotes() {
        let t = toks("'it''s'");
        assert_eq!(t, vec![Token::Str("it's".into()), Token::Eof]);
    }

    #[test]
    fn strings_preserve_unicode() {
        let t = toks("'naïve λ'");
        assert_eq!(t, vec![Token::Str("naïve λ".into()), Token::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("SELECT -- line comment\n 1 /* block\ncomment */ + 2");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Int(1),
                Token::Plus,
                Token::Int(2),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        let t = toks("42 3.25 1e3 2.5E-2");
        assert_eq!(
            t,
            vec![
                Token::Int(42),
                Token::Float(3.25),
                Token::Float(1000.0),
                Token::Float(0.025),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn dot_after_integer_without_digits_is_separate() {
        // `t1.a` style qualification must not be eaten by number lexing.
        let t = toks("1.a");
        assert_eq!(
            t,
            vec![
                Token::Int(1),
                Token::Dot,
                Token::Ident("a".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifiers_keep_case() {
        let t = toks("\"Mixed Case\"");
        assert_eq!(t, vec![Token::Ident("Mixed Case".into()), Token::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        let err = Lexer::new("'abc").tokenize().unwrap_err();
        assert!(err.message().contains("unterminated"));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = Lexer::new("/* abc").tokenize().unwrap_err();
        assert!(err.message().contains("unterminated block comment"));
    }

    #[test]
    fn dollar_allowed_inside_identifier() {
        // Oracle exposes views like v$logmnr_contents.
        let t = toks("v$logmnr_contents");
        assert_eq!(
            t,
            vec![Token::Ident("v$logmnr_contents".into()), Token::Eof]
        );
    }

    #[test]
    fn unexpected_character_reports_offset() {
        let err = Lexer::new("SELECT ^").tokenize().unwrap_err();
        assert_eq!(err.offset(), 7);
    }
}
