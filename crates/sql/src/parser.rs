//! Recursive-descent parser for the resildb SQL dialect.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::token::{Keyword, Token};

/// A recursive-descent SQL parser over a pre-lexed token stream.
///
/// Most callers use the convenience functions [`crate::parse_statement`] and
/// [`crate::parse_statements`]; the parser type is exposed for incremental
/// use (e.g. parsing a statement and checking what input follows).
///
/// # Examples
///
/// ```
/// use resildb_sql::Parser;
///
/// # fn main() -> Result<(), resildb_sql::ParseError> {
/// let stmts = Parser::new("BEGIN; UPDATE t SET a = a + 1; COMMIT")?.parse_statements()?;
/// assert_eq!(stmts.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    next_param: u32,
}

impl Parser {
    /// Lexes `input` and prepares a parser over it.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if lexing fails.
    pub fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Self::from_tokens(Lexer::new(input).tokenize()?))
    }

    /// Prepares a parser over an already-lexed token stream (must end with
    /// [`Token::Eof`]).
    pub fn from_tokens(tokens: Vec<(Token, usize)>) -> Self {
        Self {
            tokens,
            pos: 0,
            next_param: 0,
        }
    }

    /// Parses exactly one statement; trailing semicolons are allowed but any
    /// other trailing tokens are an error.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed or trailing input.
    pub fn parse_single_statement(mut self) -> Result<Statement, ParseError> {
        let stmt = self.parse_statement()?;
        while self.eat(&Token::Semicolon) {}
        self.expect(&Token::Eof)?;
        Ok(stmt)
    }

    /// Like [`Self::parse_single_statement`] but also reports how many `?`
    /// parameter placeholders the statement contains. Placeholders are
    /// numbered left-to-right from zero in source order.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed or trailing input.
    pub fn parse_single_with_param_count(mut self) -> Result<(Statement, u32), ParseError> {
        let stmt = self.parse_statement()?;
        while self.eat(&Token::Semicolon) {}
        self.expect(&Token::Eof)?;
        Ok((stmt, self.next_param))
    }

    /// Parses a semicolon-separated list of statements until end of input.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on the first malformed statement.
    pub fn parse_statements(mut self) -> Result<Vec<Statement>, ParseError> {
        let mut out = Vec::new();
        loop {
            while self.eat(&Token::Semicolon) {}
            if self.check(&Token::Eof) {
                return Ok(out);
            }
            out.push(self.parse_statement()?);
            if !self.check(&Token::Semicolon) && !self.check(&Token::Eof) {
                return Err(self.err_here("expected ';' between statements"));
            }
        }
    }

    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].0
    }

    fn peek_offset(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn check_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), Token::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.check(t) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kw}, found {}", self.peek())))
        }
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.peek_offset())
    }

    /// Accepts an identifier; type-name keywords are also allowed as
    /// identifiers so column names like `text` work.
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.advance();
                Ok(s)
            }
            Token::Keyword(k @ (Keyword::Key | Keyword::Text | Keyword::Work | Keyword::Of)) => {
                self.advance();
                Ok(k.as_str().to_ascii_lowercase())
            }
            other => Err(self.err_here(format!("expected identifier, found {other}"))),
        }
    }

    // ---- statements ----------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Token::Keyword(Keyword::Select) => self.parse_select().map(Statement::Select),
            Token::Keyword(Keyword::Insert) => self.parse_insert().map(Statement::Insert),
            Token::Keyword(Keyword::Update) => self.parse_update().map(Statement::Update),
            Token::Keyword(Keyword::Delete) => self.parse_delete().map(Statement::Delete),
            Token::Keyword(Keyword::Create) => {
                self.parse_create_table().map(Statement::CreateTable)
            }
            Token::Keyword(Keyword::Drop) => {
                self.advance();
                self.expect_kw(Keyword::Table)?;
                let name = self.ident()?;
                Ok(Statement::DropTable(DropTable { name }))
            }
            Token::Keyword(Keyword::Begin) => {
                self.advance();
                self.eat_kw(Keyword::Transaction);
                self.eat_kw(Keyword::Work);
                Ok(Statement::Begin)
            }
            Token::Keyword(Keyword::Commit) => {
                self.advance();
                self.eat_kw(Keyword::Transaction);
                self.eat_kw(Keyword::Work);
                Ok(Statement::Commit)
            }
            Token::Keyword(Keyword::Rollback) => {
                self.advance();
                self.eat_kw(Keyword::Transaction);
                self.eat_kw(Keyword::Work);
                Ok(Statement::Rollback)
            }
            other => Err(self.err_here(format!("expected statement, found {other}"))),
        }
    }

    fn parse_select(&mut self) -> Result<Select, ParseError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut select = Select {
            distinct,
            items,
            ..Select::default()
        };
        if self.eat_kw(Keyword::From) {
            loop {
                select.from.push(self.parse_table_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Where) {
            select.where_clause = Some(self.parse_expr()?);
        }
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                select.group_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                select.order_by.push(OrderByItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Limit) {
            match self.advance() {
                Token::Int(n) if n >= 0 => select.limit = Some(n as u64),
                other => {
                    return Err(self.err_here(format!(
                        "expected non-negative integer after LIMIT, found {other}"
                    )))
                }
            }
        }
        if self.eat_kw(Keyword::For) {
            self.expect_kw(Keyword::Update)?;
            // Accept and ignore an `OF col` list (Oracle syntax).
            if self.eat_kw(Keyword::Of) {
                loop {
                    self.ident()?;
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            select.for_update = true;
        }
        Ok(select)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let Token::Ident(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.0) == Some(&Token::Dot)
                && self.tokens.get(self.pos + 2).map(|t| &t.0) == Some(&Token::Star)
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.ident()?;
        let alias = self.parse_optional_alias()?;
        Ok(TableRef { name, alias })
    }

    /// Parses an optional `AS alias` or bare-identifier alias.
    fn parse_optional_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw(Keyword::As) || matches!(self.peek(), Token::Ident(_)) {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn parse_insert(&mut self) -> Result<Insert, ParseError> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat(&Token::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> Result<Update, ParseError> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let column = self.ident()?;
            self.expect(&Token::Eq)?;
            let value = self.parse_expr()?;
            assignments.push(Assignment { column, value });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn parse_delete(&mut self) -> Result<Delete, ParseError> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Delete {
            table,
            where_clause,
        })
    }

    fn parse_create_table(&mut self) -> Result<CreateTable, ParseError> {
        self.expect_kw(Keyword::Create)?;
        self.expect_kw(Keyword::Table)?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.check_kw(Keyword::Primary) {
                self.advance();
                self.expect_kw(Keyword::Key)?;
                self.expect(&Token::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else {
                columns.push(self.parse_column_def()?);
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(CreateTable {
            name,
            columns,
            primary_key,
        })
    }

    fn parse_column_def(&mut self) -> Result<ColumnDef, ParseError> {
        let name = self.ident()?;
        let ty = self.parse_type_name()?;
        let mut def = ColumnDef::new(name, ty);
        loop {
            if self.eat_kw(Keyword::Not) {
                self.expect_kw(Keyword::Null)?;
                def.not_null = true;
            } else if self.eat_kw(Keyword::Identity) {
                def.identity = true;
            } else if self.check_kw(Keyword::Primary) {
                self.advance();
                self.expect_kw(Keyword::Key)?;
                def.primary_key = true;
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn parse_type_name(&mut self) -> Result<TypeName, ParseError> {
        let tok = self.advance();
        let Token::Keyword(kw) = tok else {
            return Err(self.err_here(format!("expected type name, found {tok}")));
        };
        match kw {
            Keyword::Integer | Keyword::Int | Keyword::Bigint => Ok(TypeName::Integer),
            Keyword::Float | Keyword::Real => Ok(TypeName::Float),
            Keyword::Double => {
                self.eat_kw(Keyword::Precision);
                Ok(TypeName::Float)
            }
            Keyword::Numeric | Keyword::Decimal => {
                let (mut precision, mut scale) = (18, 0);
                if self.eat(&Token::LParen) {
                    precision = self.expect_u32()?;
                    if self.eat(&Token::Comma) {
                        scale = self.expect_u32()?;
                    }
                    self.expect(&Token::RParen)?;
                }
                Ok(TypeName::Numeric { precision, scale })
            }
            Keyword::Varchar | Keyword::Char => {
                let mut len = None;
                if self.eat(&Token::LParen) {
                    len = Some(self.expect_u32()?);
                    self.expect(&Token::RParen)?;
                }
                Ok(TypeName::Varchar(len))
            }
            Keyword::Text => Ok(TypeName::Varchar(None)),
            Keyword::Timestamp => Ok(TypeName::Timestamp),
            other => Err(self.err_here(format!("expected type name, found {other}"))),
        }
    }

    fn expect_u32(&mut self) -> Result<u32, ParseError> {
        match self.advance() {
            Token::Int(n) if n >= 0 && n <= u32::MAX as i64 => Ok(n as u32),
            other => Err(self.err_here(format!("expected unsigned integer, found {other}"))),
        }
    }

    // ---- expressions (precedence climbing) -----------------------------

    /// Parses a full expression (lowest precedence: OR).
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_expr_at(1)
    }

    fn parse_expr_at(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            // Postfix predicates bind tighter than AND/OR but looser than
            // comparisons' operands; treat them at precedence 3.
            if min_prec <= 3 {
                if let Some(e) = self.try_parse_postfix(lhs.clone())? {
                    lhs = e;
                    continue;
                }
            }
            let Some(op) = self.peek_binary_op() else {
                return Ok(lhs);
            };
            let prec = op.precedence();
            if prec < min_prec {
                return Ok(lhs);
            }
            self.advance_binary_op(op);
            let rhs = self.parse_expr_at(prec + 1)?;
            lhs = Expr::Binary {
                left: Box::new(lhs),
                op,
                right: Box::new(rhs),
            };
        }
    }

    /// Attempts `IS [NOT] NULL`, `[NOT] IN`, `[NOT] BETWEEN`, `[NOT] LIKE`.
    fn try_parse_postfix(&mut self, lhs: Expr) -> Result<Option<Expr>, ParseError> {
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Some(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            }));
        }
        let negated = if self.check_kw(Keyword::Not)
            && matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.0),
                Some(Token::Keyword(
                    Keyword::In | Keyword::Between | Keyword::Like
                ))
            ) {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::In) {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Some(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            }));
        }
        if self.eat_kw(Keyword::Between) {
            // Bounds parse above AND so the separating AND is not consumed.
            let low = self.parse_expr_at(4)?;
            self.expect_kw(Keyword::And)?;
            let high = self.parse_expr_at(4)?;
            return Ok(Some(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            }));
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = self.parse_expr_at(5)?;
            return Ok(Some(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            }));
        }
        if negated {
            return Err(self.err_here("expected IN, BETWEEN or LIKE after NOT"));
        }
        Ok(None)
    }

    fn peek_binary_op(&self) -> Option<BinaryOp> {
        Some(match self.peek() {
            Token::Keyword(Keyword::Or) => BinaryOp::Or,
            Token::Keyword(Keyword::And) => BinaryOp::And,
            Token::Eq => BinaryOp::Eq,
            Token::Neq => BinaryOp::Neq,
            Token::Lt => BinaryOp::Lt,
            Token::LtEq => BinaryOp::LtEq,
            Token::Gt => BinaryOp::Gt,
            Token::GtEq => BinaryOp::GtEq,
            Token::Plus => BinaryOp::Add,
            Token::Minus => BinaryOp::Sub,
            Token::Star => BinaryOp::Mul,
            Token::Slash => BinaryOp::Div,
            Token::Percent => BinaryOp::Mod,
            Token::Concat => BinaryOp::Concat,
            _ => return None,
        })
    }

    fn advance_binary_op(&mut self, _op: BinaryOp) {
        self.advance();
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Keyword::Not) {
            let expr = self.parse_expr_at(3)?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            });
        }
        if self.eat(&Token::Minus) {
            let expr = self.parse_primary()?;
            // Fold `-<number>` into a negative literal so negative values
            // have one canonical AST form.
            return Ok(match expr {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&Token::Plus) {
            return self.parse_primary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            Token::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Token::Question => {
                self.advance();
                let idx = self.next_param;
                self.next_param += 1;
                Ok(Expr::Param(idx))
            }
            Token::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            Token::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            Token::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            Token::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Keyword(k @ (Keyword::Key | Keyword::Text | Keyword::Work | Keyword::Of)) => {
                // Soft keywords usable as plain column names.
                self.advance();
                let name = k.as_str().to_ascii_lowercase();
                if self.eat(&Token::Dot) {
                    let column = self.ident()?;
                    return Ok(Expr::Column(ColumnRef::qualified(name, column)));
                }
                Ok(Expr::Column(ColumnRef::unqualified(name)))
            }
            Token::Ident(name) => {
                self.advance();
                // Function call?
                if self.check(&Token::LParen) {
                    return self.parse_function_call(name);
                }
                // Qualified column?
                if self.eat(&Token::Dot) {
                    let column = self.ident()?;
                    return Ok(Expr::Column(ColumnRef::qualified(name, column)));
                }
                Ok(Expr::Column(ColumnRef::unqualified(name)))
            }
            other => Err(self.err_here(format!("expected expression, found {other}"))),
        }
    }

    fn parse_function_call(&mut self, name: String) -> Result<Expr, ParseError> {
        self.expect(&Token::LParen)?;
        let name = name.to_ascii_uppercase();
        if self.eat(&Token::Star) {
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function {
                name,
                args: Vec::new(),
                distinct: false,
                star: true,
            });
        }
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut args = Vec::new();
        if !self.check(&Token::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::Function {
            name,
            args,
            distinct,
            star: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    fn sel(sql: &str) -> Select {
        match parse_statement(sql).expect("parse ok") {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_select_with_everything() {
        let s = sel(
            "SELECT d.d_id, SUM(ol.ol_amount) AS total FROM district d, order_line ol \
             WHERE d.d_w_id = 1 AND ol.ol_d_id = d.d_id GROUP BY d.d_id \
             ORDER BY total DESC LIMIT 5 FOR UPDATE",
        );
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 2);
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(5));
        assert!(s.for_update);
    }

    #[test]
    fn parses_table_1_paper_shapes() {
        // The exact statement shapes from paper Table 1.
        sel("SELECT t1.a1, t1.a2, t2.a3 FROM t1, t2 WHERE t1.x = t2.x");
        sel("SELECT t.trid FROM t WHERE c = 1");
        sel("SELECT SUM(t.a) FROM t WHERE t.c > 0 GROUP BY t.b");
        parse_statement("UPDATE t SET a1 = 1, a2 = 'x', trid = 42 WHERE c = 1").unwrap();
        parse_statement("INSERT INTO t (a1, a2, trid) VALUES (1, 'x', 42)").unwrap();
        parse_statement("COMMIT").unwrap();
    }

    #[test]
    fn wildcards() {
        let s = sel("SELECT *, t.* FROM t");
        assert_eq!(s.items[0], SelectItem::Wildcard);
        assert_eq!(s.items[1], SelectItem::QualifiedWildcard("t".into()));
    }

    #[test]
    fn implicit_alias_without_as() {
        let s = sel("SELECT c_balance bal FROM customer c");
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("bal")),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.from[0].alias.as_deref(), Some("c"));
    }

    #[test]
    fn multi_row_insert() {
        let stmt = parse_statement("INSERT INTO t (a) VALUES (1), (2), (3)").unwrap();
        let Statement::Insert(i) = stmt else {
            unreachable!()
        };
        assert_eq!(i.rows.len(), 3);
    }

    #[test]
    fn insert_without_column_list() {
        let stmt = parse_statement("INSERT INTO t VALUES (1, 'a', NULL)").unwrap();
        let Statement::Insert(i) = stmt else {
            unreachable!()
        };
        assert!(i.columns.is_empty());
        assert_eq!(i.rows[0].len(), 3);
    }

    #[test]
    fn precedence_and_or() {
        // a = 1 OR b = 2 AND c = 3  ==>  a = 1 OR ((b = 2) AND (c = 3))
        let s = sel("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3");
        let Expr::Binary { op, .. } = s.where_clause.as_ref().unwrap() else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Or);
    }

    #[test]
    fn precedence_arithmetic() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let s = sel("SELECT 1 + 2 * 3");
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        let Expr::Binary { op, right, .. } = expr else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            **right,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn between_does_not_eat_outer_and() {
        let s = sel("SELECT x FROM t WHERE a BETWEEN 1 AND 5 AND b = 2");
        let Expr::Binary { op, left, .. } = s.where_clause.as_ref().unwrap() else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::And);
        assert!(matches!(**left, Expr::Between { .. }));
    }

    #[test]
    fn not_in_and_not_like() {
        let s = sel("SELECT x FROM t WHERE a NOT IN (1, 2) AND b NOT LIKE 'x%'");
        let w = s.where_clause.unwrap();
        let Expr::Binary { left, right, .. } = w else {
            panic!()
        };
        assert!(matches!(*left, Expr::InList { negated: true, .. }));
        assert!(matches!(*right, Expr::Like { negated: true, .. }));
    }

    #[test]
    fn is_null_and_is_not_null() {
        let s = sel("SELECT x FROM t WHERE a IS NULL AND b IS NOT NULL");
        let Expr::Binary { left, right, .. } = s.where_clause.unwrap() else {
            panic!()
        };
        assert!(matches!(*left, Expr::IsNull { negated: false, .. }));
        assert!(matches!(*right, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn count_star_and_distinct() {
        let s = sel("SELECT COUNT(*), COUNT(DISTINCT s_i_id) FROM stock");
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Function { star: true, .. }));
        let SelectItem::Expr { expr, .. } = &s.items[1] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Function { distinct: true, .. }));
    }

    #[test]
    fn create_table_full() {
        let stmt = parse_statement(
            "CREATE TABLE warehouse (w_id INTEGER NOT NULL PRIMARY KEY, \
             w_name VARCHAR(10), w_ytd NUMERIC(12,2), rid INTEGER IDENTITY, \
             PRIMARY KEY (w_id))",
        )
        .unwrap();
        let Statement::CreateTable(c) = stmt else {
            unreachable!()
        };
        assert_eq!(c.columns.len(), 4);
        assert!(c.columns[0].not_null && c.columns[0].primary_key);
        assert_eq!(c.columns[1].ty, TypeName::Varchar(Some(10)));
        assert_eq!(
            c.columns[2].ty,
            TypeName::Numeric {
                precision: 12,
                scale: 2
            }
        );
        assert!(c.columns[3].identity);
        assert_eq!(c.primary_key, vec!["w_id"]);
    }

    #[test]
    fn begin_commit_rollback_variants() {
        for sql in [
            "BEGIN",
            "BEGIN TRANSACTION",
            "BEGIN WORK",
            "COMMIT",
            "COMMIT WORK",
            "ROLLBACK",
            "ROLLBACK TRANSACTION",
        ] {
            parse_statement(sql).unwrap();
        }
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_statement("SELECT 1 SELECT 2").is_err());
    }

    #[test]
    fn missing_statement_separator_is_error() {
        let p = Parser::new("SELECT 1 SELECT 2").unwrap();
        assert!(p.parse_statements().is_err());
    }

    #[test]
    fn script_with_stray_semicolons() {
        let p = Parser::new(";;SELECT 1;;COMMIT;;").unwrap();
        assert_eq!(p.parse_statements().unwrap().len(), 2);
    }

    #[test]
    fn not_predicate() {
        let s = sel("SELECT x FROM t WHERE NOT a = 1");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn negative_numbers_fold_to_literals() {
        let s = sel("SELECT -3, -2.5, -x");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::Literal(Literal::Int(-3)),
                ..
            }
        ));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr {
                expr: Expr::Literal(Literal::Float(_)),
                ..
            }
        ));
        assert!(matches!(
            &s.items[2],
            SelectItem::Expr {
                expr: Expr::Unary {
                    op: UnaryOp::Neg,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn keywordish_identifiers_usable_as_columns() {
        parse_statement("SELECT key, text FROM t").unwrap();
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(err.offset() >= 7, "offset was {}", err.offset());
    }

    #[test]
    fn for_update_of_columns_accepted() {
        let s = sel("SELECT s_quantity FROM stock WHERE s_i_id = 1 FOR UPDATE OF s_quantity");
        assert!(s.for_update);
    }
}
