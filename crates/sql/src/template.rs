//! Statement-template machinery for the rewrite cache.
//!
//! The tracking proxy rewrites every statement it forwards (paper Table 1).
//! Doing that work from scratch — lex, parse, clone, print — on every
//! statement is the dominant proxy CPU cost. This module lets the proxy do
//! the full rewrite **once per statement shape** and replay it with a hash
//! lookup plus a literal splice:
//!
//! 1. [`scan_statement`] makes one allocation-light pass over the raw SQL,
//!    producing a literal-masking [fingerprint](StatementScan::fingerprint)
//!    (same shape ⇒ same fingerprint, à la `pg_stat_statements`) and the
//!    byte spans of the maskable literals.
//! 2. On a cache miss, [`parse_template`] re-lexes the statement with those
//!    literals replaced by `?` placeholders, yielding a [`Statement`] whose
//!    [`Expr::Param`] nodes stand in for the literals. The proxy rewrites
//!    that AST as usual and captures the printed text as a [`SqlTemplate`].
//! 3. On a hit, [`SqlTemplate::splice`] copies the statement's own literal
//!    text (and the current transaction id) into the cached text — no
//!    parsing at all.
//!
//! Masking is deliberately conservative; see [`scan_statement`] for the
//! exact rules. Whenever the scanner, the lexer and the parser do not agree
//! perfectly, callers fall back to the cold path, so the cache can only
//! reproduce what the cold path would have produced.

use crate::ast::{Expr, Literal, SelectItem, Statement, TRID_PARAM};
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::parser::Parser;
use crate::token::Token;
use std::fmt;

/// Kind of a maskable literal found by [`scan_statement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiteralKind {
    /// Integer literal.
    Int,
    /// Floating-point literal (decimal point and/or exponent).
    Float,
    /// Single-quoted string literal (span includes the quotes).
    Str,
}

/// Byte span of one maskable literal in the raw SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiteralSpan {
    /// Byte offset of the literal's first character.
    pub start: usize,
    /// Byte offset one past the literal's last character.
    pub end: usize,
    /// What the literal is.
    pub kind: LiteralKind,
}

impl LiteralSpan {
    /// The literal's source text within `raw`.
    pub fn text<'a>(&self, raw: &'a str) -> &'a str {
        &raw[self.start..self.end]
    }
}

/// Result of fingerprinting one statement: the shape hash plus the literal
/// spans that were masked out of it, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementScan {
    /// 128-bit shape fingerprint (two independent 64-bit FNV-1a variants).
    ///
    /// Not cryptographic: collisions are guarded against only by the
    /// slot-count check cached templates perform, which is adequate for the
    /// deterministic, non-adversarial workloads this framework simulates.
    pub fingerprint: u128,
    /// Maskable literals in source order. Statements with the same
    /// fingerprint have literals of possibly different values (and kinds)
    /// at the same token positions.
    pub spans: Vec<LiteralSpan>,
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Byte written between tokens so adjacent tokens hash distinctly.
const SEP: u8 = 0x1f;
/// Byte hashed in place of a masked literal.
const MASKED: u8 = 0x11;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prev {
    Start,
    LimitKw,
    Minus,
    Other,
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    h1: u64,
    h2: u64,
    spans: Vec<LiteralSpan>,
    prev: Prev,
}

impl<'a> Scanner<'a> {
    fn new(sql: &'a str) -> Self {
        Self {
            bytes: sql.as_bytes(),
            pos: 0,
            h1: FNV_OFFSET_A,
            h2: FNV_OFFSET_B,
            spans: Vec::new(),
            prev: Prev::Start,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<u8> {
        self.bytes.get(self.pos + n).copied()
    }

    fn hash_byte(&mut self, b: u8) {
        self.h1 = (self.h1 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.h2 = (self.h2 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    fn hash_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash_byte(b);
        }
    }

    /// Skips whitespace and comments (not hashed — they cannot change the
    /// parse). Returns `false` on an unterminated block comment.
    fn skip_trivia(&mut self) -> bool {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'-') if self.peek_at(1) == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => return false,
                        }
                    }
                }
                _ => return true,
            }
        }
    }

    /// Scans past a number, mirroring the lexer's rules exactly.
    /// Returns its kind, or `None` for an integer too long to fit `i64`
    /// (the cold path must surface that error).
    fn scan_number(&mut self) -> Option<LiteralKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let int_digits = self.pos - start;
        let mut kind = LiteralKind::Int;
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit()) {
            kind = LiteralKind::Float;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut look = 1;
            if matches!(self.peek_at(1), Some(b'+' | b'-')) {
                look = 2;
            }
            if matches!(self.peek_at(look), Some(c) if c.is_ascii_digit()) {
                kind = LiteralKind::Float;
                self.pos += look + 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        if kind == LiteralKind::Int && int_digits > 18 {
            return None; // may overflow i64; let the cold path report it
        }
        Some(kind)
    }

    /// Scans past a `'...'` string (with `''` escapes). Returns `false` if
    /// unterminated.
    fn scan_string(&mut self) -> bool {
        self.pos += 1; // opening quote
        loop {
            match self.peek() {
                Some(b'\'') => {
                    if self.peek_at(1) == Some(b'\'') {
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return true;
                    }
                }
                Some(_) => self.pos += 1,
                None => return false,
            }
        }
    }
}

/// Fingerprints `sql`, masking the literals a cached template can splice
/// back in. Returns `None` whenever the statement must take the cold
/// (full-parse) path instead:
///
/// * the first keyword is not `SELECT` / `INSERT` / `UPDATE` / `DELETE`
///   (DDL and transaction control are not worth caching);
/// * the text contains a `?` anywhere — template text marks splice slots
///   with `?`, so raw placeholders would be ambiguous;
/// * the text does not lex cleanly (the cold path must surface the error).
///
/// Masking rules — a literal is replaced by a placeholder **unless**:
///
/// * it is a number directly following the `LIMIT` keyword (the grammar
///   requires a plain integer there);
/// * it is a number directly following a `-` token — the parser folds
///   `-5` into a single negative literal, so masking would change the AST
///   shape the engine plans from (point lookups match `Expr::Literal`);
/// * integers longer than 18 digits (possible `i64` overflow) refuse the
///   whole statement so the cold path can report the range error.
pub fn scan_statement(sql: &str) -> Option<StatementScan> {
    let bytes = sql.as_bytes();
    if bytes.contains(&b'?') {
        return None;
    }
    let mut s = Scanner::new(sql);
    loop {
        if !s.skip_trivia() {
            return None;
        }
        let start = s.pos;
        let Some(c) = s.peek() else {
            break;
        };
        s.hash_byte(SEP);
        match c {
            b',' | b'(' | b')' | b';' | b'.' | b'*' | b'=' | b'+' | b'/' | b'%' => {
                s.pos += 1;
                s.hash_byte(c);
                s.prev = Prev::Other;
            }
            b'-' => {
                s.pos += 1;
                s.hash_byte(c);
                s.prev = Prev::Minus;
            }
            b'<' | b'>' => {
                s.pos += 1;
                if matches!(
                    (c, s.peek()),
                    (b'<', Some(b'=' | b'>')) | (b'>', Some(b'='))
                ) {
                    s.pos += 1;
                }
                s.hash_bytes(&bytes[start..s.pos]);
                s.prev = Prev::Other;
            }
            b'!' => {
                s.pos += 1;
                if s.peek() != Some(b'=') {
                    return None;
                }
                s.pos += 1;
                // `!=` and `<>` lex to the same token; hash them alike.
                s.hash_bytes(b"<>");
                s.prev = Prev::Other;
            }
            b'|' => {
                s.pos += 1;
                if s.peek() != Some(b'|') {
                    return None;
                }
                s.pos += 1;
                s.hash_bytes(b"||");
                s.prev = Prev::Other;
            }
            b'\'' => {
                if !s.scan_string() {
                    return None;
                }
                s.hash_byte(MASKED);
                s.spans.push(LiteralSpan {
                    start,
                    end: s.pos,
                    kind: LiteralKind::Str,
                });
                s.prev = Prev::Other;
            }
            b'"' => {
                s.pos += 1;
                loop {
                    match s.peek() {
                        Some(b'"') => {
                            s.pos += 1;
                            break;
                        }
                        Some(_) => s.pos += 1,
                        None => return None,
                    }
                }
                s.hash_bytes(&bytes[start..s.pos]);
                s.prev = Prev::Other;
            }
            b'0'..=b'9' => {
                let kind = s.scan_number()?;
                if matches!(s.prev, Prev::LimitKw | Prev::Minus) {
                    s.hash_bytes(&bytes[start..s.pos]);
                } else {
                    s.hash_byte(MASKED);
                    s.spans.push(LiteralSpan {
                        start,
                        end: s.pos,
                        kind,
                    });
                }
                s.prev = Prev::Other;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                while matches!(s.peek(), Some(c) if c == b'_' || c == b'$' || c.is_ascii_alphanumeric())
                {
                    s.pos += 1;
                }
                let word = &bytes[start..s.pos];
                if s.prev == Prev::Start
                    && !(word.eq_ignore_ascii_case(b"select")
                        || word.eq_ignore_ascii_case(b"insert")
                        || word.eq_ignore_ascii_case(b"update")
                        || word.eq_ignore_ascii_case(b"delete"))
                {
                    return None;
                }
                s.hash_bytes(word);
                s.prev = if word.eq_ignore_ascii_case(b"limit") {
                    Prev::LimitKw
                } else {
                    Prev::Other
                };
            }
            _ => return None,
        }
    }
    if s.prev == Prev::Start {
        return None; // empty statement
    }
    Some(StatementScan {
        fingerprint: (u128::from(s.h1) << 64) | u128::from(s.h2),
        spans: s.spans,
    })
}

/// Parses `sql` with the literals in `scan.spans` replaced by parameter
/// placeholders, producing the statement **template**: an AST identical to
/// the cold parse except that each masked literal is an [`Expr::Param`]
/// numbered by its source position (`Param(k)` ⇔ `scan.spans[k]`).
///
/// Returns `None` when the scanner's view of the text disagrees with the
/// lexer/parser in any way (different token boundaries, a placeholder that
/// lands somewhere the grammar cannot accept one, a parse error) — callers
/// must then use the cold path.
pub fn parse_template(sql: &str, scan: &StatementScan) -> Option<Statement> {
    let mut tokens = Lexer::new(sql).tokenize().ok()?;
    let mut next_span = 0usize;
    for (tok, off) in tokens.iter_mut() {
        let Some(span) = scan.spans.get(next_span) else {
            break;
        };
        if *off == span.start {
            if !matches!(tok, Token::Int(_) | Token::Float(_) | Token::Str(_)) {
                return None;
            }
            *tok = Token::Question;
            next_span += 1;
        }
    }
    if next_span != scan.spans.len() {
        return None;
    }
    let (stmt, params) = Parser::from_tokens(tokens)
        .parse_single_with_param_count()
        .ok()?;
    (params as usize == scan.spans.len()).then_some(stmt)
}

fn collect_expr_params(e: &Expr, out: &mut Vec<u32>) {
    e.walk(&mut |node| {
        if let Expr::Param(i) = node {
            out.push(*i);
        }
    });
}

/// Lists the parameter indices of `stmt` in **printed order** — the order
/// in which the `Display` impls emit the corresponding `?` characters.
///
/// The clause walk below mirrors [`crate::printer`] exactly; within one
/// expression, pre-order traversal matches print order because every
/// `Display` arm emits its operands left-to-right.
pub fn collect_params(stmt: &Statement) -> Vec<u32> {
    let mut out = Vec::new();
    match stmt {
        Statement::Select(s) => {
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    collect_expr_params(expr, &mut out);
                }
            }
            if let Some(w) = &s.where_clause {
                collect_expr_params(w, &mut out);
            }
            for e in &s.group_by {
                collect_expr_params(e, &mut out);
            }
            for o in &s.order_by {
                collect_expr_params(&o.expr, &mut out);
            }
        }
        Statement::Insert(i) => {
            for row in &i.rows {
                for e in row {
                    collect_expr_params(e, &mut out);
                }
            }
        }
        Statement::Update(u) => {
            for a in &u.assignments {
                collect_expr_params(&a.value, &mut out);
            }
            if let Some(w) = &u.where_clause {
                collect_expr_params(w, &mut out);
            }
        }
        Statement::Delete(d) => {
            if let Some(w) = &d.where_clause {
                collect_expr_params(w, &mut out);
            }
        }
        _ => {}
    }
    out
}

/// What a `?` in a cached template's text stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateSlot {
    /// The k-th masked literal of the incoming statement
    /// (`scan.spans[k]` from [`scan_statement`]).
    Literal(usize),
    /// The proxy's current transaction id.
    Trid,
}

/// A fully rewritten statement captured as text with splice slots.
///
/// Built once on a cache miss from the printed rewrite of a template AST;
/// replayed on hits by [`Self::splice`], which costs one pass over the
/// text plus the literal copies — no lexing, parsing or printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlTemplate {
    text: String,
    slots: Vec<(usize, TemplateSlot)>,
    literal_slots: usize,
}

impl SqlTemplate {
    /// Captures `text` (the printed rewrite, with `?` at every splice
    /// point) against `param_order`, the printed-order parameter indices
    /// from [`collect_params`].
    ///
    /// Returns `None` if the number of `?` characters does not equal
    /// `param_order.len()` — the safety net that guarantees every `?` in
    /// the text is a real slot (templating refuses raw SQL containing `?`,
    /// and the rewrites never inject string literals).
    pub fn new(text: String, param_order: &[u32]) -> Option<Self> {
        let mut slots = Vec::with_capacity(param_order.len());
        let mut literal_slots = 0usize;
        let mut order = param_order.iter();
        for (off, b) in text.bytes().enumerate() {
            if b == b'?' {
                let &idx = order.next()?;
                let slot = if idx == TRID_PARAM {
                    TemplateSlot::Trid
                } else {
                    literal_slots += 1;
                    TemplateSlot::Literal(idx as usize)
                };
                slots.push((off, slot));
            }
        }
        if order.next().is_some() {
            return None;
        }
        Some(Self {
            text,
            slots,
            literal_slots,
        })
    }

    /// Number of literal (non-trid) splice slots. A hit must check this
    /// equals the incoming scan's span count before splicing (fingerprint-
    /// collision and logic-drift guard).
    pub fn literal_slots(&self) -> usize {
        self.literal_slots
    }

    /// The template text (placeholders included) — for diagnostics.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Renders the final SQL by copying each masked literal's source text
    /// from `raw` (per `spans`) and the decimal rendering of `trid` into
    /// the slots.
    ///
    /// Callers must have verified `spans.len() == self.literal_slots()`;
    /// out-of-range slots panic (indicating a missed verification).
    pub fn splice(&self, raw: &str, spans: &[LiteralSpan], trid: i64) -> String {
        let mut trid_buf = itoa_buf();
        let trid_text = format_i64(trid, &mut trid_buf);
        let extra: usize = spans.iter().map(|s| s.end - s.start).sum();
        let mut out = String::with_capacity(self.text.len() + extra + trid_text.len());
        let mut at = 0usize;
        for &(off, slot) in &self.slots {
            out.push_str(&self.text[at..off]);
            match slot {
                TemplateSlot::Literal(k) => out.push_str(spans[k].text(raw)),
                TemplateSlot::Trid => out.push_str(trid_text),
            }
            at = off + 1; // skip the '?'
        }
        out.push_str(&self.text[at..]);
        out
    }
}

/// Fixed buffer for rendering an `i64` without allocating.
fn itoa_buf() -> [u8; 21] {
    [0u8; 21]
}

fn format_i64(v: i64, buf: &mut [u8; 21]) -> &str {
    let mut u = v.unsigned_abs();
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (u % 10) as u8;
        u /= 10;
        if u == 0 {
            break;
        }
    }
    if v < 0 {
        i -= 1;
        buf[i] = b'-';
    }
    // The buffer holds only ASCII digits and an optional sign.
    std::str::from_utf8(&buf[i..]).unwrap_or("0")
}

/// Parses the typed value of a masked literal from its source text,
/// mirroring the lexer's literal rules (including `''` unescaping).
/// Returns `None` for out-of-range values — callers fall back cold.
pub fn parse_span_literal(raw: &str, span: &LiteralSpan) -> Option<Literal> {
    let text = span.text(raw);
    match span.kind {
        LiteralKind::Int => text.parse::<i64>().ok().map(Literal::Int),
        LiteralKind::Float => text.parse::<f64>().ok().map(Literal::Float),
        LiteralKind::Str => {
            let body = text.strip_prefix('\'')?.strip_suffix('\'')?;
            Some(Literal::Str(body.replace("''", "'")))
        }
    }
}

/// Error binding parameter values into a statement template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError(String);

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bind error: {}", self.0)
    }
}

impl std::error::Error for BindError {}

impl From<BindError> for ParseError {
    fn from(e: BindError) -> Self {
        ParseError::new(e.0, 0)
    }
}

fn bind_expr(e: &Expr, params: &[Literal]) -> Result<Expr, BindError> {
    Ok(match e {
        Expr::Param(i) => {
            if *i == TRID_PARAM {
                return Err(BindError("trid slot cannot be bound as a value".into()));
            }
            let lit = params.get(*i as usize).ok_or_else(|| {
                BindError(format!(
                    "parameter ?{i} out of range ({} values bound)",
                    params.len()
                ))
            })?;
            Expr::Literal(lit.clone())
        }
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bind_expr(expr, params)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(bind_expr(left, params)?),
            op: *op,
            right: Box::new(bind_expr(right, params)?),
        },
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| bind_expr(a, params))
                .collect::<Result<_, _>>()?,
            distinct: *distinct,
            star: *star,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_expr(expr, params)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bind_expr(expr, params)?),
            list: list
                .iter()
                .map(|e| bind_expr(e, params))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(bind_expr(expr, params)?),
            low: Box::new(bind_expr(low, params)?),
            high: Box::new(bind_expr(high, params)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(bind_expr(expr, params)?),
            pattern: Box::new(bind_expr(pattern, params)?),
            negated: *negated,
        },
    })
}

fn bind_opt(e: &Option<Expr>, params: &[Literal]) -> Result<Option<Expr>, BindError> {
    e.as_ref().map(|e| bind_expr(e, params)).transpose()
}

/// Substitutes `params[i]` for every `Param(i)` in `stmt`, producing the
/// statement the cold path would have parsed from the literal-bearing SQL.
///
/// # Errors
///
/// A parameter index with no bound value, or a [`TRID_PARAM`] slot (those
/// exist only in proxy-side templates, which splice text instead).
pub fn bind_statement(stmt: &Statement, params: &[Literal]) -> Result<Statement, BindError> {
    Ok(match stmt {
        Statement::Select(s) => {
            let mut out = s.clone();
            for item in &mut out.items {
                if let SelectItem::Expr { expr, .. } = item {
                    *expr = bind_expr(expr, params)?;
                }
            }
            out.where_clause = bind_opt(&s.where_clause, params)?;
            out.group_by = s
                .group_by
                .iter()
                .map(|e| bind_expr(e, params))
                .collect::<Result<_, _>>()?;
            for o in &mut out.order_by {
                o.expr = bind_expr(&o.expr, params)?;
            }
            Statement::Select(out)
        }
        Statement::Insert(i) => {
            let mut out = i.clone();
            out.rows = i
                .rows
                .iter()
                .map(|row| row.iter().map(|e| bind_expr(e, params)).collect())
                .collect::<Result<_, _>>()?;
            Statement::Insert(out)
        }
        Statement::Update(u) => {
            let mut out = u.clone();
            for a in &mut out.assignments {
                a.value = bind_expr(&a.value, params)?;
            }
            out.where_clause = bind_opt(&u.where_clause, params)?;
            Statement::Update(out)
        }
        Statement::Delete(d) => {
            let mut out = d.clone();
            out.where_clause = bind_opt(&d.where_clause, params)?;
            Statement::Delete(out)
        }
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    #[test]
    fn same_shape_same_fingerprint() {
        let a = scan_statement("SELECT a FROM t WHERE x = 1 AND y = 'foo'").unwrap();
        let b = scan_statement("SELECT a FROM t WHERE x = 942 AND y = 'bar''s'").unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.spans[0].kind, LiteralKind::Int);
        assert_eq!(a.spans[1].kind, LiteralKind::Str);
        assert_eq!(
            b.spans[1].text("SELECT a FROM t WHERE x = 942 AND y = 'bar''s'"),
            "'bar''s'"
        );
    }

    #[test]
    fn different_shape_different_fingerprint() {
        let a = scan_statement("SELECT a FROM t WHERE x = 1").unwrap();
        let b = scan_statement("SELECT a FROM t WHERE y = 1").unwrap();
        let c = scan_statement("SELECT a FROM t WHERE x > 1").unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn whitespace_and_comments_do_not_change_fingerprint() {
        let a = scan_statement("SELECT a FROM t WHERE x = 1").unwrap();
        let b = scan_statement("SELECT  a /* hi */ FROM t -- c\n WHERE x = 2").unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn neq_spellings_share_fingerprint() {
        let a = scan_statement("SELECT a FROM t WHERE x <> 1").unwrap();
        let b = scan_statement("SELECT a FROM t WHERE x != 1").unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn limit_and_negative_numbers_stay_unmasked() {
        let scan = scan_statement("SELECT a FROM t WHERE x = -5 AND y = 3 LIMIT 7").unwrap();
        // Only the `3` is maskable.
        assert_eq!(scan.spans.len(), 1);
        assert_eq!(
            scan.spans[0].text("SELECT a FROM t WHERE x = -5 AND y = 3 LIMIT 7"),
            "3"
        );
        // Different LIMIT ⇒ different fingerprint (it is part of the shape).
        let other = scan_statement("SELECT a FROM t WHERE x = -5 AND y = 3 LIMIT 9").unwrap();
        assert_ne!(scan.fingerprint, other.fingerprint);
    }

    #[test]
    fn non_dml_and_placeholders_refuse_templating() {
        assert!(scan_statement("BEGIN").is_none());
        assert!(scan_statement("CREATE TABLE t (a INTEGER)").is_none());
        assert!(scan_statement("COMMIT").is_none());
        assert!(scan_statement("SELECT a FROM t WHERE x = ?").is_none());
        assert!(scan_statement("").is_none());
        assert!(scan_statement("SELECT 'unterminated").is_none());
        assert!(scan_statement("SELECT 99999999999999999999").is_none());
    }

    #[test]
    fn template_binds_back_to_cold_ast() {
        for sql in [
            "SELECT a, b FROM t WHERE x = 1 AND y = 'foo' ORDER BY a LIMIT 3",
            "SELECT COUNT(*) FROM stock WHERE s_quantity < 10",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2.5, 'it''s')",
            "UPDATE t SET a = a + 1, b = 'y' WHERE c BETWEEN 1 AND 5",
            "DELETE FROM t WHERE a IN (1, 2, 3) AND b LIKE 'BAR%'",
            "SELECT a FROM t WHERE x = -5 AND y = 1e3",
        ] {
            let scan = scan_statement(sql).unwrap_or_else(|| panic!("scan {sql:?}"));
            let tmpl = parse_template(sql, &scan).unwrap_or_else(|| panic!("template {sql:?}"));
            let values: Vec<Literal> = scan
                .spans
                .iter()
                .map(|s| parse_span_literal(sql, s).unwrap())
                .collect();
            let bound = bind_statement(&tmpl, &values).unwrap();
            let cold = parse_statement(sql).unwrap();
            assert_eq!(bound, cold, "bind mismatch for {sql:?}");
        }
    }

    #[test]
    fn splice_reproduces_statement_text() {
        let sql = "SELECT a FROM t WHERE x = 42 AND y = 'v'";
        let scan = scan_statement(sql).unwrap();
        let tmpl_stmt = parse_template(sql, &scan).unwrap();
        let order = collect_params(&tmpl_stmt);
        assert_eq!(order, vec![0, 1]);
        let tmpl = SqlTemplate::new(tmpl_stmt.to_string(), &order).unwrap();
        assert_eq!(tmpl.literal_slots(), 2);
        let spliced = tmpl.splice(sql, &scan.spans, 0);
        assert_eq!(spliced, "SELECT a FROM t WHERE x = 42 AND y = 'v'");
        // A second statement of the same shape splices its own literals.
        let sql2 = "SELECT a FROM t WHERE x = 7 AND y = 'it''s'";
        let scan2 = scan_statement(sql2).unwrap();
        assert_eq!(scan.fingerprint, scan2.fingerprint);
        assert_eq!(tmpl.splice(sql2, &scan2.spans, 0), sql2);
    }

    #[test]
    fn splice_renders_trid_slot() {
        let tmpl = SqlTemplate::new(
            "UPDATE t SET a = ?, trid = ? WHERE c = ?".into(),
            &[0, TRID_PARAM, 1],
        )
        .unwrap();
        assert_eq!(tmpl.literal_slots(), 2);
        let sql = "UPDATE x SET a = 10 WHERE c = 20"; // spans below point here
        let spans = [
            LiteralSpan {
                start: 17,
                end: 19,
                kind: LiteralKind::Int,
            },
            LiteralSpan {
                start: 30,
                end: 32,
                kind: LiteralKind::Int,
            },
        ];
        assert_eq!(
            tmpl.splice(sql, &spans, 42),
            "UPDATE t SET a = 10, trid = 42 WHERE c = 20"
        );
    }

    #[test]
    fn template_new_rejects_count_mismatch() {
        assert!(SqlTemplate::new("SELECT ?".into(), &[]).is_none());
        assert!(SqlTemplate::new("SELECT 1".into(), &[0]).is_none());
    }

    #[test]
    fn collect_params_matches_print_order() {
        for sql in [
            "SELECT a + 1, b FROM t WHERE x = 2 AND y IN (3, 4) GROUP BY z ORDER BY w",
            "UPDATE t SET a = 1, b = 2 WHERE c = 3",
            "INSERT INTO t VALUES (1, 'a'), (2, 'b')",
            "DELETE FROM t WHERE a BETWEEN 1 AND 2 OR b LIKE 'x%'",
        ] {
            let scan = scan_statement(sql).unwrap();
            let tmpl = parse_template(sql, &scan).unwrap();
            let order = collect_params(&tmpl);
            // The printed text's k-th `?` must correspond to order[k]; we
            // check by splicing the original literals back and comparing
            // against the cold print.
            let sql_tmpl = SqlTemplate::new(tmpl.to_string(), &order).unwrap();
            let cold = parse_statement(sql).unwrap().to_string();
            assert_eq!(sql_tmpl.splice(sql, &scan.spans, 0), cold, "for {sql:?}");
        }
    }

    #[test]
    fn bind_rejects_missing_and_trid_params() {
        let stmt = parse_template(
            "SELECT a FROM t WHERE x = 1",
            &scan_statement("SELECT a FROM t WHERE x = 1").unwrap(),
        )
        .unwrap();
        assert!(bind_statement(&stmt, &[]).is_err());
        let trid_stmt = Statement::Select(crate::Select {
            items: vec![SelectItem::Expr {
                expr: Expr::Param(TRID_PARAM),
                alias: None,
            }],
            ..Default::default()
        });
        assert!(bind_statement(&trid_stmt, &[Literal::Int(1)]).is_err());
    }

    #[test]
    fn span_literals_parse_with_lexer_semantics() {
        let sql = "SELECT 1, 2.5, 1e3, 'it''s'";
        let scan = scan_statement(sql).unwrap();
        let vals: Vec<Literal> = scan
            .spans
            .iter()
            .map(|s| parse_span_literal(sql, s).unwrap())
            .collect();
        assert_eq!(
            vals,
            vec![
                Literal::Int(1),
                Literal::Float(2.5),
                Literal::Float(1000.0),
                Literal::Str("it's".into()),
            ]
        );
    }
}
