//! `Display` implementations rendering the AST back to SQL text.
//!
//! The printer is precedence-aware: it inserts parentheses exactly where the
//! parser would otherwise re-associate, so `parse(print(ast)) == ast` holds
//! for every AST this crate can produce (verified by property tests). This
//! is the guarantee the paper's query-rewriting proxy relies on: it rewrites
//! the AST and sends the printed text to the real DBMS.

use std::fmt::{self, Display, Formatter, Write as _};

use crate::ast::*;
use crate::token::Keyword;

/// Whether `ident` lexes back as a single bare identifier token: plain
/// ASCII shape and not a keyword.
fn is_plain_ident(ident: &str) -> bool {
    let mut bytes = ident.bytes();
    let Some(first) = bytes.next() else {
        return false;
    };
    (first == b'_' || first.is_ascii_alphabetic())
        && bytes.all(|c| c == b'_' || c == b'$' || c.is_ascii_alphanumeric())
        && Keyword::from_ident(ident).is_none()
}

/// Writes an identifier, double-quoting it when it would not survive a
/// lex/parse round trip bare (non-ASCII names, punctuation, keyword
/// collisions). The lexer has no escape for `"` inside quoted identifiers,
/// so such names cannot be produced by parsing and are printed as-is.
fn write_ident(f: &mut Formatter<'_>, ident: &str) -> fmt::Result {
    if is_plain_ident(ident) || ident.contains('"') {
        f.write_str(ident)
    } else {
        write!(f, "\"{ident}\"")
    }
}

/// Escapes a string literal body (`'` doubled) and wraps it in quotes.
fn write_str_literal(f: &mut Formatter<'_>, s: &str) -> fmt::Result {
    f.write_char('\'')?;
    for c in s.chars() {
        if c == '\'' {
            f.write_str("''")?;
        } else {
            f.write_char(c)?;
        }
    }
    f.write_char('\'')
}

impl Display for Literal {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    // Keep a decimal point so it re-lexes as a float.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write_str_literal(f, s),
            Literal::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

impl Display for ColumnRef {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.table {
            write_ident(f, t)?;
            f.write_char('.')?;
        }
        write_ident(f, &self.column)
    }
}

/// Effective binding strength of an already-built expression, mirroring the
/// parser's precedence levels. Atomic nodes get the maximum.
fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => op.precedence(),
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => 3,
        Expr::IsNull { .. } | Expr::InList { .. } | Expr::Between { .. } | Expr::Like { .. } => 3,
        Expr::Unary {
            op: UnaryOp::Neg, ..
        } => 7,
        Expr::Column(_) | Expr::Literal(_) | Expr::Param(_) | Expr::Function { .. } => 8,
    }
}

fn is_postfix(e: &Expr) -> bool {
    matches!(
        e,
        Expr::IsNull { .. } | Expr::InList { .. } | Expr::Between { .. } | Expr::Like { .. }
    )
}

/// Writes `e`, parenthesised when its binding strength is below `min` —
/// except that postfix predicates may be exempted (they chain correctly as
/// left operands of further postfix predicates).
fn write_child(f: &mut Formatter<'_>, e: &Expr, min: u8, allow_postfix: bool) -> fmt::Result {
    let needs_parens = if is_postfix(e) {
        !allow_postfix
    } else {
        expr_prec(e) < min
    };
    if needs_parens {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

impl Display for Expr {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Param(_) => f.write_str("?"),
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => {
                f.write_str("NOT ")?;
                write_child(f, expr, 3, true)
            }
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => {
                f.write_char('-')?;
                // The parser applies unary minus to a primary only.
                if expr_prec(expr) == 8 {
                    write!(f, "{expr}")
                } else {
                    write!(f, "({expr})")
                }
            }
            Expr::Binary { left, op, right } => {
                // Left-associative: equal precedence fine on the left,
                // must be parenthesised on the right.
                let p = op.precedence();
                write_child(f, left, p, p <= 3)?;
                write!(f, " {} ", op.as_str())?;
                write_child(f, right, p + 1, false)?;
                Ok(())
            }
            Expr::Function {
                name,
                args,
                distinct,
                star,
            } => {
                write!(f, "{name}(")?;
                if *star {
                    f.write_char('*')?;
                } else {
                    if *distinct {
                        f.write_str("DISTINCT ")?;
                    }
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                f.write_char(')')
            }
            Expr::IsNull { expr, negated } => {
                write_child(f, expr, 4, true)?;
                f.write_str(if *negated { " IS NOT NULL" } else { " IS NULL" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write_child(f, expr, 4, true)?;
                f.write_str(if *negated { " NOT IN (" } else { " IN (" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_char(')')
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write_child(f, expr, 4, true)?;
                f.write_str(if *negated {
                    " NOT BETWEEN "
                } else {
                    " BETWEEN "
                })?;
                write_child(f, low, 4, false)?;
                f.write_str(" AND ")?;
                write_child(f, high, 4, false)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write_child(f, expr, 4, true)?;
                f.write_str(if *negated { " NOT LIKE " } else { " LIKE " })?;
                write_child(f, pattern, 5, false)
            }
        }
    }
}

impl Display for SelectItem {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_char('*'),
            SelectItem::QualifiedWildcard(t) => {
                write_ident(f, t)?;
                f.write_str(".*")
            }
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    f.write_str(" AS ")?;
                    write_ident(f, a)?;
                }
                Ok(())
            }
        }
    }
}

impl Display for TableRef {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        write_ident(f, &self.name)?;
        if let Some(a) = &self.alias {
            f.write_char(' ')?;
            write_ident(f, a)?;
        }
        Ok(())
    }
}

impl Display for Select {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    f.write_str(" DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        if self.for_update {
            f.write_str(" FOR UPDATE")?;
        }
        Ok(())
    }
}

impl Display for Insert {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        f.write_str("INSERT INTO ")?;
        write_ident(f, &self.table)?;
        if !self.columns.is_empty() {
            f.write_str(" (")?;
            for (i, c) in self.columns.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_ident(f, c)?;
            }
            f.write_char(')')?;
        }
        f.write_str(" VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_char('(')?;
            for (j, e) in row.iter().enumerate() {
                if j > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}")?;
            }
            f.write_char(')')?;
        }
        Ok(())
    }
}

impl Display for Update {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        f.write_str("UPDATE ")?;
        write_ident(f, &self.table)?;
        f.write_str(" SET ")?;
        for (i, a) in self.assignments.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write_ident(f, &a.column)?;
            write!(f, " = {}", a.value)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl Display for Delete {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        f.write_str("DELETE FROM ")?;
        write_ident(f, &self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl Display for TypeName {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            TypeName::Integer => f.write_str("INTEGER"),
            TypeName::Float => f.write_str("FLOAT"),
            TypeName::Numeric { precision, scale } => {
                write!(f, "NUMERIC({precision}, {scale})")
            }
            TypeName::Varchar(Some(n)) => write!(f, "VARCHAR({n})"),
            TypeName::Varchar(None) => f.write_str("TEXT"),
            TypeName::Timestamp => f.write_str("TIMESTAMP"),
        }
    }
}

impl Display for ColumnDef {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        write_ident(f, &self.name)?;
        write!(f, " {}", self.ty)?;
        if self.not_null {
            f.write_str(" NOT NULL")?;
        }
        if self.identity {
            f.write_str(" IDENTITY")?;
        }
        if self.primary_key {
            f.write_str(" PRIMARY KEY")?;
        }
        Ok(())
    }
}

impl Display for CreateTable {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        f.write_str("CREATE TABLE ")?;
        write_ident(f, &self.name)?;
        f.write_str(" (")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        if !self.primary_key.is_empty() {
            f.write_str(", PRIMARY KEY (")?;
            for (i, c) in self.primary_key.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_ident(f, c)?;
            }
            f.write_char(')')?;
        }
        f.write_char(')')
    }
}

impl Display for Statement {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert(s) => write!(f, "{s}"),
            Statement::Update(s) => write!(f, "{s}"),
            Statement::Delete(s) => write!(f, "{s}"),
            Statement::CreateTable(s) => write!(f, "{s}"),
            Statement::DropTable(d) => {
                f.write_str("DROP TABLE ")?;
                write_ident(f, &d.name)
            }
            Statement::Begin => f.write_str("BEGIN"),
            Statement::Commit => f.write_str("COMMIT"),
            Statement::Rollback => f.write_str("ROLLBACK"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_statement;

    /// Asserts that parsing, printing and re-parsing yields the same AST.
    fn round_trip(sql: &str) {
        let ast = parse_statement(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        let printed = ast.to_string();
        let reparsed =
            parse_statement(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        assert_eq!(
            ast, reparsed,
            "round-trip changed AST for {sql:?} -> {printed:?}"
        );
    }

    #[test]
    fn round_trips_statement_zoo() {
        for sql in [
            "SELECT 1",
            "SELECT *, t.* FROM t",
            "SELECT a, b AS c FROM t1, t2 x WHERE t1.id = x.id",
            "SELECT SUM(t.a) FROM t WHERE t.c > 0 GROUP BY t.b",
            "SELECT COUNT(*) FROM stock WHERE s_quantity < 10",
            "SELECT c_first FROM customer ORDER BY c_last DESC, c_first LIMIT 3 FOR UPDATE",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
            "INSERT INTO t VALUES (1)",
            "UPDATE t SET a = a + 1, b = 'y' WHERE c BETWEEN 1 AND 5",
            "DELETE FROM t WHERE a IS NOT NULL",
            "CREATE TABLE t (a INTEGER NOT NULL PRIMARY KEY, b VARCHAR(10), c NUMERIC(12, 2), d INTEGER IDENTITY, PRIMARY KEY (a, b))",
            "DROP TABLE t",
            "BEGIN",
            "COMMIT",
            "ROLLBACK",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn round_trips_tricky_expressions() {
        for sql in [
            "SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3",
            "SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3",
            "SELECT x FROM t WHERE NOT (a = 1 OR b = 2)",
            "SELECT x FROM t WHERE NOT a = 1 AND b = 2",
            "SELECT x FROM t WHERE a NOT IN (1, 2, 3)",
            "SELECT x FROM t WHERE a BETWEEN 1 AND 5 AND b = 2",
            "SELECT x FROM t WHERE a NOT BETWEEN 1 + 1 AND 2 * 3",
            "SELECT x FROM t WHERE name LIKE 'BAR%'",
            "SELECT 1 + 2 * 3 - 4 / 2",
            "SELECT (1 + 2) * 3",
            "SELECT -(1 + 2)",
            "SELECT -x FROM t",
            "SELECT a || '-' || b FROM t",
            "SELECT x FROM t WHERE a % 2 = 0",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn string_escaping_round_trips() {
        round_trip("SELECT 'it''s', '100%'");
    }

    #[test]
    fn quoted_identifiers_round_trip() {
        for sql in [
            "SELECT \"café\" FROM \"größe\"",
            "SELECT t.\"naïve col\" AS \"über\" FROM \"таблица\" t",
            "INSERT INTO \"señal\" (\"año\", b) VALUES (1, 2)",
            "UPDATE \"δ\" SET \"ε\" = 1 WHERE \"ζ\" > 0",
            "DELETE FROM \"façade\" WHERE \"état\" = 'x'",
            "CREATE TABLE \"crème\" (\"brûlée\" INTEGER, PRIMARY KEY (\"brûlée\"))",
            "DROP TABLE \"Łódź\"",
            "SELECT \"select\" FROM \"from\"", // keyword collisions
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn plain_identifiers_stay_unquoted() {
        let ast = parse_statement("SELECT \"plain\" FROM \"t\"").unwrap();
        // Quoting is canonicalised away when the name needs none.
        assert_eq!(ast.to_string(), "SELECT plain FROM t");
    }

    #[test]
    fn float_literals_keep_floatness() {
        let ast = parse_statement("SELECT 2.0").unwrap();
        let printed = ast.to_string();
        assert_eq!(printed, "SELECT 2.0");
        assert_eq!(parse_statement(&printed).unwrap(), ast);
    }

    #[test]
    fn canonical_text_examples() {
        let ast = parse_statement("select   a ,b from  t where a=1 and b<>2").unwrap();
        assert_eq!(ast.to_string(), "SELECT a, b FROM t WHERE a = 1 AND b <> 2");
    }

    #[test]
    fn update_with_trid_prints_like_paper_table1() {
        let ast = parse_statement("UPDATE t SET a1 = 1, a2 = 'v', trid = 42 WHERE c = 1").unwrap();
        assert_eq!(
            ast.to_string(),
            "UPDATE t SET a1 = 1, a2 = 'v', trid = 42 WHERE c = 1"
        );
    }
}
