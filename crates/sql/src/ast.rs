//! Abstract syntax tree for the resildb SQL dialect.
//!
//! The AST is deliberately value-oriented (`Clone`/`PartialEq` everywhere) so
//! that the tracking proxy can rewrite statements structurally — e.g. append
//! `trid` select items or `trid = <curTrID>` assignments — and re-serialise
//! them with the `Display` impls from [`crate::printer`].

/// A single SQL statement.
///
/// # Examples
///
/// ```
/// let stmt = resildb_sql::parse_statement("COMMIT")?;
/// assert_eq!(stmt, resildb_sql::Statement::Commit);
/// # Ok::<(), resildb_sql::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(Select),
    /// `INSERT INTO ...`
    Insert(Insert),
    /// `UPDATE ...`
    Update(Update),
    /// `DELETE FROM ...`
    Delete(Delete),
    /// `CREATE TABLE ...`
    CreateTable(CreateTable),
    /// `DROP TABLE ...`
    DropTable(DropTable),
    /// `BEGIN [TRANSACTION | WORK]`
    Begin,
    /// `COMMIT [TRANSACTION | WORK]`
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]`
    Rollback,
}

impl Statement {
    /// Returns the table names this statement references (FROM list, target
    /// table, etc.), in order of appearance. Used by the proxy to decide
    /// which tables need `trid` harvesting.
    pub fn referenced_tables(&self) -> Vec<&str> {
        match self {
            Statement::Select(s) => s.from.iter().map(|t| t.name.as_str()).collect(),
            Statement::Insert(i) => vec![i.table.as_str()],
            Statement::Update(u) => vec![u.table.as_str()],
            Statement::Delete(d) => vec![d.table.as_str()],
            Statement::CreateTable(c) => vec![c.name.as_str()],
            Statement::DropTable(d) => vec![d.name.as_str()],
            _ => Vec::new(),
        }
    }

    /// True for statements that can modify table data.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_)
        )
    }
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// `DISTINCT` qualifier on the projection.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` list; joins are expressed through the `WHERE` clause
    /// (the pre-ANSI-join style used throughout the paper).
    pub from: Vec<TableRef>,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
    /// `FOR UPDATE` suffix (taken as a row-lock hint by the engine).
    pub for_update: bool,
}

/// One projection item of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output-column alias.
        alias: Option<String>,
    },
}

/// A table reference in a `FROM` list: `name [alias]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name as written.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// Creates an unaliased reference.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            alias: None,
        }
    }

    /// The name other parts of the query use to refer to this table —
    /// the alias when present, otherwise the table name.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort expression.
    pub expr: Expr,
    /// `false` = `ASC` (default), `true` = `DESC`.
    pub desc: bool,
}

/// An `INSERT` statement (multi-row `VALUES` supported).
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list; empty means "all columns in schema order".
    pub columns: Vec<String>,
    /// One `Vec<Expr>` per `VALUES` tuple.
    pub rows: Vec<Vec<Expr>>,
}

/// An `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET` assignments in source order.
    pub assignments: Vec<Assignment>,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
}

/// A single `column = expr` assignment in an `UPDATE`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Assigned column name.
    pub column: String,
    /// Value expression.
    pub value: Expr,
}

/// A `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
}

/// A `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// New table name.
    pub name: String,
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Table-level `PRIMARY KEY (...)` columns (possibly empty).
    pub primary_key: Vec<String>,
}

/// One column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
    /// `NOT NULL` constraint.
    pub not_null: bool,
    /// `IDENTITY` auto-numbering (the Sybase-style surrogate row id the
    /// paper's proxy injects when the DBMS lacks a row-ID attribute).
    pub identity: bool,
    /// Column-level `PRIMARY KEY`.
    pub primary_key: bool,
}

impl ColumnDef {
    /// Convenience constructor for a plain nullable column.
    pub fn new(name: impl Into<String>, ty: TypeName) -> Self {
        Self {
            name: name.into(),
            ty,
            not_null: false,
            identity: false,
            primary_key: false,
        }
    }
}

/// A declared SQL type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeName {
    /// `INTEGER` / `INT` / `BIGINT`
    Integer,
    /// `FLOAT` / `REAL` / `DOUBLE PRECISION`
    Float,
    /// `NUMERIC(p[,s])` / `DECIMAL(p[,s])` — stored as scaled integers.
    Numeric {
        /// Total digits.
        precision: u32,
        /// Digits after the decimal point.
        scale: u32,
    },
    /// `VARCHAR(n)` / `CHAR(n)` / `TEXT`
    Varchar(Option<u32>),
    /// `TIMESTAMP` (stored as an integer microsecond count).
    Timestamp,
}

/// A `DROP TABLE` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropTable {
    /// Dropped table name.
    pub name: String,
}

/// A (possibly table-qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional qualifier (table name or alias).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates an unqualified reference.
    pub fn unqualified(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
        }
    }

    /// Creates a qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

/// A scalar literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `NULL`.
    Null,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical `NOT`.
    Not,
}

/// A binary operator, ordered roughly by precedence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror SQL operators one-to-one
pub enum BinaryOp {
    Or,
    And,
    Eq,
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
}

impl BinaryOp {
    /// Returns the SQL spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        }
    }

    /// Binding strength used by both the parser and the printer, so that
    /// printed expressions re-parse with identical structure.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::Neq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Concat => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }
}

/// Parameter index marking the proxy's transaction-id splice slot in a
/// cached statement template (see `Expr::Param`). Ordinary prepared-
/// statement parameters are numbered from zero and never reach this value.
pub const TRID_PARAM: u32 = u32::MAX;

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// Positional parameter placeholder (`?`), bound before execution.
    /// [`TRID_PARAM`] marks the tracking proxy's transaction-id slot.
    Param(u32),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call, e.g. `SUM(x)` or `COUNT(*)`.
    Function {
        /// Upper-cased function name.
        name: String,
        /// Arguments; empty together with `star` for `COUNT(*)`.
        args: Vec<Expr>,
        /// `DISTINCT` qualifier inside the call.
        distinct: bool,
        /// True for `COUNT(*)`.
        star: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

impl Expr {
    /// Shorthand for an integer literal expression.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Shorthand for a string literal expression.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::Str(v.into()))
    }

    /// Shorthand for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::unqualified(name))
    }

    /// Shorthand for a qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(table, name))
    }

    /// Builds `self AND other`, treating either side being absent upstream.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::And,
            right: Box::new(other),
        }
    }

    /// Builds `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::Eq,
            right: Box::new(other),
        }
    }

    /// Walks the expression tree, invoking `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Column(_) | Expr::Literal(_) | Expr::Param(_) => {}
        }
    }

    /// Collects every column referenced anywhere in the expression.
    pub fn referenced_columns(&self) -> Vec<ColumnRef> {
        let mut cols = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column(c) = e {
                cols.push(c.clone());
            }
        });
        cols
    }

    /// True if the expression contains any aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if matches!(name.as_str(), "SUM" | "COUNT" | "MIN" | "MAX" | "AVG") {
                    found = true;
                }
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_tables_for_each_kind() {
        let sel = crate::parse_statement("SELECT a FROM t1, t2 x WHERE t1.id = x.id").unwrap();
        assert_eq!(sel.referenced_tables(), vec!["t1", "t2"]);
        let upd = crate::parse_statement("UPDATE w SET a = 1").unwrap();
        assert_eq!(upd.referenced_tables(), vec!["w"]);
        assert!(crate::parse_statement("COMMIT")
            .unwrap()
            .referenced_tables()
            .is_empty());
    }

    #[test]
    fn is_write_classification() {
        for (sql, w) in [
            ("SELECT 1", false),
            ("INSERT INTO t (a) VALUES (1)", true),
            ("UPDATE t SET a = 1", true),
            ("DELETE FROM t", true),
            ("BEGIN", false),
        ] {
            assert_eq!(crate::parse_statement(sql).unwrap().is_write(), w, "{sql}");
        }
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef {
            name: "warehouse".into(),
            alias: Some("w".into()),
        };
        assert_eq!(t.binding_name(), "w");
        assert_eq!(TableRef::new("t").binding_name(), "t");
    }

    #[test]
    fn expr_walk_visits_all_columns() {
        let e = Expr::col("a")
            .eq(Expr::int(1))
            .and(Expr::qcol("t", "b").eq(Expr::col("c")));
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[1], ColumnRef::qualified("t", "b"));
    }

    #[test]
    fn contains_aggregate_detects_nested() {
        let stmt = crate::parse_statement("SELECT 1 + SUM(x) FROM t").unwrap();
        let Statement::Select(sel) = stmt else {
            unreachable!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            unreachable!()
        };
        assert!(expr.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn precedence_orders_or_below_and() {
        assert!(BinaryOp::Or.precedence() < BinaryOp::And.precedence());
        assert!(BinaryOp::And.precedence() < BinaryOp::Eq.precedence());
        assert!(BinaryOp::Add.precedence() < BinaryOp::Mul.precedence());
    }
}
