//! Static read/write-set extraction on the AST.
//!
//! Computes, for one statement, which tables it reads via `SELECT`
//! (the dependencies the tracking proxy harvests online) and which
//! tables it mutates (the dependencies the repair tool reconstructs from
//! log pre-images) — each at column granularity where the text allows,
//! falling back to "all columns" wherever resolution would have to
//! guess. The fallback direction matters: downstream consumers (the
//! transaction-profile abstract interpreter in `resildb-analyze`) treat
//! [`ColumnSet::All`] as "assume every column", so an imprecise
//! extraction can only widen a static damage bound, never shrink it.

use std::collections::BTreeSet;

use crate::ast::{Select, SelectItem, Statement};

/// A set of columns of one table, as resolvable from statement text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnSet {
    /// Exactly these columns (never empty — a reference that resolves no
    /// columns degrades to [`ColumnSet::All`], because "none resolved"
    /// means *unknown*, not "touches nothing").
    Known(BTreeSet<String>),
    /// Every column, or an unresolvable reference (wildcard projection,
    /// `SELECT 1 FROM t`-style contact without column names).
    All,
}

impl ColumnSet {
    /// An empty known set (the identity for [`ColumnSet::union`]; public
    /// consumers never observe it because unions that stay empty degrade
    /// to [`ColumnSet::All`] at statement level).
    fn empty() -> ColumnSet {
        ColumnSet::Known(BTreeSet::new())
    }

    /// Builds a known set, lower-casing for the dialect's case-insensitive
    /// identifier comparison; degrades to [`ColumnSet::All`] when empty.
    pub fn known<I: IntoIterator<Item = String>>(cols: I) -> ColumnSet {
        let set: BTreeSet<String> = cols.into_iter().map(|c| c.to_ascii_lowercase()).collect();
        if set.is_empty() {
            ColumnSet::All
        } else {
            ColumnSet::Known(set)
        }
    }

    /// Whether the set is the conservative "everything" element.
    pub fn is_all(&self) -> bool {
        matches!(self, ColumnSet::All)
    }

    /// Union in place: `All` absorbs everything.
    pub fn union(&mut self, other: &ColumnSet) {
        match (&mut *self, other) {
            (ColumnSet::All, _) => {}
            (_, ColumnSet::All) => *self = ColumnSet::All,
            (ColumnSet::Known(a), ColumnSet::Known(b)) => a.extend(b.iter().cloned()),
        }
    }

    /// Whether the set certainly contains `col` (for `All`, yes).
    pub fn contains(&self, col: &str) -> bool {
        match self {
            ColumnSet::All => true,
            ColumnSet::Known(s) => s.contains(&col.to_ascii_lowercase()),
        }
    }

    /// The known columns, or `None` for [`ColumnSet::All`].
    pub fn columns(&self) -> Option<&BTreeSet<String>> {
        match self {
            ColumnSet::All => None,
            ColumnSet::Known(s) => Some(s),
        }
    }
}

/// One table a statement reads via a `SELECT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRead {
    /// Table name (lower-cased).
    pub table: String,
    /// Columns of the table the statement references.
    pub columns: ColumnSet,
}

/// The write shape of a data-modifying statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// `INSERT` — creates rows; no pre-image dependency.
    Insert,
    /// `UPDATE` — overwrites the assigned columns of existing rows.
    Update,
    /// `DELETE` — removes whole rows (every column is affected).
    Delete,
}

/// One table a statement mutates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableWrite {
    /// Table name (lower-cased).
    pub table: String,
    /// Write shape.
    pub kind: WriteKind,
    /// Columns written: assignment targets for updates, the column list
    /// for inserts (`All` for positional inserts), `All` for deletes.
    pub columns: ColumnSet,
}

/// The read/write footprint of one statement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatementAccess {
    /// `SELECT` reads, one entry per `FROM` table.
    pub reads: Vec<TableRead>,
    /// Mutations, one entry per target table.
    pub writes: Vec<TableWrite>,
}

/// Columns of `sel` attributable to the `FROM` entry named `binding`
/// (alias-aware): qualified references matching the binding, plus every
/// unqualified reference (conservatively charged to all tables — the
/// dialect has no schema here to disambiguate with).
fn select_columns_for(sel: &Select, binding: &str) -> ColumnSet {
    let mut cols = ColumnSet::empty();
    let mut wildcard = false;
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => wildcard = true,
            SelectItem::QualifiedWildcard(t) => {
                if t.eq_ignore_ascii_case(binding) {
                    wildcard = true;
                }
            }
            SelectItem::Expr { expr, .. } => {
                for c in expr.referenced_columns() {
                    if c.table
                        .as_deref()
                        .is_none_or(|t| t.eq_ignore_ascii_case(binding))
                    {
                        cols.union(&ColumnSet::known([c.column]));
                    }
                }
            }
        }
    }
    let mut clause_exprs: Vec<&crate::ast::Expr> = Vec::new();
    clause_exprs.extend(sel.where_clause.as_ref());
    clause_exprs.extend(sel.group_by.iter());
    clause_exprs.extend(sel.order_by.iter().map(|o| &o.expr));
    for expr in clause_exprs {
        for c in expr.referenced_columns() {
            if c.table
                .as_deref()
                .is_none_or(|t| t.eq_ignore_ascii_case(binding))
            {
                cols.union(&ColumnSet::known([c.column]));
            }
        }
    }
    if wildcard {
        return ColumnSet::All;
    }
    match cols {
        // No columns resolved for this table at all: the contact is real
        // (the table is scanned) but untyped — degrade to All.
        ColumnSet::Known(s) if s.is_empty() => ColumnSet::All,
        other => other,
    }
}

/// Extracts the read/write footprint of `stmt`.
///
/// `SELECT`s contribute [`StatementAccess::reads`]; `INSERT`/`UPDATE`/
/// `DELETE` contribute [`StatementAccess::writes`] (the expressions inside
/// an `UPDATE`'s `SET`/`WHERE` clauses are *not* counted as reads — the
/// dynamic tracker models update-on-existing-row dependence through the
/// log pre-image, which the write entry covers). Transaction-control and
/// DDL statements have an empty footprint.
pub fn statement_access(stmt: &Statement) -> StatementAccess {
    let mut acc = StatementAccess::default();
    match stmt {
        Statement::Select(sel) => {
            for table in &sel.from {
                acc.reads.push(TableRead {
                    table: table.name.to_ascii_lowercase(),
                    columns: select_columns_for(sel, table.binding_name()),
                });
            }
        }
        Statement::Insert(ins) => {
            let columns = if ins.columns.is_empty() {
                ColumnSet::All // positional insert: all columns in schema order
            } else {
                ColumnSet::known(ins.columns.iter().cloned())
            };
            acc.writes.push(TableWrite {
                table: ins.table.to_ascii_lowercase(),
                kind: WriteKind::Insert,
                columns,
            });
        }
        Statement::Update(upd) => {
            acc.writes.push(TableWrite {
                table: upd.table.to_ascii_lowercase(),
                kind: WriteKind::Update,
                columns: ColumnSet::known(upd.assignments.iter().map(|a| a.column.clone())),
            });
        }
        Statement::Delete(del) => {
            acc.writes.push(TableWrite {
                table: del.table.to_ascii_lowercase(),
                kind: WriteKind::Delete,
                columns: ColumnSet::All,
            });
        }
        Statement::CreateTable(_)
        | Statement::DropTable(_)
        | Statement::Begin
        | Statement::Commit
        | Statement::Rollback => {}
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    fn access(sql: &str) -> StatementAccess {
        statement_access(&parse_statement(sql).unwrap())
    }

    fn known(cols: &[&str]) -> ColumnSet {
        ColumnSet::known(cols.iter().map(|s| s.to_string()))
    }

    #[test]
    fn select_reads_projection_and_where() {
        let a = access("SELECT c_discount FROM customer WHERE c_w_id = 1 AND c_id = 3");
        assert_eq!(
            a.reads,
            vec![TableRead {
                table: "customer".into(),
                columns: known(&["c_discount", "c_w_id", "c_id"]),
            }]
        );
        assert!(a.writes.is_empty());
    }

    #[test]
    fn qualified_references_stay_with_their_binding() {
        let a = access("SELECT w.w_tax, d.d_tax FROM warehouse w, district d WHERE w.w_id = 1");
        assert_eq!(a.reads[0].columns, known(&["w_tax", "w_id"]));
        assert_eq!(a.reads[1].columns, known(&["d_tax"]));
    }

    #[test]
    fn unqualified_references_charge_every_table() {
        let a = access("SELECT a FROM t1, t2");
        assert_eq!(a.reads[0].columns, known(&["a"]));
        assert_eq!(a.reads[1].columns, known(&["a"]));
    }

    #[test]
    fn wildcard_and_columnless_selects_degrade_to_all() {
        assert_eq!(access("SELECT * FROM t").reads[0].columns, ColumnSet::All);
        assert_eq!(
            access("SELECT t.* FROM t, u").reads[0].columns,
            ColumnSet::All
        );
        assert_eq!(access("SELECT 1 FROM t").reads[0].columns, ColumnSet::All);
    }

    #[test]
    fn update_writes_assignment_targets_only() {
        let a = access("UPDATE warehouse SET w_ytd = w_ytd + 5 WHERE w_id = 1");
        assert!(a.reads.is_empty());
        assert_eq!(
            a.writes,
            vec![TableWrite {
                table: "warehouse".into(),
                kind: WriteKind::Update,
                columns: known(&["w_ytd"]),
            }]
        );
    }

    #[test]
    fn insert_write_shape() {
        let a = access("INSERT INTO history (h_w_id, h_amount) VALUES (1, 2)");
        assert_eq!(a.writes[0].kind, WriteKind::Insert);
        assert_eq!(a.writes[0].columns, known(&["h_w_id", "h_amount"]));
        let positional = access("INSERT INTO t VALUES (1, 2)");
        assert_eq!(positional.writes[0].columns, ColumnSet::All);
    }

    #[test]
    fn delete_writes_all_columns() {
        let a = access("DELETE FROM new_order WHERE no_o_id = 7");
        assert_eq!(
            a.writes,
            vec![TableWrite {
                table: "new_order".into(),
                kind: WriteKind::Delete,
                columns: ColumnSet::All,
            }]
        );
    }

    #[test]
    fn control_and_ddl_have_empty_footprint() {
        for sql in ["BEGIN", "COMMIT", "ROLLBACK", "CREATE TABLE t (a INT)"] {
            let a = access(sql);
            assert!(a.reads.is_empty() && a.writes.is_empty(), "{sql}");
        }
    }

    #[test]
    fn column_set_union_and_contains() {
        let mut s = known(&["a"]);
        s.union(&known(&["b"]));
        assert_eq!(s, known(&["a", "b"]));
        assert!(s.contains("A"));
        assert!(!s.contains("c"));
        s.union(&ColumnSet::All);
        assert!(s.is_all());
        assert!(s.contains("anything"));
    }
}
