//! Property-based tests: any AST the generator produces must print to SQL
//! text that re-parses to the identical AST. This is the core guarantee the
//! tracking proxy's rewrite-and-resend pipeline depends on.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use proptest::prelude::*;
use resildb_sql::{
    Assignment, BinaryOp, ColumnRef, Delete, Expr, Insert, Literal, OrderByItem, Select,
    SelectItem, Statement, TableRef, UnaryOp, Update,
};

fn ident_strategy() -> impl Strategy<Value = String> {
    // Identifiers that are not keywords: start with a letter, keep short.
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        resildb_sql::Keyword::from_ident(s).is_none()
    })
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|v| Literal::Int(v as i64)),
        // Finite, printable floats; avoid NaN/inf which have no SQL literal.
        (-1.0e6f64..1.0e6).prop_map(Literal::Float),
        "[ -~]{0,12}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
        Just(Literal::Null),
    ]
}

fn column_strategy() -> impl Strategy<Value = Expr> {
    (proptest::option::of(ident_strategy()), ident_strategy()).prop_map(|(t, c)| {
        Expr::Column(ColumnRef {
            table: t,
            column: c,
        })
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal_strategy().prop_map(Expr::Literal),
        column_strategy(),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        let bin_op = prop_oneof![
            Just(BinaryOp::Or),
            Just(BinaryOp::And),
            Just(BinaryOp::Eq),
            Just(BinaryOp::Neq),
            Just(BinaryOp::Lt),
            Just(BinaryOp::LtEq),
            Just(BinaryOp::Gt),
            Just(BinaryOp::GtEq),
            Just(BinaryOp::Add),
            Just(BinaryOp::Sub),
            Just(BinaryOp::Mul),
            Just(BinaryOp::Div),
            Just(BinaryOp::Mod),
            Just(BinaryOp::Concat),
        ];
        prop_oneof![
            (inner.clone(), bin_op, inner.clone()).prop_map(|(l, op, r)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n,
            }),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n,
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, n)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: n,
                }
            ),
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(e, p, n)| Expr::Like {
                expr: Box::new(e),
                pattern: Box::new(p),
                negated: n,
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            (ident_strategy(), proptest::collection::vec(inner, 0..3)).prop_map(|(name, args)| {
                Expr::Function {
                    name: name.to_ascii_uppercase(),
                    args,
                    distinct: false,
                    star: false,
                }
            }),
        ]
    })
}

fn select_strategy() -> impl Strategy<Value = Statement> {
    (
        proptest::collection::vec(
            (expr_strategy(), proptest::option::of(ident_strategy()))
                .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            1..4,
        ),
        proptest::collection::vec(
            (ident_strategy(), proptest::option::of(ident_strategy()))
                .prop_map(|(name, alias)| TableRef { name, alias }),
            0..3,
        ),
        proptest::option::of(expr_strategy()),
        proptest::collection::vec(
            (expr_strategy(), any::<bool>()).prop_map(|(expr, desc)| OrderByItem { expr, desc }),
            0..3,
        ),
        proptest::option::of(0u64..1000),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(items, from, where_clause, order_by, limit, for_update, distinct)| {
                Statement::Select(Select {
                    distinct,
                    items,
                    from: from.clone(),
                    where_clause,
                    group_by: Vec::new(),
                    order_by,
                    limit,
                    // FOR UPDATE without FROM is still printable/parsable.
                    for_update: for_update && !from.is_empty(),
                })
            },
        )
}

fn statement_strategy() -> impl Strategy<Value = Statement> {
    prop_oneof![
        select_strategy(),
        (
            ident_strategy(),
            proptest::collection::vec(ident_strategy(), 1..5)
        )
            .prop_flat_map(|(table, columns)| {
                let width = columns.len();
                (
                    Just(table),
                    Just(columns),
                    proptest::collection::vec(
                        proptest::collection::vec(expr_strategy(), width..=width),
                        1..3,
                    ),
                )
            })
            .prop_map(|(table, columns, rows)| Statement::Insert(Insert {
                table,
                columns,
                rows
            })),
        (
            ident_strategy(),
            proptest::collection::vec(
                (ident_strategy(), expr_strategy())
                    .prop_map(|(column, value)| Assignment { column, value }),
                1..4
            ),
            proptest::option::of(expr_strategy()),
        )
            .prop_map(
                |(table, assignments, where_clause)| Statement::Update(Update {
                    table,
                    assignments,
                    where_clause,
                })
            ),
        (ident_strategy(), proptest::option::of(expr_strategy())).prop_map(
            |(table, where_clause)| Statement::Delete(Delete {
                table,
                where_clause
            })
        ),
        Just(Statement::Begin),
        Just(Statement::Commit),
        Just(Statement::Rollback),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn printed_statement_reparses_identically(stmt in statement_strategy()) {
        let printed = stmt.to_string();
        let reparsed = resildb_sql::parse_statement(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse failed for {printed:?}: {e}")))?;
        prop_assert_eq!(stmt, reparsed, "printed text: {}", printed);
    }

    #[test]
    fn printed_expression_reparses_identically(expr in expr_strategy()) {
        let sql = format!("SELECT {expr}");
        let reparsed = resildb_sql::parse_statement(&sql)
            .map_err(|e| TestCaseError::fail(format!("reparse failed for {sql:?}: {e}")))?;
        let Statement::Select(sel) = reparsed else { unreachable!() };
        let SelectItem::Expr { expr: got, .. } = &sel.items[0] else { unreachable!() };
        prop_assert_eq!(&expr, got, "printed text: {}", sql);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~]{0,64}") {
        let _ = resildb_sql::parse_statement(&input);
    }
}
