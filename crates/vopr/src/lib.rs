//! VOPR-style deterministic scenario fuzzer for resildb.
//!
//! One `u64` seed deterministically generates a complete scenario — a
//! TPC-C-shaped schedule with malicious transactions spliced in, scripted
//! failpoint arms (crashes mid-commit, disconnects, delays, panics across
//! the wire/proxy/engine/repair stack), an optional crash-recovery point
//! — and the harness runs it end-to-end: track → attack → repair → clean
//! replay, across all three engine flavors, optionally on real OS
//! threads. A battery of oracles then checks the intrusion-resilience
//! invariants the paper promises (see [`oracle`]); any violation is a
//! finding that reproduces from the seed alone, auto-shrinks
//! ([`shrink`]), and lands in the checked-in corpus ([`corpus`]).
//!
//! The name is an homage to TigerBeetle's VOPR ("Viewstamped Operation
//! Replicator"): simulate everything, check everything, keep only seeds.

pub mod corpus;
pub mod harness;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use harness::{run_scenario, run_seed, Canary, Outcome, RunOptions, RunReport};
pub use scenario::{generate, Scenario};
pub use shrink::{shrink, Shrunk};
