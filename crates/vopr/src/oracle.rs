//! The machine-verifiable invariants every run is checked against.
//!
//! Each oracle returns a list of human-readable failures (empty = held):
//!
//! 1. **Byte equality** (single-threaded runs) — after repair, world A's
//!    client-visible TPC-C state equals world B's, where B replayed only
//!    the clean survivors (committed, not malicious, not undone) in commit
//!    order. This is the paper's central promise, and the
//!    Ultraverse-style replay check of PAPERS.md. Threaded runs check the
//!    schedule-independent **attack eradicated** oracle instead.
//! 2. **Closure ground truth** (single-threaded runs) — the repair's undo
//!    set equals the closure the *generator* computes from its own
//!    read/write sets. Byte equality alone cannot see a missed closure
//!    member whose SQL happens to produce identical bytes; this oracle
//!    can.
//! 3. **Exactly-one `trans_dep` row** per committed write transaction,
//!    none for aborted ones (§3.3's bookkeeping invariant).
//! 4. **Dependency ledger drains** — `proxy.trans_dep.inflight` is zero
//!    once every connection is gone, in both worlds.
//! 5. **Flight-recorder lifecycle** — each committed write transaction
//!    shows exactly one `txn_begin` and one `commit` and no `abort`.
//! 6. **Static blast-radius soundness** — every transaction the repair
//!    undid lies inside the static conflict-graph closure of the
//!    committed malicious profiles (DESIGN.md §15), checked both without
//!    rules and with the derivable-column false-dependency rules applied
//!    on both sides. Valid under any interleaving: the static graph is
//!    order-agnostic.
//! 9. **Incident-timeline well-formedness** — every incident the repair
//!    episode recorded is closed, its phase marks are strictly
//!    monotonic, its MTTD/MTTC/MTTR decomposition sums exactly to the
//!    incident's wall time, and containment fences pair up: a live
//!    incident has exactly one `fence_raised`/`fence_lifted` pair, a
//!    quiesced one has none.

use std::collections::{BTreeMap, BTreeSet};

use resildb_analyze::{profiles_from_groups, ConflictGraph};
use resildb_core::{
    infer_derivable_columns, parse_statement, Analysis, FalseDepRule, ResilientDb, Response,
    SchemaSnapshot, Value,
};
use resildb_sim::{IncidentPhase, IncidentRecord, TraceSnapshot};
use resildb_tpcc::TPCC_TABLES;

use crate::harness::Outcome;
use crate::scenario::{RowKey, Scenario};

/// Client-visible rows of `table`, sorted — the unit of byte comparison.
fn table_rows(rdb: &ResilientDb, table: &str) -> Result<Vec<String>, String> {
    let mut conn = rdb
        .connect()
        .map_err(|e| format!("oracle connect failed: {e}"))?;
    match conn
        .execute(&format!("SELECT * FROM {table}"))
        .map_err(|e| format!("oracle SELECT * FROM {table} failed: {e}"))?
    {
        Response::Rows(qr) => {
            let mut rows: Vec<String> = qr.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows.insert(0, format!("{:?}", qr.columns));
            Ok(rows)
        }
        other => Err(format!(
            "SELECT * FROM {table}: expected rows, got {other:?}"
        )),
    }
}

/// Oracle 1: repaired world A byte-equals clean-replay world B on every
/// TPC-C table, through tracked connections (hidden columns stripped, so
/// the differing proxy txn ids of the two worlds are invisible — exactly
/// the client's view).
pub fn byte_equality(a: &ResilientDb, b: &ResilientDb) -> Vec<String> {
    let mut failures = Vec::new();
    for table in TPCC_TABLES {
        match (table_rows(a, table), table_rows(b, table)) {
            (Ok(ra), Ok(rb)) => {
                if ra != rb {
                    let diff = ra
                        .iter()
                        .filter(|r| !rb.contains(r))
                        .chain(rb.iter().filter(|r| !ra.contains(r)))
                        .take(4)
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(" | ");
                    failures.push(format!(
                        "byte-equality: table {table} diverges between repaired state \
                         and clean replay ({} vs {} rows; e.g. {diff})",
                        ra.len() - 1,
                        rb.len() - 1,
                    ));
                }
            }
            (Err(e), _) | (_, Err(e)) => failures.push(e),
        }
    }
    failures
}

/// Oracle 1b: the attack is *eradicated* — valid under any interleaving,
/// so this is the state oracle for threaded runs, where byte equality
/// against a serial replay is unsound (the engine runs read-committed:
/// readers take no locks, so a concurrent history need not be equivalent
/// to any serial one).
///
/// Two schedule-independent facts about the generator's attack shapes:
/// - Malicious writes plant monetary values ≥ 999 999 (absolute overwrite
///   or +1 000 000 delta) in `warehouse.w_ytd`, `district.d_ytd` or
///   `customer.c_balance`. Legitimate TPC-C traffic moves those fields by
///   at most a few thousand, so any such value after repair — including
///   one a survivor stacked a legitimate delta onto — is surviving damage.
/// - Only malicious transactions ever *write* the `item` table, so after
///   repair it must byte-equal the clean replay's regardless of how the
///   legitimate workload interleaved.
pub fn attack_eradicated(a: &ResilientDb, b: &ResilientDb) -> Vec<String> {
    let mut failures = Vec::new();
    for (table, col) in [
        ("warehouse", "w_ytd"),
        ("district", "d_ytd"),
        ("customer", "c_balance"),
    ] {
        let poisoned = (|| -> Result<usize, String> {
            let mut conn = a
                .connect()
                .map_err(|e| format!("oracle connect failed: {e}"))?;
            match conn
                .execute(&format!("SELECT {col} FROM {table}"))
                .map_err(|e| format!("oracle SELECT {col} FROM {table} failed: {e}"))?
            {
                Response::Rows(qr) => Ok(qr
                    .rows
                    .iter()
                    .filter(|r| match r.first() {
                        Some(Value::Int(v)) => *v >= 999_999,
                        Some(Value::Float(v)) => *v >= 999_999.0,
                        _ => false,
                    })
                    .count()),
                other => Err(format!("SELECT {col}: expected rows, got {other:?}")),
            }
        })();
        match poisoned {
            Ok(0) => {}
            Ok(n) => failures.push(format!(
                "eradication: {n} {table}.{col} value(s) ≥ 999999 survived repair"
            )),
            Err(e) => failures.push(e),
        }
    }
    match (table_rows(a, "item"), table_rows(b, "item")) {
        (Ok(ra), Ok(rb)) if ra != rb => failures.push(
            "eradication: item table (written only by malicious txns) \
             diverges from clean replay"
                .into(),
        ),
        (Err(e), _) | (_, Err(e)) => failures.push(e),
        _ => {}
    }
    failures
}

/// The generator-side damage closure: forward taint propagation over the
/// committed schedule using the ground-truth row sets. A committed write
/// transaction is tainted if it is malicious, or if any row it read or
/// overwrote was last written by a tainted transaction. Read-only
/// transactions never enter the closure (they record no tracking rows and
/// have nothing to undo) — matching the repair tool's graph by design.
pub fn ground_truth_closure(scenario: &Scenario, outcomes: &[Outcome]) -> BTreeSet<String> {
    let mut last_writer: BTreeMap<RowKey, usize> = BTreeMap::new();
    let mut tainted: BTreeSet<usize> = BTreeSet::new();
    for (i, txn) in scenario.txns.iter().enumerate() {
        if outcomes[i] != Outcome::Committed {
            continue;
        }
        let mut taint = txn.malicious;
        for row in txn.reads.iter().chain(txn.preimages.iter()) {
            if let Some(w) = last_writer.get(row) {
                if tainted.contains(w) {
                    taint = true;
                }
            }
        }
        if taint && txn.wrote {
            tainted.insert(i);
        }
        for row in &txn.writes {
            last_writer.insert(row.clone(), i);
        }
        for row in &txn.deletes {
            last_writer.remove(row);
        }
    }
    tainted
        .into_iter()
        .map(|i| scenario.txns[i].label.clone())
        .collect()
}

/// Oracle 2: the repair's undo set equals the ground-truth closure.
/// Single-threaded runs only — under real threads the engine's row-lock
/// ordering (not the schedule order) decides who read whose write.
pub fn closure_matches_ground_truth(
    scenario: &Scenario,
    outcomes: &[Outcome],
    undo_labels: &BTreeSet<String>,
) -> Vec<String> {
    let expected = ground_truth_closure(scenario, outcomes);
    if expected == *undo_labels {
        return Vec::new();
    }
    let missed: Vec<_> = expected.difference(undo_labels).cloned().collect();
    let extra: Vec<_> = undo_labels.difference(&expected).cloned().collect();
    vec![format!(
        "closure: undo set diverges from ground truth \
         (missed: [{}], unexpected: [{}])",
        missed.join(", "),
        extra.join(", "),
    )]
}

/// Oracle 3: exactly-once dependency bookkeeping, checked post-repair.
///
/// - A committed write transaction the repair did *not* undo has exactly
///   one `trans_dep` row and its `annot` row intact.
/// - A committed write transaction the repair *did* undo has neither —
///   its tracking rows were INSERTs inside the undone transaction, and
///   the compensation sweep deletes them with everything else it wrote.
/// - Aborted and read-only transactions never have tracking rows.
///
/// `label_trids` is the label → proxy-trid mapping the harness captured
/// *before* repair (afterwards the undone labels resolve to nothing).
pub fn trans_dep_exactly_once(
    rdb: &ResilientDb,
    scenario: &Scenario,
    outcomes: &[Outcome],
    undo_labels: &BTreeSet<String>,
    label_trids: &BTreeMap<String, i64>,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
    let trids = (|| -> Result<Vec<i64>, String> {
        let mut conn = rdb
            .connect_untracked()
            .map_err(|e| format!("untracked connect failed: {e}"))?;
        match conn
            .execute("SELECT tr_id FROM trans_dep")
            .map_err(|e| format!("trans_dep scan failed: {e}"))?
        {
            Response::Rows(qr) => Ok(qr
                .rows
                .iter()
                .filter_map(|row| match row.first() {
                    Some(Value::Int(id)) => Some(*id),
                    _ => None,
                })
                .collect()),
            other => Err(format!("trans_dep scan: expected rows, got {other:?}")),
        }
    })();
    let trids = match trids {
        Ok(t) => t,
        Err(e) => return vec![e],
    };
    for id in &trids {
        *counts.entry(*id).or_insert(0) += 1;
    }

    for (i, txn) in scenario.txns.iter().enumerate() {
        let annot_now = match rdb.txn_id_by_label(&txn.label) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("annot lookup failed for {}: {e}", txn.label));
                continue;
            }
        };
        let committed_write = outcomes[i] == Outcome::Committed && txn.wrote;
        if !committed_write {
            if annot_now.is_some() {
                failures.push(format!(
                    "trans_dep: {} txn {} unexpectedly left tracking rows",
                    if outcomes[i] == Outcome::Committed {
                        "read-only"
                    } else {
                        "aborted"
                    },
                    txn.label
                ));
            }
            continue;
        }
        let Some(&trid) = label_trids.get(&txn.label) else {
            continue; // the harness already reported the missing annot row
        };
        let n = counts.get(&trid).copied().unwrap_or(0);
        if undo_labels.contains(&txn.label) {
            if annot_now.is_some() || n != 0 {
                failures.push(format!(
                    "trans_dep: repair left tracking rows for undone txn {} \
                     (trid {trid}: annot={}, trans_dep={n})",
                    txn.label,
                    annot_now.is_some(),
                ));
            }
        } else if annot_now != Some(trid) || n != 1 {
            failures.push(format!(
                "trans_dep: surviving committed txn {} (trid {trid}) has \
                 annot={annot_now:?} and {n} trans_dep record(s), want exactly 1 of each",
                txn.label
            ));
        }
    }
    failures
}

/// Oracle 6: static blast-radius soundness. The static analyzer promises
/// that its per-profile damage closure *over-approximates* any concrete
/// damage closure a compromise of that profile can cause. This oracle
/// machine-checks the promise against the run that just happened: every
/// label the repair actually undid must lie inside the static conflict
/// graph's closure of the committed malicious transactions' profiles,
/// where each committed transaction is its own profile (label = class).
///
/// Two inclusions are checked, matching the two pruning regimes:
/// - the rule-free repair closure (what the harness repairs with) against
///   the unpruned static closure, and
/// - the repair closure under [`FalseDepRule::from_derivable_columns`]
///   against the rule-pruned static closure, with *the same* derivable
///   set feeding both sides.
///
/// The seed set is the full committed-malicious label set regardless of
/// the `SkipFinalAttack` canary — a static bound computed from a superset
/// of the repair's initial set is still a valid upper bound, so the
/// canary cannot make this oracle fail spuriously.
pub fn static_soundness(
    scenario: &Scenario,
    outcomes: &[Outcome],
    analysis: Option<&Analysis>,
    initial: &[i64],
    undo_labels: &BTreeSet<String>,
) -> Vec<String> {
    let committed: Vec<(String, Vec<String>)> = scenario
        .txns
        .iter()
        .enumerate()
        .filter(|(i, _)| outcomes[*i] == Outcome::Committed)
        .map(|(_, t)| (t.label.clone(), t.statements.clone()))
        .collect();
    let seeds: Vec<&str> = scenario
        .txns
        .iter()
        .enumerate()
        .filter(|(i, t)| t.malicious && outcomes[*i] == Outcome::Committed)
        .map(|(_, t)| t.label.as_str())
        .collect();
    if seeds.is_empty() {
        // Nothing committed maliciously: the repair had nothing to undo.
        return Vec::new();
    }
    // The same inputs a pre-deployment run of the analyzer would see: the
    // schema DDL plus the workload's statements.
    let stmts: Vec<_> = resildb_tpcc::ddl_statements()
        .iter()
        .map(ToString::to_string)
        .chain(committed.iter().flat_map(|(_, ss)| ss.iter().cloned()))
        .filter_map(|sql| parse_statement(&sql).ok())
        .collect();
    let schema = SchemaSnapshot::from_statements(&stmts);
    let derivable = infer_derivable_columns(&stmts, Some(&schema));
    let graph = ConflictGraph::build(profiles_from_groups(&committed), &derivable);

    let mut failures = Vec::new();
    let bound = graph.closure(&seeds, false);
    for label in undo_labels {
        if !bound.contains(label) {
            failures.push(format!(
                "static-soundness: repair undid {label} but the unpruned static \
                 blast radius of [{}] excludes it",
                seeds.join(", ")
            ));
        }
    }
    if let Some(analysis) = analysis {
        let rules = FalseDepRule::from_derivable_columns(&derivable);
        let pruned_bound = graph.closure(&seeds, true);
        for id in analysis.undo_set(initial, &rules) {
            let label = analysis.graph.label(id);
            if !pruned_bound.contains(&label) {
                failures.push(format!(
                    "static-soundness: rule-pruned repair closure contains {label} \
                     but the rule-pruned static blast radius of [{}] excludes it",
                    seeds.join(", ")
                ));
            }
        }
    }
    failures
}

/// Oracle 4: the dependency ledger has drained once every workload
/// connection is gone — a nonzero gauge is a permanently-stuck entry.
pub fn inflight_drained(rdb: &ResilientDb, world: &str) -> Vec<String> {
    match rdb.metrics().gauge("proxy.trans_dep.inflight") {
        Some(0.0) => Vec::new(),
        Some(v) => vec![format!(
            "dep-store: {world} proxy.trans_dep.inflight = {v}, want 0 \
             (stuck ledger entry)"
        )],
        None => vec![format!("dep-store: {world} inflight gauge missing")],
    }
}

/// Oracle 5: the flight recorder shows exactly one `txn_begin` and one
/// `commit` — and no `abort` — for every committed write transaction.
/// Skipped when the ring wrapped (the window would lie about counts).
pub fn flight_lifecycle(
    flight: &TraceSnapshot,
    scenario: &Scenario,
    outcomes: &[Outcome],
    label_trids: &BTreeMap<String, i64>,
) -> Vec<String> {
    if flight.dropped > 0 {
        return Vec::new();
    }
    let mut failures = Vec::new();
    for (i, txn) in scenario.txns.iter().enumerate() {
        if outcomes[i] != Outcome::Committed || !txn.wrote {
            continue;
        }
        let Some(&trid) = label_trids.get(&txn.label) else {
            continue; // the harness already reported the missing annot row
        };
        let (begins, commits, aborts) = (
            flight.count_for(trid, "txn_begin"),
            flight.count_for(trid, "commit"),
            flight.count_for(trid, "abort"),
        );
        if (begins, commits, aborts) != (1, 1, 0) {
            failures.push(format!(
                "flight: committed txn {} (trid {trid}) has lifecycle \
                 begin={begins} commit={commits} abort={aborts}, want 1/1/0",
                txn.label
            ));
        }
    }
    failures
}

/// Oracle 9: incident-timeline well-formedness after a repair episode.
///
/// Every incident must be closed (the controller's close-on-drop guard
/// runs on success, error *and* unwind), its marks must be strictly
/// monotonic, and its MTTD/MTTC/MTTR decomposition must sum exactly to
/// its wall time (the decomposition is derived from the same marks, so a
/// mismatch means the arithmetic itself broke). Fence marks must pair:
/// with `live` each incident carries exactly one
/// `fence_raised`/`fence_lifted` pair (the drop guard lifts even when a
/// failpoint unwinds the sweep), and at least one incident was fenced;
/// without it no incident may carry fence marks at all.
pub fn timeline_well_formed(world: &str, incidents: &[IncidentRecord], live: bool) -> Vec<String> {
    let mut failures = Vec::new();
    let mut fenced = 0usize;
    for inc in incidents {
        if inc.open {
            failures.push(format!(
                "timeline: {world} incident #{} still open after repair",
                inc.id
            ));
        }
        if inc.marks.is_empty() {
            failures.push(format!(
                "timeline: {world} incident #{} has no marks",
                inc.id
            ));
            continue;
        }
        for w in inc.marks.windows(2) {
            if w[1].at_ns <= w[0].at_ns {
                failures.push(format!(
                    "timeline: {world} incident #{} marks not strictly monotonic \
                     ({} @{} then {} @{})",
                    inc.id,
                    w[0].phase.name(),
                    w[0].at_ns,
                    w[1].phase.name(),
                    w[1].at_ns,
                ));
            }
        }
        let d = inc.decomposition();
        if d.mttd_ns + d.mttc_ns + d.mttr_ns != d.wall_ns {
            failures.push(format!(
                "timeline: {world} incident #{} decomposition {}+{}+{} != wall {}",
                inc.id, d.mttd_ns, d.mttc_ns, d.mttr_ns, d.wall_ns
            ));
        }
        let raised = inc.count(IncidentPhase::FenceRaised);
        let lifted = inc.count(IncidentPhase::FenceLifted);
        if raised != lifted || raised > 1 {
            failures.push(format!(
                "timeline: {world} incident #{} has {raised} fence_raised / \
                 {lifted} fence_lifted marks, want one matched pair at most",
                inc.id
            ));
        }
        if !live && raised != 0 {
            failures.push(format!(
                "timeline: {world} incident #{} carries fence marks in a \
                 quiesced-only world",
                inc.id
            ));
        }
        if raised == 1 {
            fenced += 1;
        }
    }
    if live && !incidents.is_empty() && fenced == 0 {
        failures.push(format!(
            "timeline: {world} recorded {} incident(s) but none was ever fenced",
            incidents.len()
        ));
    }
    failures
}
