//! `resildb-vopr` — the scenario fuzzer's command-line driver.
//!
//! ```text
//! resildb-vopr --seeds 300                 # fuzz seeds 1..=300
//! resildb-vopr --seed 0x00000000000000ff   # reproduce one seed
//! resildb-vopr --corpus ci/vopr-corpus.txt # replay the checked-in corpus
//! resildb-vopr --seeds 50 --threads 4      # real-thread schedules
//! resildb-vopr --seeds 50 --canary skip-final-attack --expect-fail
//! ```
//!
//! Every failure reproduces from its seed alone. On failure the driver
//! shrinks the scenario and writes three artifacts to `--dump-dir`
//! (default `target/vopr-failures`): the flight-recorder capture
//! (JSONL), the shrunk schedule dump, and a ready-to-paste corpus line.

use std::process::ExitCode;

use resildb_vopr::corpus::{corpus_line, parse_corpus, seeds_from_proptest_regressions};
use resildb_vopr::shrink::shrink;
use resildb_vopr::{generate, run_scenario, Canary, RunOptions};

const USAGE: &str = "\
resildb-vopr — deterministic scenario fuzzer for resildb

USAGE:
    resildb-vopr [OPTIONS]

OPTIONS:
    --seeds <N>          fuzz N sequential seeds (default 20)
    --start <SEED>       first sequential seed (default 1; hex 0x.. ok)
    --seed <SEED>        run one explicit seed (repeatable; disables --seeds)
    --corpus <FILE>      replay seeds from a corpus or proptest-regressions
                         file (repeatable; disables --seeds)
    --threads <N>        workload worker threads (default 1)
    --canary <NAME>      inject a harness bug: skip-final-attack
    --expect-fail        exit 0 only if at least one seed FAILS
    --dump-dir <DIR>     failure artifact directory (default target/vopr-failures)
    --shrink-budget <N>  max candidate runs while shrinking (default 200)
    -h, --help           this text
";

struct Args {
    seeds: u64,
    start: u64,
    explicit: Vec<u64>,
    threads: usize,
    canary: Canary,
    expect_fail: bool,
    dump_dir: String,
    shrink_budget: usize,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    }
    .map_err(|_| format!("not a number: {s:?}"))
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        seeds: 20,
        start: 1,
        explicit: Vec::new(),
        threads: 1,
        canary: Canary::None,
        expect_fail: false,
        dump_dir: "target/vopr-failures".into(),
        shrink_budget: 200,
    };
    let mut sequential = true;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = parse_u64(&value("--seeds")?)?,
            "--start" => args.start = parse_u64(&value("--start")?)?,
            "--seed" => {
                args.explicit.push(parse_u64(&value("--seed")?)?);
                sequential = false;
            }
            "--corpus" => {
                let path = value("--corpus")?;
                let content = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                if content.lines().any(|l| l.trim_start().starts_with("cc ")) {
                    args.explicit
                        .extend(seeds_from_proptest_regressions(&content));
                } else {
                    args.explicit.extend(parse_corpus(&content)?);
                }
                sequential = false;
            }
            "--threads" => {
                args.threads = parse_u64(&value("--threads")?)? as usize;
                if args.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--canary" => {
                args.canary = match value("--canary")?.as_str() {
                    "skip-final-attack" => Canary::SkipFinalAttack,
                    other => return Err(format!("unknown canary: {other:?}")),
                }
            }
            "--expect-fail" => args.expect_fail = true,
            "--dump-dir" => args.dump_dir = value("--dump-dir")?,
            "--shrink-budget" => {
                args.shrink_budget = parse_u64(&value("--shrink-budget")?)? as usize
            }
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown flag: {other:?} (see --help)")),
        }
    }
    if sequential {
        args.explicit = (0..args.seeds)
            .map(|i| args.start.wrapping_add(i))
            .collect();
    }
    Ok(Some(args))
}

/// Runs one seed; on failure shrinks it, dumps artifacts, and returns the
/// failure headline.
fn run_one(seed: u64, args: &Args, opts: &RunOptions) -> Option<String> {
    let scenario = generate(seed);
    let report = run_scenario(&scenario, opts);
    if report.passed() {
        return None;
    }

    let headline = report
        .failures
        .first()
        .cloned()
        .unwrap_or_else(|| "unknown failure".into());
    eprintln!("seed 0x{seed:016x} FAILED: {headline}");
    for extra in report.failures.iter().skip(1) {
        eprintln!("    also: {extra}");
    }

    eprintln!("    shrinking (budget {})...", args.shrink_budget);
    let shrunk = shrink(&scenario, report, opts, args.shrink_budget);
    eprintln!(
        "    shrunk to {} txns / {} faults in {} runs",
        shrunk.scenario.txns.len(),
        shrunk.scenario.faults.len(),
        shrunk.runs,
    );

    let dir = std::path::Path::new(&args.dump_dir);
    let write = |name: String, content: &str| {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("    (could not write {}: {e})", path.display());
        } else {
            eprintln!("    wrote {}", path.display());
        }
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("    (could not create {}: {e})", dir.display());
    } else {
        let mut dump = shrunk.scenario.describe();
        dump.push_str("\nfailures:\n");
        for f in &shrunk.report.failures {
            dump.push_str("  - ");
            dump.push_str(f);
            dump.push('\n');
        }
        write(format!("seed-0x{seed:016x}.scenario.txt"), &dump);
        if let Some(capture) = &shrunk.report.capture {
            write(format!("seed-0x{seed:016x}.capture.jsonl"), capture);
        }
        write(
            format!("seed-0x{seed:016x}.corpus-line.txt"),
            &format!("{}\n", corpus_line(seed, &headline)),
        );
    }
    Some(headline)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("resildb-vopr: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = RunOptions {
        threads: args.threads,
        canary: args.canary,
    };

    let total = args.explicit.len();
    println!(
        "resildb-vopr: {total} seed(s), threads={}, canary={:?}",
        opts.threads, opts.canary
    );
    let mut failed: Vec<(u64, String)> = Vec::new();
    for (i, &seed) in args.explicit.iter().enumerate() {
        if let Some(headline) = run_one(seed, &args, &opts) {
            failed.push((seed, headline));
        }
        let done = i + 1;
        if done % 50 == 0 || done == total {
            println!("  {done}/{total} seeds, {} failure(s)", failed.len());
        }
    }

    if args.expect_fail {
        if failed.is_empty() {
            eprintln!("expected at least one failure (canary run?), but every seed passed");
            return ExitCode::FAILURE;
        }
        println!(
            "expected failure observed ({} seed(s)) — the oracle battery is alive",
            failed.len()
        );
        return ExitCode::SUCCESS;
    }
    if failed.is_empty() {
        println!("all {total} seed(s) passed");
        return ExitCode::SUCCESS;
    }
    eprintln!("{} failing seed(s):", failed.len());
    for (seed, headline) in &failed {
        eprintln!("  {}", corpus_line(*seed, headline));
    }
    ExitCode::FAILURE
}
