//! Corpus files: seed lines checked into the repository.
//!
//! The fuzzer's own corpus (`ci/vopr-corpus.txt`) is one seed per line —
//! `0xHEX` or decimal, with an optional `# why this seed matters`
//! comment. Failures reproduce from the seed alone, so the corpus is the
//! entire regression suite: CI replays every line on every run.
//!
//! Proptest's `*.proptest-regressions` files are also accepted as seed
//! sources: each `cc <hash> # shrinks to seed = N, ...` line's recorded
//! numbers are folded into one deterministic `u64`, so the schedules
//! proptest once found interesting keep exercising the fuzzer too.

/// Parses one corpus line into a seed. Returns `None` for blanks and
/// pure comments, `Err` for a malformed seed.
fn parse_line(line: &str) -> Option<Result<u64, String>> {
    let body = line.split('#').next().unwrap_or("").trim();
    if body.is_empty() {
        return None;
    }
    let parsed = match body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => body.parse::<u64>(),
    };
    Some(parsed.map_err(|_| format!("corpus: unparseable seed line: {line:?}")))
}

/// Parses a vopr corpus file (see module docs).
///
/// # Errors
///
/// Any non-comment line that is not a hex or decimal `u64`.
pub fn parse_corpus(content: &str) -> Result<Vec<u64>, String> {
    content.lines().filter_map(parse_line).collect()
}

/// Renders the checked-in corpus line for a failing seed.
#[must_use]
pub fn corpus_line(seed: u64, note: &str) -> String {
    format!("0x{seed:016x}  # {note}")
}

/// Extracts deterministic vopr seeds from a `*.proptest-regressions`
/// file: every number recorded on a `cc` line (`seed = N`, `txn_count =
/// N`, ...) is folded into one `u64` via splitmix64 steps, one seed per
/// regression line.
#[must_use]
pub fn seeds_from_proptest_regressions(content: &str) -> Vec<u64> {
    fn mix(mut h: u64, v: u64) -> u64 {
        h = h.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }
    content
        .lines()
        .filter(|l| l.trim_start().starts_with("cc "))
        .map(|l| {
            let comment = l.split('#').nth(1).unwrap_or("");
            let mut h = 0x5EED_u64;
            // Every `name = value` pair contributes; non-numeric tokens
            // are ignored so format drift degrades gracefully.
            for token in comment.split(|c: char| !c.is_ascii_digit()) {
                if let Ok(v) = token.parse::<u64>() {
                    h = mix(h, v);
                }
            }
            h
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hex_decimal_comments_and_blanks() {
        let content = "# header\n0x00000000000000ff  # note\n\n42\n";
        assert_eq!(parse_corpus(content), Ok(vec![0xFF, 42]));
    }

    #[test]
    fn rejects_garbage_lines() {
        assert!(parse_corpus("not-a-seed\n").is_err());
    }

    #[test]
    fn corpus_line_roundtrips() {
        let line = corpus_line(0xFF, "closure divergence");
        assert_eq!(parse_corpus(&line), Ok(vec![0xFF]));
    }

    #[test]
    fn proptest_regressions_yield_stable_seeds() {
        let content =
            "# header\ncc abc123 # shrinks to seed = 3209, txn_count = 3, attack_idx = 0\n";
        let a = seeds_from_proptest_regressions(content);
        let b = seeds_from_proptest_regressions(content);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_ne!(a[0], 0);
    }
}
