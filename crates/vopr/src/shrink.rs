//! Greedy scenario minimization.
//!
//! A failing seed reproduces from the seed alone — the shrunk scenario is
//! a *diagnostic*, not the reproducer. The shrinker repeatedly tries to
//! remove one ingredient (a transaction, a fault arm, the crash point,
//! the repair-phase fault) and keeps the removal whenever the run still
//! fails any oracle. Removal passes repeat until a full pass removes
//! nothing or the run budget is spent.
//!
//! Removing a transaction legitimately changes *which* oracle fails —
//! any failure counts as "still failing", which is what keeps shrinking
//! aggressive. The final report's failure list always describes the
//! returned scenario.

use crate::harness::{run_scenario, RunOptions, RunReport};
use crate::scenario::Scenario;

/// The result of a shrink: the smallest still-failing scenario found, the
/// report of its run, and how many candidate runs were spent.
#[derive(Debug)]
pub struct Shrunk {
    /// Minimal still-failing scenario.
    pub scenario: Scenario,
    /// Oracle report for `scenario` (always failing).
    pub report: RunReport,
    /// Candidate runs executed (≤ the budget).
    pub runs: usize,
}

/// Candidate edits, coarsest first: drop the repair fault, drop the
/// crash, drop one fault arm, drop one transaction.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if s.repair_fault.is_some() {
        let mut c = s.clone();
        c.repair_fault = None;
        out.push(c);
    }
    if s.crash_before.is_some() {
        let mut c = s.clone();
        c.crash_before = None;
        out.push(c);
    }
    for j in (0..s.faults.len()).rev() {
        out.push(s.without_fault(j));
    }
    for i in (0..s.txns.len()).rev() {
        if s.txns.len() > 1 {
            out.push(s.without_txn(i));
        }
    }
    out
}

/// Shrinks a failing scenario under a run budget (`max_runs` candidate
/// executions). `scenario` must already fail under `opts`; its report is
/// passed in so the caller's original run is not repeated.
pub fn shrink(
    scenario: &Scenario,
    original: RunReport,
    opts: &RunOptions,
    max_runs: usize,
) -> Shrunk {
    let mut best = scenario.clone();
    let mut best_report = original;
    let mut runs = 0;

    'passes: loop {
        for candidate in candidates(&best) {
            if runs >= max_runs {
                break 'passes;
            }
            runs += 1;
            let report = run_scenario(&candidate, opts);
            if !report.passed() {
                best = candidate;
                best_report = report;
                continue 'passes; // restart from the smaller scenario
            }
        }
        break; // full pass removed nothing: local minimum
    }

    Shrunk {
        scenario: best,
        report: best_report,
        runs,
    }
}
