//! Seed → scenario: the deterministic generator.
//!
//! A [`Scenario`] is everything one fuzzer run needs, derived from a
//! single `u64` seed: the engine flavor, a schedule of fully-materialized
//! TPC-C-shaped transactions (legitimate and malicious, interleaved), the
//! failpoint arms scripted between them, an optional crash-recovery
//! point, and an optional repair-phase fault. The SQL text of every
//! statement is fixed at generation time — nothing in a run feeds back
//! into the schedule — so a scenario re-generated from its seed is
//! byte-identical, which is what makes "reproduces from the seed alone"
//! true by construction.
//!
//! Two generator rules keep the oracles airtight:
//!
//! - every predicate names exact primary keys, and every numeric write is
//!   either an increment by a whole number or a fresh-key insert/delete —
//!   so the legitimate workload commutes, and the final state is
//!   interleaving-independent under `--threads N`;
//! - primary keys are never reused after a delete, so "row absent" means
//!   the same thing in the run, the ground-truth dependency model, and
//!   the clean replay.

use resildb_engine::Flavor;
use resildb_sim::{failpoints, DetRng, FaultAction, FaultTrigger, Micros};
use resildb_tpcc::TpccConfig;

/// Identity of one logical row, for the generator-side ground-truth
/// read/write sets (the closure oracle's input).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowKey {
    /// Table name.
    pub table: &'static str,
    /// Primary-key rendering, e.g. `"w1/d2/c3"`.
    pub key: String,
}

impl RowKey {
    fn new(table: &'static str, key: impl Into<String>) -> Self {
        Self {
            table,
            key: key.into(),
        }
    }
}

/// One transaction of the schedule: its label (also its `ANNOTATE`
/// annotation), the materialized statements between `BEGIN` and `COMMIT`,
/// and the generator's ground-truth row sets.
#[derive(Debug, Clone)]
pub struct ScenarioTxn {
    /// Unique label; also the `annot` row committed write transactions
    /// leave behind (how the harness learns their proxy txn ids).
    pub label: String,
    /// Whether this is an injected malicious transaction.
    pub malicious: bool,
    /// Whether the transaction writes (read-only ones leave no tracking
    /// rows by design).
    pub wrote: bool,
    /// SQL statements between `BEGIN` and `COMMIT`.
    pub statements: Vec<String>,
    /// Rows read (SELECT) — each contributes a read dependency on the
    /// row's last committed writer, when the row exists.
    pub reads: Vec<RowKey>,
    /// Rows written (UPDATE/INSERT). Updates additionally depend on the
    /// row's last committed writer via the pre-image.
    pub writes: Vec<RowKey>,
    /// Rows updated or deleted (pre-image dependencies). Inserts of fresh
    /// keys carry no pre-image.
    pub preimages: Vec<RowKey>,
    /// Rows deleted (removed from the ground-truth live set).
    pub deletes: Vec<RowKey>,
}

/// One scripted failpoint arm, applied immediately before the indexed
/// transaction starts.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Schedule index of the transaction before which to arm.
    pub before_txn: usize,
    /// Failpoint name (see [`resildb_sim::failpoints`]).
    pub failpoint: &'static str,
    /// Injected action.
    pub action: FaultAction,
    /// Firing script.
    pub trigger: FaultTrigger,
}

/// A complete generated scenario (see module docs).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generating seed.
    pub seed: u64,
    /// Engine flavor under test.
    pub flavor: Flavor,
    /// The schedule, legitimate and malicious transactions interleaved.
    pub txns: Vec<ScenarioTxn>,
    /// Scripted failpoint arms.
    pub faults: Vec<FaultEvent>,
    /// Crash-and-recover the engine before this schedule index
    /// (single-threaded runs only; threaded runs skip it).
    pub crash_before: Option<usize>,
    /// Arm this repair-phase failpoint (`Error`/`Once`) for a first,
    /// expected-to-fail repair attempt before the real one.
    pub repair_fault: Option<&'static str>,
}

/// The scaled-down TPC-C footprint every scenario runs against. Two
/// warehouses keep cross-warehouse contention possible while a full
/// load-run-repair-replay cycle stays in the low milliseconds.
pub fn tpcc_config() -> TpccConfig {
    TpccConfig {
        warehouses: 2,
        districts_per_warehouse: 2,
        customers_per_district: 4,
        items: 8,
        orders_per_district: 2,
        max_order_lines: 2,
    }
}

/// Per-scenario allocator state: order ids continue after the loader's
/// initial orders, history rows get synthetic unique keys.
struct Alloc {
    cfg: TpccConfig,
    next_o_id: std::collections::BTreeMap<(u32, u32), u32>,
    next_h_id: u32,
    /// Orders created by this scenario: (w, d, o, customer, line_count),
    /// targets for delivery-shaped transactions.
    orders: Vec<(u32, u32, u32, u32, u32)>,
}

impl Alloc {
    fn new(cfg: TpccConfig) -> Self {
        Self {
            next_o_id: std::collections::BTreeMap::new(),
            next_h_id: 1_000_000,
            orders: Vec::new(),
            cfg,
        }
    }

    fn order_id(&mut self, w: u32, d: u32) -> u32 {
        let next = self
            .next_o_id
            .entry((w, d))
            .or_insert(self.cfg.orders_per_district + 1);
        let o = *next;
        *next += 1;
        o
    }

    fn history_id(&mut self) -> u32 {
        self.next_h_id += 1;
        self.next_h_id
    }
}

fn pick_wdc(rng: &mut DetRng, cfg: &TpccConfig) -> (u32, u32, u32) {
    (
        rng.range(1, u64::from(cfg.warehouses) + 1) as u32,
        rng.range(1, u64::from(cfg.districts_per_warehouse) + 1) as u32,
        rng.range(1, u64::from(cfg.customers_per_district) + 1) as u32,
    )
}

/// Payment-shaped: whole-number increments on the warehouse, district and
/// customer rows plus a fresh history row — the workhorse write shape.
fn payment(rng: &mut DetRng, cfg: &TpccConfig, alloc: &mut Alloc, label: String) -> ScenarioTxn {
    let (w, d, c) = pick_wdc(rng, cfg);
    let amount = rng.range(1, 500);
    let hid = alloc.history_id();
    ScenarioTxn {
        label,
        malicious: false,
        wrote: true,
        statements: vec![
            format!("UPDATE warehouse SET w_ytd = w_ytd + {amount} WHERE w_id = {w}"),
            format!(
                "UPDATE district SET d_ytd = d_ytd + {amount} \
                 WHERE d_w_id = {w} AND d_id = {d}"
            ),
            format!(
                "UPDATE customer SET c_balance = c_balance - {amount} \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ),
            format!(
                "INSERT INTO history (h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, \
                 h_date, h_amount, h_data) VALUES ({c}, {d}, {w}, {d}, {w}, {hid}, {amount}, 'vopr')"
            ),
        ],
        reads: vec![],
        writes: vec![
            RowKey::new("warehouse", format!("w{w}")),
            RowKey::new("district", format!("w{w}/d{d}")),
            RowKey::new("customer", format!("w{w}/d{d}/c{c}")),
            RowKey::new("history", format!("h{hid}")),
        ],
        preimages: vec![
            RowKey::new("warehouse", format!("w{w}")),
            RowKey::new("district", format!("w{w}/d{d}")),
            RowKey::new("customer", format!("w{w}/d{d}/c{c}")),
        ],
        deletes: vec![],
    }
}

/// Order-shaped: reads the customer, inserts an order with fresh ids (the
/// generator allocates order numbers — the schedule never reads
/// `d_next_o_id`, which would make the workload non-commutative), and
/// bumps the stock rows it "ships" from.
fn new_order(rng: &mut DetRng, cfg: &TpccConfig, alloc: &mut Alloc, label: String) -> ScenarioTxn {
    let (w, d, c) = pick_wdc(rng, cfg);
    let o = alloc.order_id(w, d);
    let lines = rng.range(1, u64::from(cfg.max_order_lines) + 1) as u32;
    let mut statements = vec![
        format!(
            "SELECT c_discount FROM customer \
             WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
        ),
        format!(
            "INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id, o_entry_d, \
             o_carrier_id, o_ol_cnt, o_all_local) VALUES ({o}, {d}, {w}, {c}, 0, 0, {lines}, 1)"
        ),
        format!("INSERT INTO new_order (no_o_id, no_d_id, no_w_id) VALUES ({o}, {d}, {w})"),
    ];
    let mut reads = vec![RowKey::new("customer", format!("w{w}/d{d}/c{c}"))];
    let mut writes = vec![
        RowKey::new("orders", format!("w{w}/d{d}/o{o}")),
        RowKey::new("new_order", format!("w{w}/d{d}/o{o}")),
    ];
    let mut preimages = Vec::new();
    for l in 1..=lines {
        let i = rng.range(1, u64::from(cfg.items) + 1) as u32;
        let qty = rng.range(1, 6);
        let amount = rng.range(1, 100);
        statements.push(format!(
            "INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id, \
             ol_supply_w_id, ol_delivery_d, ol_quantity, ol_amount, ol_dist_info) \
             VALUES ({o}, {d}, {w}, {l}, {i}, {w}, 0, {qty}, {amount}, 'vopr')"
        ));
        statements.push(format!(
            "UPDATE stock SET s_ytd = s_ytd + {qty} WHERE s_w_id = {w} AND s_i_id = {i}"
        ));
        statements.push(format!("SELECT i_price FROM item WHERE i_id = {i}"));
        writes.push(RowKey::new("order_line", format!("w{w}/d{d}/o{o}/l{l}")));
        writes.push(RowKey::new("stock", format!("w{w}/i{i}")));
        preimages.push(RowKey::new("stock", format!("w{w}/i{i}")));
        reads.push(RowKey::new("item", format!("i{i}")));
    }
    alloc.orders.push((w, d, o, c, lines));
    ScenarioTxn {
        label,
        malicious: false,
        wrote: true,
        statements,
        reads,
        writes,
        preimages,
        deletes: vec![],
    }
}

/// Delivery-shaped: consumes an order this scenario placed earlier —
/// deleting its new-order row, stamping the order, reading its lines and
/// crediting the customer. If the order's transaction aborted the
/// statements hit zero rows, which is deterministic and harmless.
fn delivery(rng: &mut DetRng, alloc: &mut Alloc, label: String) -> Option<ScenarioTxn> {
    if alloc.orders.is_empty() {
        return None;
    }
    let idx = rng.index(alloc.orders.len());
    let (w, d, o, c, lines) = alloc.orders.remove(idx);
    let carrier = rng.range(1, 11);
    let credit = rng.range(1, 50);
    let mut reads = Vec::new();
    for l in 1..=lines {
        reads.push(RowKey::new("order_line", format!("w{w}/d{d}/o{o}/l{l}")));
    }
    Some(ScenarioTxn {
        label,
        malicious: false,
        wrote: true,
        statements: vec![
            format!(
                "DELETE FROM new_order \
                 WHERE no_w_id = {w} AND no_d_id = {d} AND no_o_id = {o}"
            ),
            format!(
                "UPDATE orders SET o_carrier_id = {carrier} \
                 WHERE o_w_id = {w} AND o_d_id = {d} AND o_id = {o}"
            ),
            format!(
                "SELECT ol_amount FROM order_line \
                 WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o}"
            ),
            format!(
                "UPDATE customer SET c_balance = c_balance + {credit} \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ),
        ],
        reads,
        writes: vec![
            RowKey::new("orders", format!("w{w}/d{d}/o{o}")),
            RowKey::new("customer", format!("w{w}/d{d}/c{c}")),
        ],
        preimages: vec![
            RowKey::new("new_order", format!("w{w}/d{d}/o{o}")),
            RowKey::new("orders", format!("w{w}/d{d}/o{o}")),
            RowKey::new("customer", format!("w{w}/d{d}/c{c}")),
        ],
        deletes: vec![RowKey::new("new_order", format!("w{w}/d{d}/o{o}"))],
    })
}

/// Read-only: exact-key probes that harvest dependencies without leaving
/// tracking rows (the proxy records write transactions only).
fn read_probe(rng: &mut DetRng, cfg: &TpccConfig, label: String) -> ScenarioTxn {
    let (w, d, c) = pick_wdc(rng, cfg);
    let i = rng.range(1, u64::from(cfg.items) + 1) as u32;
    ScenarioTxn {
        label,
        malicious: false,
        wrote: false,
        statements: vec![
            format!(
                "SELECT c_balance FROM customer \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ),
            format!("SELECT s_quantity FROM stock WHERE s_w_id = {w} AND s_i_id = {i}"),
            format!("SELECT w_ytd FROM warehouse WHERE w_id = {w}"),
        ],
        reads: vec![
            RowKey::new("customer", format!("w{w}/d{d}/c{c}")),
            RowKey::new("stock", format!("w{w}/i{i}")),
            RowKey::new("warehouse", format!("w{w}")),
        ],
        writes: vec![],
        preimages: vec![],
        deletes: vec![],
    }
}

/// A malicious transaction, shaped like the §5.3 attack scenarios but
/// with a unique label so the harness can name each one in the repair's
/// initial set.
fn malicious(rng: &mut DetRng, cfg: &TpccConfig, label: String) -> ScenarioTxn {
    let (w, d, c) = pick_wdc(rng, cfg);
    let i = rng.range(1, u64::from(cfg.items) + 1) as u32;
    match rng.index(3) {
        0 => ScenarioTxn {
            // Forged payment: damage that spreads through the hottest rows.
            label,
            malicious: true,
            wrote: true,
            statements: vec![
                format!("UPDATE warehouse SET w_ytd = w_ytd + 1000000 WHERE w_id = {w}"),
                format!(
                    "UPDATE district SET d_ytd = d_ytd + 1000000 \
                     WHERE d_w_id = {w} AND d_id = {d}"
                ),
                format!(
                    "UPDATE customer SET c_balance = c_balance + 1000000 \
                     WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
                ),
            ],
            reads: vec![],
            writes: vec![
                RowKey::new("warehouse", format!("w{w}")),
                RowKey::new("district", format!("w{w}/d{d}")),
                RowKey::new("customer", format!("w{w}/d{d}/c{c}")),
            ],
            preimages: vec![
                RowKey::new("warehouse", format!("w{w}")),
                RowKey::new("district", format!("w{w}/d{d}")),
                RowKey::new("customer", format!("w{w}/d{d}/c{c}")),
            ],
            deletes: vec![],
        },
        1 => ScenarioTxn {
            // Balance corruption: an absolute overwrite — everything that
            // touches the row afterwards is in the damage closure.
            label,
            malicious: true,
            wrote: true,
            statements: vec![format!(
                "UPDATE customer SET c_balance = 999999 \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            )],
            reads: vec![],
            writes: vec![RowKey::new("customer", format!("w{w}/d{d}/c{c}"))],
            preimages: vec![RowKey::new("customer", format!("w{w}/d{d}/c{c}"))],
            deletes: vec![],
        },
        _ => ScenarioTxn {
            // Price corruption: pollutes every later reader of the item.
            label,
            malicious: true,
            wrote: true,
            statements: vec![format!("UPDATE item SET i_price = 1 WHERE i_id = {i}")],
            reads: vec![],
            writes: vec![RowKey::new("item", format!("i{i}"))],
            preimages: vec![RowKey::new("item", format!("i{i}"))],
            deletes: vec![],
        },
    }
}

/// Failpoint sites the generator arms, with the actions safe at each.
/// `Panic` is restricted to sites the stack is known to unwind through
/// cleanly (proxy commit path and the engine's commit-record append).
const FAULT_SITES: &[(&str, &[FaultAction])] = &[
    (failpoints::WIRE_CONN_DROP, &[FaultAction::Disconnect]),
    (
        failpoints::WIRE_LATENCY,
        &[FaultAction::Delay(Micros::new(200))],
    ),
    (failpoints::ENGINE_WAL_APPEND, &[FaultAction::Error]),
    (
        failpoints::ENGINE_WAL_COMMIT,
        &[FaultAction::Error, FaultAction::Panic],
    ),
    (failpoints::PROXY_BEFORE_REWRITE, &[FaultAction::Error]),
    (failpoints::PROXY_HARVEST, &[FaultAction::Error]),
    (
        failpoints::PROXY_BEFORE_TRANS_DEP_INSERT,
        &[FaultAction::Error, FaultAction::Panic],
    ),
    (
        failpoints::PROXY_AFTER_TRANS_DEP_INSERT,
        &[FaultAction::Error, FaultAction::Panic],
    ),
    (
        failpoints::PROXY_BEFORE_COMMIT,
        &[
            FaultAction::Error,
            FaultAction::Disconnect,
            FaultAction::Panic,
        ],
    ),
];

/// Generates the scenario for `seed` (see module docs for the rules).
pub fn generate(seed: u64) -> Scenario {
    let cfg = tpcc_config();
    let root = DetRng::new(seed);

    let flavor = *root
        .fork("flavor")
        .pick(&[Flavor::Postgres, Flavor::Sybase, Flavor::Oracle]);

    // Legitimate schedule: 4–16 transactions.
    let mut wrng = root.fork("workload");
    let n_legit = wrng.range(4, 17) as usize;
    let mut alloc = Alloc::new(cfg.clone());
    let mut txns: Vec<ScenarioTxn> = Vec::new();
    for k in 0..n_legit {
        let label = format!("t{k}");
        let txn = match wrng.index(10) {
            0..=3 => payment(&mut wrng, &cfg, &mut alloc, label),
            4..=6 => new_order(&mut wrng, &cfg, &mut alloc, label),
            7..=8 => delivery(&mut wrng, &mut alloc, label.clone())
                .unwrap_or_else(|| payment(&mut wrng, &cfg, &mut alloc, label)),
            _ => read_probe(&mut wrng, &cfg, label),
        };
        txns.push(txn);
    }

    // 1–3 malicious transactions spliced into the schedule.
    let mut mrng = root.fork("malicious");
    let n_mal = mrng.range(1, 4) as usize;
    for k in 0..n_mal {
        let txn = malicious(&mut mrng, &cfg, format!("mal{k}"));
        let pos = mrng.index(txns.len() + 1);
        txns.insert(pos, txn);
    }

    // 0–4 scripted failpoint arms. Triggers are bounded (no `Always`) so
    // a fault disturbs the run without flattening it.
    let mut frng = root.fork("faults");
    let n_faults = frng.index(5);
    let mut faults = Vec::new();
    for _ in 0..n_faults {
        let (failpoint, actions) = frng.pick(FAULT_SITES);
        let action = *frng.pick(actions);
        let trigger = match frng.index(10) {
            0..=4 => FaultTrigger::Once,
            5..=7 => FaultTrigger::OnHit(frng.range(1, 7)),
            _ => FaultTrigger::Times(frng.range(1, 3)),
        };
        faults.push(FaultEvent {
            before_txn: frng.index(txns.len()),
            failpoint,
            action,
            trigger,
        });
    }
    faults.sort_by_key(|f| f.before_txn);

    // One crash-recovery point in a quarter of scenarios.
    let mut crng = root.fork("crash");
    let crash_before = crng
        .chance(1, 4)
        .then(|| crng.range(1, txns.len() as u64) as usize);

    // A repair-phase fault (first repair attempt fails, harness retries)
    // in ~15% of scenarios.
    let mut rrng = root.fork("repairfault");
    let repair_fault = rrng.chance(3, 20).then(|| {
        *rrng.pick(&[
            failpoints::REPAIR_MID_SWEEP,
            failpoints::REPAIR_BEFORE_COMMIT,
        ])
    });

    Scenario {
        seed,
        flavor,
        txns,
        faults,
        crash_before,
        repair_fault,
    }
}

impl Scenario {
    /// A human-readable schedule dump, written next to failing captures.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario seed=0x{:016x} flavor={:?} txns={} faults={} crash={:?} repair_fault={:?}",
            self.seed,
            self.flavor,
            self.txns.len(),
            self.faults.len(),
            self.crash_before,
            self.repair_fault,
        );
        for (i, t) in self.txns.iter().enumerate() {
            let kind = if t.malicious {
                "MALICIOUS"
            } else if t.wrote {
                "write"
            } else {
                "read-only"
            };
            for f in self.faults.iter().filter(|f| f.before_txn == i) {
                let _ = writeln!(
                    out,
                    "  [arm {} {:?} {:?}]",
                    f.failpoint, f.action, f.trigger
                );
            }
            if self.crash_before == Some(i) {
                let _ = writeln!(out, "  [crash + recover]");
            }
            let _ = writeln!(out, "  #{i} {} ({kind})", t.label);
            for s in &t.statements {
                let _ = writeln!(out, "      {s}");
            }
        }
        out
    }

    /// The scenario without transaction `i`, fault targets re-aimed — the
    /// shrinker's txn-removal step.
    pub fn without_txn(&self, i: usize) -> Scenario {
        let mut s = self.clone();
        s.txns.remove(i);
        if s.txns.is_empty() {
            s.faults.clear();
            s.crash_before = None;
            return s;
        }
        let last = s.txns.len() - 1;
        s.faults.retain_mut(|f| {
            if f.before_txn > i {
                f.before_txn -= 1;
            }
            f.before_txn = f.before_txn.min(last);
            true
        });
        s.crash_before = s.crash_before.and_then(|c| {
            let c = if c > i { c - 1 } else { c };
            (c <= last).then_some(c)
        });
        s
    }

    /// The scenario without fault `j` — the shrinker's fault-removal step.
    pub fn without_fault(&self, j: usize) -> Scenario {
        let mut s = self.clone();
        s.faults.remove(j);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0xDEAD_BEEF);
        let b = generate(0xDEAD_BEEF);
        assert_eq!(a.describe(), b.describe());
    }

    #[test]
    fn every_seed_has_at_least_one_malicious_txn() {
        for seed in 0..50 {
            let s = generate(seed);
            assert!(s.txns.iter().any(|t| t.malicious), "seed {seed}");
            assert!(s.txns.len() >= 5, "seed {seed}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let s = generate(7);
        let mut labels: Vec<_> = s.txns.iter().map(|t| t.label.clone()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), s.txns.len());
    }

    #[test]
    fn without_txn_keeps_fault_targets_in_range() {
        let s = generate(3);
        for i in 0..s.txns.len() {
            let shrunk = s.without_txn(i);
            for f in &shrunk.faults {
                assert!(f.before_txn < shrunk.txns.len());
            }
        }
    }
}
