//! Scenario execution: track → attack → repair → clean replay, with the
//! oracle battery evaluated at the end.
//!
//! The harness runs a [`Scenario`] against a fresh [`ResilientDb`]
//! ("world A"): loads the scaled TPC-C footprint, executes the schedule
//! (optionally across real OS threads), disarms the fault plan, repairs
//! from the committed malicious transactions, and then builds a second
//! fresh instance ("world B") that replays only the clean survivors.
//! Every oracle in [`crate::oracle`] is then checked; a non-empty failure
//! list is a fuzzer finding.
//!
//! Per-transaction outcomes are *recorded, not assumed*: a scenario's
//! faults decide which transactions commit, and under `threads > 1` that
//! decision is scheduling-dependent — so the oracles compare against what
//! actually happened, never against the schedule's intent.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Barrier};

use parking_lot::Mutex;
use resildb_core::{Connection, ResilientDb};
use resildb_sim::telemetry::trace::to_jsonl;
use resildb_sim::TraceSnapshot;
use resildb_tpcc::Loader;
use resildb_wire::WireError;

use crate::oracle;
use crate::scenario::{generate, tpcc_config, Scenario, ScenarioTxn};

/// What happened to one scheduled transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// COMMIT succeeded end-to-end.
    Committed,
    /// Any failure: statement error, disconnect, injected panic, rollback.
    Aborted,
}

/// Deliberately-injected harness bugs, used to prove the oracle battery
/// actually catches what it claims to catch (CI runs one and requires the
/// fuzzer to fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Canary {
    /// No canary: honest run.
    #[default]
    None,
    /// Omit the last committed malicious transaction from the repair's
    /// initial set — an incomplete damage closure, which the
    /// repair-equals-clean-replay oracle must flag.
    SkipFinalAttack,
}

/// Knobs for one run (everything else comes from the scenario).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads for the workload phase. 1 = deterministic schedule
    /// order; N > 1 = real concurrency (crash points are skipped).
    pub threads: usize,
    /// Injected harness bug, if any.
    pub canary: Canary,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            canary: Canary::None,
        }
    }
}

/// Everything a run produced: outcomes, oracle failures, forensics.
#[derive(Debug)]
pub struct RunReport {
    /// The generating seed.
    pub seed: u64,
    /// Per-schedule-index outcome.
    pub outcomes: Vec<Outcome>,
    /// Oracle failures; empty means the run passed.
    pub failures: Vec<String>,
    /// Labels of the transactions the repair undid.
    pub undo_labels: BTreeSet<String>,
    /// Flight-recorder capture (JSONL), kept when the run failed.
    pub capture: Option<String>,
}

impl RunReport {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn harness_error(seed: u64, msg: String) -> Self {
        Self {
            seed,
            outcomes: Vec::new(),
            failures: vec![msg],
            undo_labels: BTreeSet::new(),
            capture: None,
        }
    }
}

/// Generates and runs the scenario for `seed`.
pub fn run_seed(seed: u64, opts: &RunOptions) -> RunReport {
    run_scenario(&generate(seed), opts)
}

/// Injected `FaultAction::Panic` unwinds are caught and *expected*; the
/// default panic hook would still print a backtrace for each, drowning a
/// fuzz run's output. Installed once: swallows exactly those, delegates
/// everything else.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected panic at failpoint"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Runs an explicit scenario (the shrinker edits scenarios directly).
pub fn run_scenario(scenario: &Scenario, opts: &RunOptions) -> RunReport {
    silence_injected_panics();
    match try_run(scenario, opts) {
        Ok(report) => report,
        Err(e) => RunReport::harness_error(scenario.seed, format!("harness error: {e}")),
    }
}

/// Executes one scheduled transaction over a possibly-dead connection
/// slot, reconnecting as needed. Panics unwinding out of injected
/// failpoints are contained here; the connection is discarded after one
/// (its engine session rolls back on drop) and the transaction counts as
/// aborted.
fn exec_txn(
    rdb: &ResilientDb,
    conn: &mut Option<Box<dyn Connection>>,
    txn: &ScenarioTxn,
    index: usize,
    commit_order: &Mutex<Vec<usize>>,
) -> Outcome {
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<(), WireError> {
        if conn.is_none() {
            *conn = Some(rdb.connect()?);
        }
        let Some(c) = conn.as_mut() else {
            return Err(WireError::Protocol("connection slot empty".into()));
        };
        c.execute(&format!("ANNOTATE {}", txn.label))?;
        c.execute("BEGIN")?;
        for s in &txn.statements {
            c.execute(s)?;
        }
        // The lock is held *across* COMMIT so the recorded order is a valid
        // serialization order: a transaction that read this one's writes
        // acquires its row locks only after this engine commit released
        // them, hence reaches its own COMMIT — and this lock — later.
        // World B replays survivors in exactly this order.
        let mut order = commit_order.lock();
        c.execute("COMMIT")?;
        order.push(index);
        Ok(())
    }));
    match result {
        Ok(Ok(())) => Outcome::Committed,
        Ok(Err(e)) => {
            if matches!(e, WireError::ConnectionDropped) {
                *conn = None; // severed; a fresh one is made on demand
            } else if let Some(c) = conn.as_mut() {
                // Best-effort: close whatever transaction is still open on
                // either side. Harmless when the commit path already did.
                let _ = c.execute("ROLLBACK");
            }
            Outcome::Aborted
        }
        Err(_) => {
            *conn = None; // injected panic: discard the wedged connection
            Outcome::Aborted
        }
    }
}

/// Arms every fault event scheduled before transaction `i`.
fn arm_faults(rdb: &ResilientDb, scenario: &Scenario, i: usize) {
    for f in scenario.faults.iter().filter(|f| f.before_txn == i) {
        rdb.database()
            .sim()
            .faults()
            .arm(f.failpoint, f.action, f.trigger);
    }
}

fn run_workload(
    rdb: &Arc<ResilientDb>,
    scenario: &Scenario,
    opts: &RunOptions,
) -> Result<(Vec<Outcome>, Vec<usize>), String> {
    let n = scenario.txns.len();
    let commit_order = Mutex::new(Vec::with_capacity(n));
    if opts.threads <= 1 {
        let mut outcomes = vec![Outcome::Aborted; n];
        let mut conn: Option<Box<dyn Connection>> = None;
        for (i, txn) in scenario.txns.iter().enumerate() {
            if scenario.crash_before == Some(i) {
                conn = None; // crash severs every client
                rdb.database()
                    .simulate_crash_and_recover()
                    .map_err(|e| format!("crash-recovery failed: {e}"))?;
            }
            arm_faults(rdb, scenario, i);
            outcomes[i] = exec_txn(rdb, &mut conn, txn, i, &commit_order);
        }
        return Ok((outcomes, commit_order.into_inner()));
    }

    // Threaded: worker t owns schedule indices i ≡ t (mod threads), in
    // order. Crash points are skipped (in-place recovery cannot run under
    // concurrent sessions); everything else is identical.
    let outcomes = Mutex::new(vec![Outcome::Aborted; n]);
    let barrier = Barrier::new(opts.threads);
    std::thread::scope(|scope| {
        for t in 0..opts.threads {
            let (rdb, outcomes, barrier, commit_order) =
                (Arc::clone(rdb), &outcomes, &barrier, &commit_order);
            scope.spawn(move || {
                let mut conn: Option<Box<dyn Connection>> = None;
                barrier.wait();
                for (i, txn) in scenario
                    .txns
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % opts.threads == t)
                {
                    arm_faults(&rdb, scenario, i);
                    let o = exec_txn(&rdb, &mut conn, txn, i, commit_order);
                    outcomes.lock()[i] = o;
                }
            });
        }
    });
    Ok((outcomes.into_inner(), commit_order.into_inner()))
}

fn try_run(scenario: &Scenario, opts: &RunOptions) -> Result<RunReport, String> {
    let cfg = tpcc_config();

    // --- world A: track → attack -------------------------------------
    let rdb = Arc::new(ResilientDb::new(scenario.flavor).map_err(|e| e.to_string())?);
    {
        let mut conn = rdb.connect().map_err(|e| e.to_string())?;
        Loader::new(cfg.clone(), scenario.seed)
            .load(&mut *conn)
            .map_err(|e| format!("load failed: {e}"))?;
    }

    let (outcomes, commit_order) = run_workload(&rdb, scenario, opts)?;
    rdb.database().sim().faults().disarm_all();

    let mut failures: Vec<String> = Vec::new();

    // Capture the label → proxy-trid mapping NOW: a successful repair
    // compensates away the tracking rows (annot, trans_dep) of everything
    // it undoes — they were INSERTs inside the undone transaction — so
    // after repair the labels of undone transactions resolve to nothing.
    // Every committed write transaction must be resolvable here; a miss
    // is itself an oracle failure (an untraceable transaction).
    let mut label_trids: BTreeMap<String, i64> = BTreeMap::new();
    for (i, txn) in scenario.txns.iter().enumerate() {
        if outcomes[i] != Outcome::Committed || !txn.wrote {
            continue;
        }
        match rdb.txn_id_by_label(&txn.label) {
            Ok(Some(trid)) => {
                label_trids.insert(txn.label.clone(), trid);
            }
            Ok(None) => failures.push(format!(
                "committed write txn {} left no annot row (untraceable)",
                txn.label
            )),
            Err(e) => failures.push(format!("annot lookup failed for {}: {e}", txn.label)),
        }
    }

    // Committed malicious transactions form the repair's initial set.
    let mut initial: Vec<i64> = scenario
        .txns
        .iter()
        .enumerate()
        .filter(|(i, txn)| txn.malicious && outcomes[*i] == Outcome::Committed)
        .filter_map(|(_, txn)| label_trids.get(&txn.label).copied())
        .collect();
    if opts.canary == Canary::SkipFinalAttack {
        initial.pop(); // the injected bug: one attack goes unrepaired
    }

    // Analysis first (the dependency graph must be read before the
    // repair's own compensating writes enter the log), then repair.
    let mut undo_labels: BTreeSet<String> = BTreeSet::new();
    let mut analysis = None;
    if !initial.is_empty() {
        let a = rdb.analyze().map_err(|e| format!("analysis failed: {e}"))?;
        for id in a.undo_set(&initial, &[]) {
            undo_labels.insert(a.graph.label(id));
        }
        // Kept for the static-soundness oracle: the graph snapshot must
        // predate the repair's own compensating writes.
        analysis = Some(a);
        // A scenario may script a repair-phase fault: the first attempt
        // is then expected to fail (and must roll back cleanly — the
        // byte-equality oracle would expose any leaked compensation);
        // the retry after disarming must succeed.
        if let Some(site) = scenario.repair_fault {
            rdb.database().sim().faults().arm(
                site,
                resildb_sim::FaultAction::Error,
                resildb_sim::FaultTrigger::Once,
            );
            let first = rdb.repair(&initial, &[]);
            rdb.database().sim().faults().disarm_all();
            if first.is_err() {
                rdb.repair(&initial, &[])
                    .map_err(|e| format!("repair retry failed: {e}"))?;
            }
        } else {
            rdb.repair(&initial, &[])
                .map_err(|e| format!("repair failed: {e}"))?;
        }
    }

    // --- world B: clean replay (malicious elided, undo set elided) ----
    let rdb_b = ResilientDb::new(scenario.flavor).map_err(|e| e.to_string())?;
    {
        let mut conn = rdb_b.connect().map_err(|e| e.to_string())?;
        Loader::new(cfg, scenario.seed)
            .load(&mut *conn)
            .map_err(|e| format!("replay load failed: {e}"))?;
        // Replay in the recorded *commit* order — world A's serialization
        // order. Under threads it can differ from schedule order, and
        // replaying conflicting survivors out of order would diverge for
        // reasons that are not bugs.
        for &i in &commit_order {
            let txn = &scenario.txns[i];
            let survived = outcomes[i] == Outcome::Committed
                && !txn.malicious
                && !undo_labels.contains(&txn.label);
            if !survived {
                continue;
            }
            let replayed = (|| -> Result<(), WireError> {
                conn.execute(&format!("ANNOTATE {}", txn.label))?;
                conn.execute("BEGIN")?;
                for s in &txn.statements {
                    conn.execute(s)?;
                }
                conn.execute("COMMIT")?;
                Ok(())
            })();
            if let Err(e) = replayed {
                failures.push(format!("clean replay of {} failed: {e}", txn.label));
            }
        }
    }

    // --- oracles ------------------------------------------------------
    let flight: TraceSnapshot = rdb.flight_recorder().snapshot();
    if opts.threads <= 1 {
        // Full-state equality and the ground-truth closure both assume the
        // history is equivalent to the schedule order — true only when one
        // thread ran it. The engine is read-committed (readers take no
        // locks), so a threaded history need not match *any* serial replay.
        failures.extend(oracle::byte_equality(&rdb, &rdb_b));
        failures.extend(oracle::closure_matches_ground_truth(
            scenario,
            &outcomes,
            &undo_labels,
        ));
    }
    failures.extend(oracle::attack_eradicated(&rdb, &rdb_b));
    failures.extend(oracle::trans_dep_exactly_once(
        &rdb,
        scenario,
        &outcomes,
        &undo_labels,
        &label_trids,
    ));
    failures.extend(oracle::static_soundness(
        scenario,
        &outcomes,
        analysis.as_ref(),
        &initial,
        &undo_labels,
    ));
    failures.extend(oracle::inflight_drained(&rdb, "world A"));
    failures.extend(oracle::inflight_drained(&rdb_b, "world B"));
    failures.extend(oracle::flight_lifecycle(
        &flight,
        scenario,
        &outcomes,
        &label_trids,
    ));

    let capture = (!failures.is_empty()).then(|| to_jsonl(&flight));
    Ok(RunReport {
        seed: scenario.seed,
        outcomes,
        failures,
        undo_labels,
        capture,
    })
}
