//! Scenario execution: track → attack → repair → clean replay, with the
//! oracle battery evaluated at the end.
//!
//! The harness runs a [`Scenario`] against a fresh [`ResilientDb`]
//! ("world A"): loads the scaled TPC-C footprint, executes the schedule
//! (optionally across real OS threads), disarms the fault plan, repairs
//! from the committed malicious transactions, and then builds a second
//! fresh instance ("world B") that replays only the clean survivors.
//! Every oracle in [`crate::oracle`] is then checked; a non-empty failure
//! list is a fuzzer finding.
//!
//! Per-transaction outcomes are *recorded, not assumed*: a scenario's
//! faults decide which transactions commit, and under `threads > 1` that
//! decision is scheduling-dependent — so the oracles compare against what
//! actually happened, never against the schedule's intent.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use parking_lot::Mutex;
use resildb_core::{
    Connection, ContainmentPolicy, FenceAction, ResilientDb, Response, TRACKING_TABLES,
};
use resildb_sim::telemetry::trace::to_jsonl;
use resildb_sim::TraceSnapshot;
use resildb_tpcc::{Loader, TPCC_TABLES};
use resildb_wire::WireError;

use crate::oracle;
use crate::scenario::{generate, tpcc_config, Scenario, ScenarioTxn};

/// What happened to one scheduled transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// COMMIT succeeded end-to-end.
    Committed,
    /// Any failure: statement error, disconnect, injected panic, rollback.
    Aborted,
}

/// Deliberately-injected harness bugs, used to prove the oracle battery
/// actually catches what it claims to catch (CI runs one and requires the
/// fuzzer to fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Canary {
    /// No canary: honest run.
    #[default]
    None,
    /// Omit the last committed malicious transaction from the repair's
    /// initial set — an incomplete damage closure, which the
    /// repair-equals-clean-replay oracle must flag.
    SkipFinalAttack,
}

/// Knobs for one run (everything else comes from the scenario).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads for the workload phase. 1 = deterministic schedule
    /// order; N > 1 = real concurrency (crash points are skipped).
    pub threads: usize,
    /// Injected harness bug, if any.
    pub canary: Canary,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            canary: Canary::None,
        }
    }
}

/// Everything a run produced: outcomes, oracle failures, forensics.
#[derive(Debug)]
pub struct RunReport {
    /// The generating seed.
    pub seed: u64,
    /// Per-schedule-index outcome.
    pub outcomes: Vec<Outcome>,
    /// Oracle failures; empty means the run passed.
    pub failures: Vec<String>,
    /// Labels of the transactions the repair undid.
    pub undo_labels: BTreeSet<String>,
    /// Flight-recorder capture (JSONL), kept when the run failed.
    pub capture: Option<String>,
}

impl RunReport {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn harness_error(seed: u64, msg: String) -> Self {
        Self {
            seed,
            outcomes: Vec::new(),
            failures: vec![msg],
            undo_labels: BTreeSet::new(),
            capture: None,
        }
    }
}

/// Generates and runs the scenario for `seed`.
pub fn run_seed(seed: u64, opts: &RunOptions) -> RunReport {
    run_scenario(&generate(seed), opts)
}

/// Injected `FaultAction::Panic` unwinds are caught and *expected*; the
/// default panic hook would still print a backtrace for each, drowning a
/// fuzz run's output. Installed once: swallows exactly those, delegates
/// everything else.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected panic at failpoint"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Runs an explicit scenario (the shrinker edits scenarios directly).
pub fn run_scenario(scenario: &Scenario, opts: &RunOptions) -> RunReport {
    silence_injected_panics();
    match try_run(scenario, opts) {
        Ok(report) => report,
        Err(e) => RunReport::harness_error(scenario.seed, format!("harness error: {e}")),
    }
}

/// Executes one scheduled transaction over a possibly-dead connection
/// slot, reconnecting as needed. Panics unwinding out of injected
/// failpoints are contained here; the connection is discarded after one
/// (its engine session rolls back on drop) and the transaction counts as
/// aborted.
fn exec_txn(
    rdb: &ResilientDb,
    conn: &mut Option<Box<dyn Connection>>,
    txn: &ScenarioTxn,
    index: usize,
    commit_order: &Mutex<Vec<usize>>,
) -> Outcome {
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<(), WireError> {
        if conn.is_none() {
            *conn = Some(rdb.connect()?);
        }
        let Some(c) = conn.as_mut() else {
            return Err(WireError::Protocol("connection slot empty".into()));
        };
        c.execute(&format!("ANNOTATE {}", txn.label))?;
        c.execute("BEGIN")?;
        for s in &txn.statements {
            c.execute(s)?;
        }
        // The lock is held *across* COMMIT so the recorded order is a valid
        // serialization order: a transaction that read this one's writes
        // acquires its row locks only after this engine commit released
        // them, hence reaches its own COMMIT — and this lock — later.
        // World B replays survivors in exactly this order.
        let mut order = commit_order.lock();
        c.execute("COMMIT")?;
        order.push(index);
        Ok(())
    }));
    match result {
        Ok(Ok(())) => Outcome::Committed,
        Ok(Err(e)) => {
            if matches!(e, WireError::ConnectionDropped) {
                *conn = None; // severed; a fresh one is made on demand
            } else if let Some(c) = conn.as_mut() {
                // Best-effort: close whatever transaction is still open on
                // either side. Harmless when the commit path already did.
                let _ = c.execute("ROLLBACK");
            }
            Outcome::Aborted
        }
        Err(_) => {
            *conn = None; // injected panic: discard the wedged connection
            Outcome::Aborted
        }
    }
}

/// Arms every fault event scheduled before transaction `i`.
fn arm_faults(rdb: &ResilientDb, scenario: &Scenario, i: usize) {
    for f in scenario.faults.iter().filter(|f| f.before_txn == i) {
        rdb.database()
            .sim()
            .faults()
            .arm(f.failpoint, f.action, f.trigger);
    }
}

fn run_workload(
    rdb: &Arc<ResilientDb>,
    scenario: &Scenario,
    opts: &RunOptions,
) -> Result<(Vec<Outcome>, Vec<usize>), String> {
    let n = scenario.txns.len();
    let commit_order = Mutex::new(Vec::with_capacity(n));
    if opts.threads <= 1 {
        let mut outcomes = vec![Outcome::Aborted; n];
        let mut conn: Option<Box<dyn Connection>> = None;
        for (i, txn) in scenario.txns.iter().enumerate() {
            if scenario.crash_before == Some(i) {
                conn = None; // crash severs every client
                rdb.database()
                    .simulate_crash_and_recover()
                    .map_err(|e| format!("crash-recovery failed: {e}"))?;
            }
            arm_faults(rdb, scenario, i);
            outcomes[i] = exec_txn(rdb, &mut conn, txn, i, &commit_order);
        }
        return Ok((outcomes, commit_order.into_inner()));
    }

    // Threaded: worker t owns schedule indices i ≡ t (mod threads), in
    // order. Crash points are skipped (in-place recovery cannot run under
    // concurrent sessions); everything else is identical.
    let outcomes = Mutex::new(vec![Outcome::Aborted; n]);
    let barrier = Barrier::new(opts.threads);
    std::thread::scope(|scope| {
        for t in 0..opts.threads {
            let (rdb, outcomes, barrier, commit_order) =
                (Arc::clone(rdb), &outcomes, &barrier, &commit_order);
            scope.spawn(move || {
                let mut conn: Option<Box<dyn Connection>> = None;
                barrier.wait();
                for (i, txn) in scenario
                    .txns
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % opts.threads == t)
                {
                    arm_faults(&rdb, scenario, i);
                    let o = exec_txn(&rdb, &mut conn, txn, i, commit_order);
                    outcomes.lock()[i] = o;
                }
            });
        }
    });
    Ok((outcomes.into_inner(), commit_order.into_inner()))
}

fn try_run(scenario: &Scenario, opts: &RunOptions) -> Result<RunReport, String> {
    let cfg = tpcc_config();

    // --- world A: track → attack -------------------------------------
    let rdb = Arc::new(ResilientDb::new(scenario.flavor).map_err(|e| e.to_string())?);
    {
        let mut conn = rdb.connect().map_err(|e| e.to_string())?;
        Loader::new(cfg.clone(), scenario.seed)
            .load(&mut *conn)
            .map_err(|e| format!("load failed: {e}"))?;
    }

    let (outcomes, commit_order) = run_workload(&rdb, scenario, opts)?;
    rdb.database().sim().faults().disarm_all();

    let mut failures: Vec<String> = Vec::new();

    // Capture the label → proxy-trid mapping NOW: a successful repair
    // compensates away the tracking rows (annot, trans_dep) of everything
    // it undoes — they were INSERTs inside the undone transaction — so
    // after repair the labels of undone transactions resolve to nothing.
    // Every committed write transaction must be resolvable here; a miss
    // is itself an oracle failure (an untraceable transaction).
    let mut label_trids: BTreeMap<String, i64> = BTreeMap::new();
    for (i, txn) in scenario.txns.iter().enumerate() {
        if outcomes[i] != Outcome::Committed || !txn.wrote {
            continue;
        }
        match rdb.txn_id_by_label(&txn.label) {
            Ok(Some(trid)) => {
                label_trids.insert(txn.label.clone(), trid);
            }
            Ok(None) => failures.push(format!(
                "committed write txn {} left no annot row (untraceable)",
                txn.label
            )),
            Err(e) => failures.push(format!("annot lookup failed for {}: {e}", txn.label)),
        }
    }

    // Committed malicious transactions form the repair's initial set.
    let mut initial: Vec<i64> = scenario
        .txns
        .iter()
        .enumerate()
        .filter(|(i, txn)| txn.malicious && outcomes[*i] == Outcome::Committed)
        .filter_map(|(_, txn)| label_trids.get(&txn.label).copied())
        .collect();
    if opts.canary == Canary::SkipFinalAttack {
        initial.pop(); // the injected bug: one attack goes unrepaired
    }

    // Analysis first (the dependency graph must be read before the
    // repair's own compensating writes enter the log), then repair.
    let mut undo_labels: BTreeSet<String> = BTreeSet::new();
    let mut analysis = None;
    if !initial.is_empty() {
        let a = rdb.analyze().map_err(|e| format!("analysis failed: {e}"))?;
        for id in a.undo_set(&initial, &[]) {
            undo_labels.insert(a.graph.label(id));
        }
        // Kept for the static-soundness oracle: the graph snapshot must
        // predate the repair's own compensating writes.
        analysis = Some(a);
        // A scenario may script a repair-phase fault: the first attempt
        // is then expected to fail (and must roll back cleanly — the
        // byte-equality oracle would expose any leaked compensation);
        // the retry after disarming must succeed.
        if let Some(site) = scenario.repair_fault {
            rdb.database().sim().faults().arm(
                site,
                resildb_sim::FaultAction::Error,
                resildb_sim::FaultTrigger::Once,
            );
            let first = rdb.repair(&initial, &[]);
            rdb.database().sim().faults().disarm_all();
            if first.is_err() {
                rdb.repair(&initial, &[])
                    .map_err(|e| format!("repair retry failed: {e}"))?;
            }
        } else {
            rdb.repair(&initial, &[])
                .map_err(|e| format!("repair failed: {e}"))?;
        }
    }

    // --- world B: clean replay (malicious elided, undo set elided) ----
    let rdb_b = ResilientDb::new(scenario.flavor).map_err(|e| e.to_string())?;
    {
        let mut conn = rdb_b.connect().map_err(|e| e.to_string())?;
        Loader::new(cfg, scenario.seed)
            .load(&mut *conn)
            .map_err(|e| format!("replay load failed: {e}"))?;
        // Replay in the recorded *commit* order — world A's serialization
        // order. Under threads it can differ from schedule order, and
        // replaying conflicting survivors out of order would diverge for
        // reasons that are not bugs.
        for &i in &commit_order {
            let txn = &scenario.txns[i];
            let survived = outcomes[i] == Outcome::Committed
                && !txn.malicious
                && !undo_labels.contains(&txn.label);
            if !survived {
                continue;
            }
            let replayed = (|| -> Result<(), WireError> {
                conn.execute(&format!("ANNOTATE {}", txn.label))?;
                conn.execute("BEGIN")?;
                for s in &txn.statements {
                    conn.execute(s)?;
                }
                conn.execute("COMMIT")?;
                Ok(())
            })();
            if let Err(e) = replayed {
                failures.push(format!("clean replay of {} failed: {e}", txn.label));
            }
        }
    }

    // --- oracles ------------------------------------------------------
    let flight: TraceSnapshot = rdb.flight_recorder().snapshot();
    if opts.threads <= 1 {
        // Full-state equality and the ground-truth closure both assume the
        // history is equivalent to the schedule order — true only when one
        // thread ran it. The engine is read-committed (readers take no
        // locks), so a threaded history need not match *any* serial replay.
        failures.extend(oracle::byte_equality(&rdb, &rdb_b));
        failures.extend(oracle::closure_matches_ground_truth(
            scenario,
            &outcomes,
            &undo_labels,
        ));
    }
    failures.extend(oracle::attack_eradicated(&rdb, &rdb_b));
    failures.extend(oracle::trans_dep_exactly_once(
        &rdb,
        scenario,
        &outcomes,
        &undo_labels,
        &label_trids,
    ));
    failures.extend(oracle::static_soundness(
        scenario,
        &outcomes,
        analysis.as_ref(),
        &initial,
        &undo_labels,
    ));
    failures.extend(oracle::inflight_drained(&rdb, "world A"));
    failures.extend(oracle::inflight_drained(&rdb_b, "world B"));
    failures.extend(oracle::flight_lifecycle(
        &flight,
        scenario,
        &outcomes,
        &label_trids,
    ));
    // Oracle 9: world A repairs quiesced, so its incidents must be
    // closed, strictly monotonic, decomposition-exact and fence-free.
    failures.extend(oracle::timeline_well_formed(
        "world A",
        &rdb.telemetry().timeline().snapshot(),
        false,
    ));
    // Oracle 8: live repair ≡ quiesced repair. Runs its own pair of
    // deterministic worlds, so it holds under `--threads N` too. A
    // harness-level breakage inside it is reported as a failure (not an
    // error) so the shrinker can minimize it like any other finding.
    if scenario.txns.iter().any(|t| t.malicious) {
        match live_vs_quiesced(scenario, opts.canary) {
            Ok(f) => failures.extend(f),
            Err(e) => failures.push(format!("live-repair harness error: {e}")),
        }
    }

    let capture = (!failures.is_empty()).then(|| to_jsonl(&flight));
    Ok(RunReport {
        seed: scenario.seed,
        outcomes,
        failures,
        undo_labels,
        capture,
    })
}

/// A deterministic world: the instance, its per-transaction outcomes,
/// and the proxy trids of its committed malicious transactions.
type World = (Arc<ResilientDb>, Vec<Outcome>, Vec<i64>);

/// Replays the full scenario single-threaded against a fresh instance
/// built with `containment`, and returns the world together with its
/// outcomes and the proxy trids of its committed malicious transactions.
/// Single-threaded replay is deterministic, so two such worlds reach
/// byte-identical pre-repair states — trid columns included.
fn replay_deterministic(
    scenario: &Scenario,
    containment: ContainmentPolicy,
) -> Result<World, String> {
    let rdb = Arc::new(
        ResilientDb::builder(scenario.flavor)
            .containment(containment)
            .build()
            .map_err(|e| e.to_string())?,
    );
    {
        let mut conn = rdb.connect().map_err(|e| e.to_string())?;
        Loader::new(tpcc_config(), scenario.seed)
            .load(&mut *conn)
            .map_err(|e| format!("load failed: {e}"))?;
    }
    let opts = RunOptions {
        threads: 1,
        canary: Canary::None,
    };
    let (outcomes, _) = run_workload(&rdb, scenario, &opts)?;
    rdb.database().sim().faults().disarm_all();

    let mut initial = Vec::new();
    for (i, txn) in scenario.txns.iter().enumerate() {
        if !(txn.malicious && outcomes[i] == Outcome::Committed) {
            continue;
        }
        match rdb.txn_id_by_label(&txn.label) {
            Ok(Some(trid)) => initial.push(trid),
            Ok(None) => {
                return Err(format!("committed attack {} left no annot row", txn.label));
            }
            Err(e) => return Err(format!("annot lookup failed for {}: {e}", txn.label)),
        }
    }
    Ok((rdb, outcomes, initial))
}

/// Runs a repair attempt honoring the scenario's scripted repair-phase
/// fault the same way world A does: with a fault scheduled, the first
/// attempt runs with it armed `Once` and is expected to fail (rolling
/// back cleanly — the equality oracle exposes any leaked compensation, a
/// live attempt must also drop its fence); the retry after disarming must
/// succeed.
fn scripted_repair(
    scenario: &Scenario,
    rdb: &ResilientDb,
    initial: &[i64],
    attempt: impl Fn(&[i64]) -> Result<(), String>,
) -> Result<(), String> {
    let Some(site) = scenario.repair_fault else {
        return attempt(initial);
    };
    rdb.database().sim().faults().arm(
        site,
        resildb_sim::FaultAction::Error,
        resildb_sim::FaultTrigger::Once,
    );
    let first = attempt(initial);
    rdb.database().sim().faults().disarm_all();
    if first.is_err() {
        return attempt(initial).map_err(|e| format!("repair retry failed: {e}"));
    }
    Ok(())
}

/// Raw rows of `table` through an untracked connection — hidden `trid`
/// columns *included*, since the two deterministic worlds allocate
/// identical proxy transaction ids.
fn raw_table_rows(rdb: &ResilientDb, table: &str) -> Result<Vec<String>, String> {
    let mut conn = rdb
        .connect_untracked()
        .map_err(|e| format!("untracked connect failed: {e}"))?;
    match conn
        .execute(&format!("SELECT * FROM {table}"))
        .map_err(|e| format!("SELECT * FROM {table} failed: {e}"))?
    {
        Response::Rows(qr) => {
            let mut rows: Vec<String> = qr.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows.insert(0, format!("{:?}", qr.columns));
            Ok(rows)
        }
        other => Err(format!(
            "SELECT * FROM {table}: expected rows, got {other:?}"
        )),
    }
}

/// Oracle 8: **live repair ≡ quiesced repair**. Two more fresh worlds
/// replay the full scenario single-threaded (identical pre-repair states
/// by determinism). World Q repairs quiesced — the reference. World L
/// repairs *online*: containment fence up over the scenario's written
/// tables, `FenceDynamic(Reject)`, while a probe thread keeps reading a
/// table no scheduled transaction ever writes. Checked:
///
/// - L's final state is byte-identical to Q's — raw rows of every TPC-C
///   table *and* the tracking tables, hidden trid columns included;
/// - no probe on the clean table (outside every fence, static or
///   dynamic) is ever refused;
/// - the live report actually fenced something, the fence was lifted
///   (`repair.live.fence_size` back to 0), and the flight recorder shows
///   the `fence_raised`/`fence_lifted` lifecycle.
///
/// The [`Canary::SkipFinalAttack`] bug is injected into world L's
/// initial set only (Q stays the correct reference), so a canary run
/// must trip the equality check — proving this oracle is alive.
fn live_vs_quiesced(scenario: &Scenario, canary: Canary) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();

    // Tables any scheduled transaction writes: a sound static fence
    // surface (damage spreads only through writes), whose complement
    // yields a provably-clean probe table.
    let written: BTreeSet<&str> = scenario
        .txns
        .iter()
        .flat_map(|t| {
            t.writes
                .iter()
                .chain(t.preimages.iter())
                .chain(t.deletes.iter())
        })
        .map(|r| r.table)
        .collect();
    let probe_table = TPCC_TABLES.iter().copied().find(|t| !written.contains(t));

    let (rdb_q, outcomes_q, initial_q) = replay_deterministic(scenario, ContainmentPolicy::Off)?;
    if initial_q.is_empty() {
        return Ok(failures); // every attack aborted: nothing to repair
    }
    scripted_repair(scenario, &rdb_q, &initial_q, |init| {
        rdb_q
            .repair(init, &[])
            .map(|_| ())
            .map_err(|e| e.to_string())
    })?;

    let (rdb_l, outcomes_l, mut initial_l) = replay_deterministic(
        scenario,
        ContainmentPolicy::FenceDynamic(FenceAction::Reject),
    )?;
    if outcomes_l != outcomes_q {
        return Err("deterministic replays diverged between live and quiesced worlds".into());
    }
    if canary == Canary::SkipFinalAttack {
        initial_l.pop();
    }

    let surface: Vec<String> = written.iter().map(|t| (*t).to_string()).collect();
    let probe_failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let last_report = Mutex::new(None);
    let done = AtomicBool::new(false);
    let repair_result = std::thread::scope(|scope| {
        if let Some(table) = probe_table {
            let (rdb_l, done, probe_failures) = (&rdb_l, &done, &probe_failures);
            scope.spawn(move || {
                let Ok(mut conn) = rdb_l.connect() else {
                    return;
                };
                while !done.load(Ordering::Relaxed) {
                    if let Err(e) = conn.execute(&format!("SELECT * FROM {table}")) {
                        let msg = e.to_string();
                        if msg.contains("containment fence") {
                            let mut pf = probe_failures.lock();
                            if pf.len() < 3 {
                                pf.push(format!(
                                    "live-repair: clean probe on {table} (a table no \
                                     scheduled txn writes) was refused: {msg}"
                                ));
                            }
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }
        let result = scripted_repair(scenario, &rdb_l, &initial_l, |init| {
            let options = rdb_l
                .live_repair_options()
                .static_surface(surface.iter().cloned());
            let report = rdb_l
                .repair_controller_with(options)
                .repair(init)
                .map_err(|e| e.to_string())?;
            *last_report.lock() = Some(report);
            Ok(())
        });
        done.store(true, Ordering::Relaxed);
        result
    });
    repair_result?;
    failures.append(&mut probe_failures.into_inner());

    match last_report.into_inner() {
        None => failures.push("live-repair: live execute never succeeded".into()),
        Some(report) => match report.live {
            None => failures.push("live-repair: RepairMode::Live produced no live stats".into()),
            Some(stats) if stats.fenced_tables == 0 => {
                failures.push("live-repair: report says no table was ever fenced".into());
            }
            Some(_) => {}
        },
    }
    if rdb_l.metrics().gauge("repair.live.fence_size") != Some(0.0) {
        failures.push(
            "live-repair: fence not lifted (repair.live.fence_size != 0 after repair)".into(),
        );
    }
    let flight = rdb_l.flight_recorder().snapshot();
    if flight.dropped == 0 {
        for name in ["fence_raised", "fence_lifted"] {
            if !flight.events.iter().any(|e| e.kind.name() == name) {
                failures.push(format!(
                    "live-repair: flight recorder shows no {name} event"
                ));
            }
        }
    }
    // Oracle 9 on both repair styles: Q's incidents must be fence-free,
    // L's must each carry exactly one fence_raised/fence_lifted pair —
    // including the failed first attempt of a scripted repair fault,
    // whose fence the drop guard lifts on the error path.
    failures.extend(oracle::timeline_well_formed(
        "world Q",
        &rdb_q.telemetry().timeline().snapshot(),
        false,
    ));
    failures.extend(oracle::timeline_well_formed(
        "world L",
        &rdb_l.telemetry().timeline().snapshot(),
        true,
    ));

    for table in TPCC_TABLES
        .iter()
        .copied()
        .chain(TRACKING_TABLES.iter().copied())
    {
        match (raw_table_rows(&rdb_l, table), raw_table_rows(&rdb_q, table)) {
            (Ok(rl), Ok(rq)) => {
                if rl != rq {
                    let diff = rl
                        .iter()
                        .filter(|r| !rq.contains(r))
                        .chain(rq.iter().filter(|r| !rl.contains(r)))
                        .take(4)
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(" | ");
                    failures.push(format!(
                        "live-repair: table {table} diverges between live and quiesced \
                         repair ({} vs {} rows; e.g. {diff})",
                        rl.len() - 1,
                        rq.len() - 1,
                    ));
                }
            }
            (Err(e), _) | (_, Err(e)) => failures.push(e),
        }
    }
    Ok(failures)
}
