//! Criterion micro-benchmarks for the framework's hot paths: SQL parsing
//! and printing, Table-1 query rewriting, engine point operations, the
//! tracked statement path, and repair analysis. These measure *real* CPU
//! time (unlike the fig4/fig5 harnesses, which measure virtual time).

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use resildb_core::{Flavor, ResilientDb};
use resildb_sql::{parse_statement, Statement};

const SELECT_SQL: &str = "SELECT c.c_balance, c.c_first, o.o_id FROM customer c, orders o \
     WHERE c.c_w_id = 1 AND c.c_d_id = 2 AND c.c_id = 17 AND o.o_w_id = 1 \
     AND o.o_d_id = 2 AND o.o_c_id = 17 ORDER BY o.o_id DESC LIMIT 1";

fn bench_sql(c: &mut Criterion) {
    c.bench_function("sql_parse_select", |b| {
        b.iter(|| parse_statement(std::hint::black_box(SELECT_SQL)).unwrap())
    });
    let ast = parse_statement(SELECT_SQL).unwrap();
    c.bench_function("sql_print_select", |b| b.iter(|| ast.to_string()));
}

fn bench_rewrite(c: &mut Criterion) {
    let Statement::Select(sel) = parse_statement(SELECT_SQL).unwrap() else {
        unreachable!()
    };
    c.bench_function("proxy_rewrite_select", |b| {
        b.iter(|| {
            resildb_proxy::rewrite_select(
                std::hint::black_box(&sel),
                resildb_proxy::TrackingGranularity::Row,
            )
            .rewritten()
            .unwrap()
        })
    });
    let Statement::Update(upd) = parse_statement(
        "UPDATE stock SET s_quantity = 10, s_ytd = s_ytd + 5 WHERE s_w_id = 1 AND s_i_id = 7",
    )
    .unwrap() else {
        unreachable!()
    };
    c.bench_function("proxy_rewrite_update", |b| {
        b.iter(|| {
            resildb_proxy::rewrite_update(
                std::hint::black_box(&upd),
                42,
                resildb_proxy::TrackingGranularity::Row,
            )
        })
    });
}

fn bench_rewrite_cache(c: &mut Criterion) {
    use resildb_sql::{collect_params, parse_template, scan_statement, SqlTemplate};

    // Cold: what every occurrence of the statement pays without the cache —
    // lex + parse, clone-rewrite, print.
    c.bench_function("rewrite_cold", |b| {
        b.iter(|| {
            let Statement::Select(sel) = parse_statement(std::hint::black_box(SELECT_SQL)).unwrap()
            else {
                unreachable!()
            };
            let (rewritten, _plan) =
                resildb_proxy::rewrite_select(&sel, resildb_proxy::TrackingGranularity::Row)
                    .rewritten()
                    .unwrap();
            rewritten.to_string()
        })
    });

    // Cached: what a rewrite-cache hit pays — fingerprint-scan the incoming
    // text, then splice its literals into the pre-rewritten template.
    let scan = scan_statement(SELECT_SQL).unwrap();
    let Statement::Select(sel) = parse_template(SELECT_SQL, &scan).unwrap() else {
        unreachable!()
    };
    let (rewritten, _plan) =
        resildb_proxy::rewrite_select(&sel, resildb_proxy::TrackingGranularity::Row)
            .rewritten()
            .unwrap();
    let stmt = Statement::Select(rewritten);
    let tmpl = SqlTemplate::new(stmt.to_string(), &collect_params(&stmt)).unwrap();
    c.bench_function("rewrite_cached", |b| {
        b.iter(|| {
            let scan = scan_statement(std::hint::black_box(SELECT_SQL)).unwrap();
            tmpl.splice(SELECT_SQL, &scan.spans, 0)
        })
    });
}

/// A small populated database behind the tracking proxy.
fn tracked_db() -> (ResilientDb, Box<dyn resildb_core::Connection>) {
    let rdb = ResilientDb::new(Flavor::Postgres).unwrap();
    let mut conn = rdb.connect().unwrap();
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, pad VARCHAR(64))")
        .unwrap();
    for chunk in 0..10 {
        let rows: Vec<String> = (0..50)
            .map(|i| format!("({}, {}, 'padding-data')", chunk * 50 + i, i))
            .collect();
        conn.execute(&format!(
            "INSERT INTO t (id, v, pad) VALUES {}",
            rows.join(", ")
        ))
        .unwrap();
    }
    (rdb, conn)
}

fn bench_engine(c: &mut Criterion) {
    let (rdb, _conn) = tracked_db();
    let mut session = rdb.database().session();
    c.bench_function("engine_point_select_by_pk", |b| {
        b.iter(|| session.query("SELECT v FROM t WHERE id = 250").unwrap())
    });
    c.bench_function("engine_point_update_by_pk", |b| {
        b.iter(|| {
            session
                .execute_sql("UPDATE t SET v = v + 1 WHERE id = 250")
                .unwrap()
        })
    });
}

fn bench_tracked_path(c: &mut Criterion) {
    let (_rdb, mut conn) = tracked_db();
    c.bench_function("tracked_select_with_harvest", |b| {
        b.iter(|| conn.execute("SELECT v FROM t WHERE id = 250").unwrap())
    });
    c.bench_function("tracked_autocommit_update", |b| {
        b.iter(|| {
            conn.execute("UPDATE t SET v = v + 1 WHERE id = 250")
                .unwrap()
        })
    });
}

fn bench_repair_analysis(c: &mut Criterion) {
    // A history of 200 small tracked transactions.
    let (rdb, mut conn) = tracked_db();
    for i in 0..200 {
        conn.execute("BEGIN").unwrap();
        conn.execute(&format!("SELECT v FROM t WHERE id = {}", i % 500))
            .unwrap();
        conn.execute(&format!(
            "UPDATE t SET v = v + 1 WHERE id = {}",
            (i + 1) % 500
        ))
        .unwrap();
        conn.execute("COMMIT").unwrap();
    }
    let tool = rdb.repair_controller();
    c.bench_function("repair_analyze_200_txns", |b| {
        b.iter(|| tool.analyze().unwrap())
    });
    let analysis = tool.analyze().unwrap();
    let first = *analysis.tracked_transactions().iter().next().unwrap();
    c.bench_function("repair_closure_200_txns", |b| {
        b.iter(|| analysis.undo_set(&[first], &[]))
    });
}

fn bench_failpoints(c: &mut Criterion) {
    use resildb_core::failpoints;

    // The disarmed fast path every WAL append / proxy statement pays: one
    // relaxed atomic load. Guards the "zero-cost when disarmed" claim next
    // to rewrite_cached, which must not regress from failpoint plumbing.
    let (rdb, mut conn) = tracked_db();
    let sim = rdb.database().sim().clone();
    assert!(!sim.faults().active());
    c.bench_function("failpoint_check_disarmed", |b| {
        b.iter(|| sim.fault_check(std::hint::black_box(failpoints::ENGINE_WAL_APPEND)))
    });
    c.bench_function("tracked_select_failpoints_disarmed", |b| {
        b.iter(|| conn.execute("SELECT v FROM t WHERE id = 250").unwrap())
    });
}

fn bench_enforcement(c: &mut Criterion) {
    use resildb_analyze::{classify_statement, Granularity};
    use resildb_engine::Database;
    use resildb_proxy::{prepare_database, EnforcementPolicy, ProxyConfig, TrackingProxy};
    use resildb_wire::{Driver, LinkProfile, NativeDriver};

    // The raw classifier cost a cold statement pays once per shape.
    let stmt = parse_statement(SELECT_SQL).unwrap();
    c.bench_function("analyzer_classify_select", |b| {
        b.iter(|| classify_statement(std::hint::black_box(&stmt), Granularity::Row))
    });

    // Steady-state tracked selects with the rewrite cache warm: the only
    // difference between the two is the memoised-verdict inspection, which
    // must stay invisible next to parse/splice/execute. This guards the
    // claim that enforcement costs nothing on the hot path.
    let proxied = |policy: EnforcementPolicy| {
        let db = Database::in_memory(resildb_engine::Flavor::Postgres);
        let native = NativeDriver::new(db.clone(), LinkProfile::local());
        prepare_database(&mut *native.connect().unwrap()).unwrap();
        let config = ProxyConfig::builder(resildb_engine::Flavor::Postgres)
            .enforcement(policy)
            .build();
        let driver = TrackingProxy::single_proxy(db, LinkProfile::local(), config);
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .unwrap();
        conn.execute("INSERT INTO t (id, v) VALUES (250, 1)")
            .unwrap();
        conn.execute("SELECT v FROM t WHERE id = 250").unwrap(); // warm cache
        conn
    };
    let mut off = proxied(EnforcementPolicy::Allow);
    c.bench_function("tracked_select_enforcement_off", |b| {
        b.iter(|| off.execute("SELECT v FROM t WHERE id = 250").unwrap())
    });
    let mut warn = proxied(EnforcementPolicy::Warn);
    c.bench_function("tracked_select_enforcement_warn", |b| {
        b.iter(|| warn.execute("SELECT v FROM t WHERE id = 250").unwrap())
    });
}

fn bench_telemetry(c: &mut Criterion) {
    use resildb_core::Telemetry;

    // The disabled-telemetry fast path every instrumented site pays when
    // no recorder is attached: one relaxed atomic load, no clock read.
    // Guards the "near-zero cost when disabled" claim, mirroring
    // failpoint_check_disarmed.
    let disabled = Telemetry::disabled();
    c.bench_function("telemetry_span_disabled", |b| {
        b.iter(|| disabled.owned_span(std::hint::black_box("engine.execute")))
    });
    let recording = Telemetry::recording();
    c.bench_function("telemetry_span_recording", |b| {
        b.iter(|| recording.owned_span(std::hint::black_box("engine.execute")))
    });

    // The flight recorder's disabled path must match the span guard's:
    // one relaxed atomic load, no tick allocation, no lock. Within noise
    // of telemetry_span_disabled.
    use resildb_core::EventKind;
    let flight_off = Telemetry::disabled();
    c.bench_function("flight_recorder_disabled", |b| {
        b.iter(|| {
            flight_off
                .flight()
                .emit(std::hint::black_box(7), 1, EventKind::TxnBegin)
        })
    });
    let flight_on = Telemetry::disabled();
    flight_on.flight().set_enabled(true);
    c.bench_function("flight_recorder_recording", |b| {
        b.iter(|| {
            flight_on
                .flight()
                .emit(std::hint::black_box(7), 1, EventKind::TxnBegin)
        })
    });

    // The cached-rewrite hot path with telemetry disabled must look
    // exactly like it did before the instrumentation landed — compare
    // against tracked_select_with_harvest across PRs. ResilientDb enables
    // recording by default, so flip it off first (the builder also turns
    // the flight recorder on; disable that too).
    let (rdb, mut conn) = tracked_db();
    rdb.telemetry().set_enabled(false);
    rdb.flight_recorder().set_enabled(false);
    conn.execute("SELECT v FROM t WHERE id = 250").unwrap(); // warm cache
    c.bench_function("tracked_select_telemetry_disabled", |b| {
        b.iter(|| conn.execute("SELECT v FROM t WHERE id = 250").unwrap())
    });
}

fn bench_sampler(c: &mut Criterion) {
    use resildb_core::{MetricsSnapshot, Sampler};

    // The disabled sampler path an embedder pays when the endpoint is off:
    // sample_with must return after one relaxed atomic load without ever
    // invoking the snapshot closure. Within noise of
    // telemetry_span_disabled / failpoint_check_disarmed.
    let disabled = Sampler::new(64);
    assert!(!disabled.is_enabled());
    c.bench_function("sampler_disabled", |b| {
        b.iter(|| {
            disabled.sample_with(|| {
                unreachable!("disabled sampler must not snapshot");
            })
        })
    });
    let enabled = Sampler::new(64);
    enabled.set_enabled(true);
    c.bench_function("sampler_enabled", |b| {
        b.iter(|| enabled.sample_with(MetricsSnapshot::default))
    });
}

fn bench_page_compaction(c: &mut Criterion) {
    use resildb_engine::{Page, RowId};
    c.bench_function("page_delete_with_migration", |b| {
        b.iter_batched(
            || {
                let mut p = Page::new();
                for i in 0..60 {
                    p.insert(RowId(i), &[0u8; 100]);
                }
                p
            },
            |mut p| {
                for i in 0..30 {
                    p.delete(RowId(i * 2));
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sql, bench_rewrite, bench_rewrite_cache, bench_engine, bench_tracked_path, bench_repair_analysis, bench_failpoints, bench_enforcement, bench_telemetry, bench_sampler, bench_page_compaction
);
criterion_main!(benches);
