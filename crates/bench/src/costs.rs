//! Calibrated cost models for the Figure 4 reproduction.
//!
//! Calibration targets the paper's testbed *relationships*, not its 2003
//! absolute numbers:
//!
//! * random page I/O (7200 RPM server disk) ≈ 8 ms — dominates when the
//!   footprint exceeds the buffer pool (the paper's `W = 10` case);
//! * a synchronous log force ≈ 0.4 ms (sequential placement, write-back
//!   caching);
//! * a 100 Mbps LAN round trip ≈ 200 µs + 80 ns/byte;
//! * per-row query processing ≈ 20 µs (the shared-CPU "local
//!   configuration" pays ~50 % more CPU per statement/row because client
//!   and server compete for one machine).
//!
//! The buffer-pool size below is chosen so the scaled `W = 1` database is
//! fully cache-resident while the scaled `W = 10` database misses heavily
//! — reproducing the footprint axis of Figure 4.

use resildb_core::{CostModel, Micros};

/// Buffer-pool capacity (pages) used by every Figure 4 cell.
pub const POOL_PAGES: usize = 112;

/// Cost model for the networked configuration (client and server on
/// separate machines joined by a 100 Mbps LAN).
pub fn networked() -> CostModel {
    CostModel {
        page_read: Micros::new(8_000),
        page_write: Micros::new(8_000),
        buffer_hit: Micros::new(2),
        log_force: Micros::new(400),
        log_append_per_byte_ns: 25,
        cpu_per_statement: Micros::new(60),
        cpu_per_row: Micros::new(35),
        network_rtt: Micros::new(200),
        network_per_byte_ns: 80,
    }
}

/// Cost model for the local configuration (client and server share one
/// machine: negligible network, but less CPU available to the server).
pub fn local() -> CostModel {
    CostModel {
        cpu_per_statement: Micros::new(90),
        cpu_per_row: Micros::new(50),
        network_rtt: Micros::new(15),
        network_per_byte_ns: 2,
        ..networked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_trades_network_for_cpu() {
        assert!(local().network_rtt < networked().network_rtt);
        assert!(local().cpu_per_row > networked().cpu_per_row);
        assert_eq!(local().page_read, networked().page_read);
    }
}
