//! Figure 4: run-time overhead of inter-transaction dependency tracking.
//!
//! Four panels — {read-intensive, read/write} × {large footprint `W=10`,
//! small footprint `W=1`} — each comparing baseline vs. tracking-proxy
//! throughput for the three flavors in the local and networked
//! configurations.

use std::collections::HashMap;

use resildb_core::{Flavor, LinkProfile};
use resildb_tpcc::{Mix, TpccConfig, TpccRunner};

use crate::json::Probe;
use crate::{costs, prepare, Setup};

/// Memo of baseline measurements keyed by everything that affects them:
/// flavor, link configuration, workload mix and footprint. The proxy-side
/// knobs (rewrite cache on/off) do not reach the baseline, so an ablation
/// pair shares one baseline measurement instead of paying for two
/// identical runs.
#[derive(Debug, Default)]
pub struct BaseMemo(HashMap<(Flavor, bool, bool, bool), (f64, f64)>);

impl BaseMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Baseline measurements performed so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// One bar pair of one panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// DBMS flavor.
    pub flavor: Flavor,
    /// Networked (true) or local configuration.
    pub networked: bool,
    /// Read-intensive (true) or read/write mix.
    pub read_intensive: bool,
    /// Large footprint `W=10` (true) or small `W=1`.
    pub large_footprint: bool,
    /// Baseline throughput (transactions per virtual second).
    pub base_tps: f64,
    /// Throughput with the tracking proxy.
    pub proxy_tps: f64,
    /// Baseline buffer-pool hit ratio (diagnostic for the footprint axis).
    pub base_hit_ratio: f64,
}

impl Cell {
    /// The tracking overhead in percent (the paper's y-axis).
    pub fn overhead_pct(&self) -> f64 {
        crate::pct(self.base_tps, self.proxy_tps)
    }

    /// Whether this is the paper's headline cell (networked,
    /// read-intensive, large footprint — "a typical OLTP environment").
    pub fn is_headline(&self) -> bool {
        self.networked && self.read_intensive && self.large_footprint
    }
}

/// Scale of the benchmark: `quick` shrinks the mixes for CI/test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small mixes (fast; used by tests).
    Quick,
    /// The paper's mix sizes (100 Stock-Level; 200/200/100 r/w).
    Full,
}

#[allow(clippy::too_many_arguments)]
fn throughput(
    flavor: Flavor,
    setup: Setup,
    networked: bool,
    read_intensive: bool,
    large_footprint: bool,
    scale: Scale,
    rewrite_cache: bool,
    probe: Option<&Probe>,
) -> (f64, f64) {
    let cost = if networked {
        costs::networked()
    } else {
        costs::local()
    };
    let link = if networked {
        LinkProfile::lan()
    } else {
        LinkProfile::local()
    };
    let w = if large_footprint { 10 } else { 1 };
    let config = TpccConfig::scaled(w);
    let sim = crate::sim_context(cost, costs::POOL_PAGES, probe.map(Probe::telemetry));
    // Paper-literal tracking set: trans_dep + annot only (column-level
    // provenance is this implementation's extension and would overstate
    // the paper's overhead), and a dependency record for *every* commit,
    // read-only transactions included (paper §3.2's unconditional
    // commit-time insert).
    let mut builder = resildb_core::ProxyConfig::builder(flavor)
        .record_provenance(false)
        .record_read_only_deps(true);
    if !rewrite_cache {
        builder = builder.rewrite_cache_capacity(0);
    }
    if let Some(probe) = probe {
        builder = builder.telemetry(probe.telemetry().clone());
    }
    let pc = builder.build();
    if let Some(probe) = probe {
        probe.note_proxy_config(pc.summary());
    }
    let mut bench = prepare(flavor, setup, &config, sim, link, Some(pc), 42).expect("prepare");

    let mix = match (read_intensive, scale) {
        (true, Scale::Full) => Mix::read_intensive(100),
        (true, Scale::Quick) => Mix::read_intensive(10),
        (false, Scale::Full) => Mix::read_write(100),
        (false, Scale::Quick) => Mix::read_write(4),
    };
    // No annotations in either setup: Figure 4 measures the tracking
    // mechanism itself, not the optional client-side transaction naming.
    let mut runner = TpccRunner::new(config, 7).without_annotations();
    let _ = bench.annotated;
    // Measure cache behaviour over the mix only (loading is append-heavy
    // and would dilute the footprint signal).
    let stats = bench.db.sim().stats();
    let (h0, m0) = (stats.page_hits.get(), stats.page_misses.get());
    let t0 = bench.db.sim().clock().now();
    let committed = mix.run(&mut runner, &mut *bench.conn).expect("mix run");
    let elapsed = (bench.db.sim().clock().now() - t0).as_secs_f64();
    let tps = committed as f64 / elapsed;
    let stats = bench.db.sim().stats();
    let hits = (stats.page_hits.get() - h0) as f64;
    let misses = (stats.page_misses.get() - m0) as f64;
    let ratio = if hits + misses == 0.0 {
        1.0
    } else {
        hits / (hits + misses)
    };
    // The tracked connection's metrics fold carries the proxy counters the
    // registry alone cannot see (rewrite cache, enforcement).
    if let (Some(probe), Setup::Tracked) = (probe, setup) {
        probe.capture(&*bench.conn);
    }
    (tps, ratio)
}

/// Runs one cell (baseline + proxy) with the proxy's rewrite cache on.
pub fn run_cell(
    flavor: Flavor,
    networked: bool,
    read_intensive: bool,
    large_footprint: bool,
    scale: Scale,
) -> Cell {
    run_cell_with(
        flavor,
        networked,
        read_intensive,
        large_footprint,
        scale,
        true,
    )
}

/// Runs one cell, optionally with the proxy's statement-template rewrite
/// cache disabled (`fig4 --no-rewrite-cache` — the ablation showing what
/// the cache buys back of the tracking overhead).
pub fn run_cell_with(
    flavor: Flavor,
    networked: bool,
    read_intensive: bool,
    large_footprint: bool,
    scale: Scale,
    rewrite_cache: bool,
) -> Cell {
    run_cell_probed(
        flavor,
        networked,
        read_intensive,
        large_footprint,
        scale,
        rewrite_cache,
        None,
    )
}

/// Runs one cell with an optional telemetry probe attached to the
/// simulation contexts and the proxy (`--json-out` instrumented runs).
#[allow(clippy::too_many_arguments)]
pub fn run_cell_probed(
    flavor: Flavor,
    networked: bool,
    read_intensive: bool,
    large_footprint: bool,
    scale: Scale,
    rewrite_cache: bool,
    probe: Option<&Probe>,
) -> Cell {
    run_cell_memo(
        flavor,
        networked,
        read_intensive,
        large_footprint,
        scale,
        rewrite_cache,
        probe,
        &mut BaseMemo::new(),
    )
}

/// Runs one cell, measuring the baseline at most once per configuration:
/// the memo keys on (flavor, link, mix, footprint), so repeat runs of the
/// same configuration — the rewrite-cache ablation pair in particular —
/// reuse the earlier baseline instead of re-measuring an identical run.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_memo(
    flavor: Flavor,
    networked: bool,
    read_intensive: bool,
    large_footprint: bool,
    scale: Scale,
    rewrite_cache: bool,
    probe: Option<&Probe>,
    memo: &mut BaseMemo,
) -> Cell {
    let key = (flavor, networked, read_intensive, large_footprint);
    let (base_tps, base_hit_ratio) = *memo.0.entry(key).or_insert_with(|| {
        throughput(
            flavor,
            Setup::Baseline,
            networked,
            read_intensive,
            large_footprint,
            scale,
            true, // proxy-only knob: the baseline never sees the cache
            probe,
        )
    });
    let (proxy_tps, _) = throughput(
        flavor,
        Setup::Tracked,
        networked,
        read_intensive,
        large_footprint,
        scale,
        rewrite_cache,
        probe,
    );
    Cell {
        flavor,
        networked,
        read_intensive,
        large_footprint,
        base_tps,
        proxy_tps,
        base_hit_ratio,
    }
}

/// Runs all 24 cells of Figure 4 (4 panels × 3 flavors × 2 links).
pub fn run(scale: Scale) -> Vec<Cell> {
    run_with(scale, true)
}

/// Runs all 24 cells, optionally with the rewrite cache disabled.
pub fn run_with(scale: Scale, rewrite_cache: bool) -> Vec<Cell> {
    run_probed(scale, rewrite_cache, None)
}

/// Runs all 24 cells with an optional telemetry probe shared across them.
/// One [`BaseMemo`] spans the run, so each configuration's baseline is
/// measured exactly once even if cells repeat.
pub fn run_probed(scale: Scale, rewrite_cache: bool, probe: Option<&Probe>) -> Vec<Cell> {
    let mut out = Vec::with_capacity(24);
    let mut memo = BaseMemo::new();
    for read_intensive in [true, false] {
        for large_footprint in [true, false] {
            for flavor in Flavor::ALL {
                for networked in [false, true] {
                    out.push(run_cell_memo(
                        flavor,
                        networked,
                        read_intensive,
                        large_footprint,
                        scale,
                        rewrite_cache,
                        probe,
                        &mut memo,
                    ));
                }
            }
        }
    }
    out
}

/// Renders the four panels the way the paper lays them out.
pub fn render(cells: &[Cell]) -> String {
    let mut out = String::new();
    for (ri, footprint_large, title) in [
        (
            true,
            true,
            "Read intensive transactions, W=10 (large footprint)",
        ),
        (
            false,
            true,
            "Read/write intensive transactions, W=10 (large footprint)",
        ),
        (
            true,
            false,
            "Read intensive transactions, W=1 (small footprint)",
        ),
        (
            false,
            false,
            "Read/write intensive transactions, W=1 (small footprint)",
        ),
    ] {
        out.push_str(&format!("\n=== {title} ===\n"));
        out.push_str(&format!(
            "{:<12} {:>10} {:>14} {:>14} {:>10}\n",
            "DBMS", "config", "base tps", "tracked tps", "overhead"
        ));
        for c in cells
            .iter()
            .filter(|c| c.read_intensive == ri && c.large_footprint == footprint_large)
        {
            let marker = if c.is_headline() {
                "  <- headline (paper: 6-13%)"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<12} {:>10} {:>14.2} {:>14.2} {:>9.1}%{}\n",
                c.flavor.name(),
                if c.networked { "network" } else { "local" },
                c.base_tps,
                c.proxy_tps,
                c.overhead_pct(),
                marker,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cell_shows_positive_overhead() {
        let cell = run_cell(Flavor::Postgres, true, true, true, Scale::Quick);
        assert!(cell.base_tps > 0.0);
        assert!(cell.proxy_tps > 0.0);
        assert!(
            cell.proxy_tps < cell.base_tps,
            "tracking must cost something: base {} vs proxy {}",
            cell.base_tps,
            cell.proxy_tps
        );
        assert!(cell.is_headline());
    }

    #[test]
    fn footprint_axis_drives_hit_ratio() {
        let small = run_cell(Flavor::Oracle, true, true, false, Scale::Quick);
        let large = run_cell(Flavor::Oracle, true, true, true, Scale::Quick);
        assert!(
            small.base_hit_ratio > large.base_hit_ratio,
            "W=1 ({:.2}) must cache better than W=10 ({:.2})",
            small.base_hit_ratio,
            large.base_hit_ratio
        );
    }

    #[test]
    fn rewrite_cache_reduces_tracking_overhead() {
        let mut memo = BaseMemo::new();
        let on = run_cell_memo(
            Flavor::Postgres,
            false,
            true,
            false,
            Scale::Quick,
            true,
            None,
            &mut memo,
        );
        let off = run_cell_memo(
            Flavor::Postgres,
            false,
            true,
            false,
            Scale::Quick,
            false,
            None,
            &mut memo,
        );
        assert_eq!(
            memo.len(),
            1,
            "one configuration means exactly one baseline measurement"
        );
        assert_eq!(
            on.base_tps, off.base_tps,
            "the baseline has no proxy and must not see the cache knob"
        );
        assert!(
            on.proxy_tps > off.proxy_tps,
            "cached rewrites must beat cold rewrites: {} vs {}",
            on.proxy_tps,
            off.proxy_tps
        );
    }

    #[test]
    fn render_contains_all_panels() {
        let cells = vec![run_cell(Flavor::Sybase, false, true, true, Scale::Quick)];
        let text = render(&cells);
        assert!(text.contains("Read intensive transactions, W=10"));
        assert!(text.contains("Sybase"));
    }
}
