//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5) on the simulated substrate.
//!
//! | Paper artefact | Runner | Binary |
//! |---|---|---|
//! | Table 2 (database parameters) | [`table2::report`] | `table2` |
//! | Figure 3 (dependency graph) | [`fig3::render`] | `fig3` |
//! | Figure 4 (tracking overhead) | [`fig4::run`] | `fig4` |
//! | Figure 5 (repair accuracy vs `T_detect`) | [`fig5::run`] | `fig5` |
//! | §6 optimisation discussion | [`ablation::run`] | `ablation` |
//! | MTTR motivation (§1) | [`mttr::run`] | `mttr` |
//! | §6 per-attribute tracking trade-off | [`granularity`] | `granularity` |
//!
//! Absolute throughput numbers are virtual-time artifacts of the cost
//! model in [`costs`]; the *relationships* (who wins, by what factor,
//! where the crossovers sit) are the reproduction target.

#![forbid(unsafe_code)]
// A measurement harness, not a library: a failed setup step has no
// meaningful recovery, so panicking with context is the right behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

pub mod ablation;
pub mod costs;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod granularity;
pub mod json;
pub mod mttr;
pub mod table2;
pub mod threads;

use resildb_core::{
    prepare_database, Connection, CostModel, Database, Driver, Flavor, LinkProfile, NativeDriver,
    ProxyConfig, SimContext, Telemetry, TrackingProxy, WireError,
};
use resildb_tpcc::{Loader, TpccConfig};

/// How a measured configuration connects to the DBMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setup {
    /// Plain driver, no intrusion resilience (the baseline).
    Baseline,
    /// Single-proxy tracking (paper Figure 1 — the architecture used in
    /// the paper's §5 measurements).
    Tracked,
}

/// A loaded TPC-C database plus a connection per [`Setup`].
pub struct Bench {
    /// The database under test.
    pub db: Database,
    /// The measured connection.
    pub conn: Box<dyn Connection>,
    /// Whether annotations are permitted on `conn`.
    pub annotated: bool,
}

/// Builds and loads a TPC-C database for one benchmark cell.
///
/// # Errors
///
/// Load failures.
pub fn prepare(
    flavor: Flavor,
    setup: Setup,
    config: &TpccConfig,
    sim: SimContext,
    link: LinkProfile,
    proxy_config: Option<ProxyConfig>,
    seed: u64,
) -> Result<Bench, WireError> {
    let db = Database::new("bench", flavor, sim);
    let conn: Box<dyn Connection> = match setup {
        Setup::Baseline => NativeDriver::new(db.clone(), link).connect()?,
        Setup::Tracked => {
            let native = NativeDriver::new(db.clone(), LinkProfile::local());
            prepare_database(&mut *native.connect()?)?;
            let pc = proxy_config.unwrap_or_else(|| ProxyConfig::new(flavor));
            TrackingProxy::single_proxy(db.clone(), link, pc).connect()?
        }
    };
    let mut bench = Bench {
        db,
        conn,
        annotated: setup == Setup::Tracked,
    };
    Loader::new(config.clone(), seed).load(&mut *bench.conn)?;
    Ok(bench)
}

/// Builds a simulation context, recording into `telemetry` when a probe
/// is attached (`--json-out` instrumented runs).
pub fn sim_context(
    cost: CostModel,
    pool_pages: usize,
    telemetry: Option<&Telemetry>,
) -> SimContext {
    match telemetry {
        Some(tel) => SimContext::with_telemetry(cost, pool_pages, tel.clone()),
        None => SimContext::new(cost, pool_pages),
    }
}

/// Formats an overhead percentage for report tables.
pub fn pct(base: f64, with: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        100.0 * (base - with) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_computes_throughput_penalty() {
        assert_eq!(pct(100.0, 90.0), 10.0);
        assert_eq!(pct(0.0, 50.0), 0.0);
    }

    #[test]
    fn prepare_builds_both_setups() {
        let cfg = TpccConfig::tiny();
        for setup in [Setup::Baseline, Setup::Tracked] {
            let b = prepare(
                Flavor::Postgres,
                setup,
                &cfg,
                SimContext::free(),
                LinkProfile::local(),
                None,
                1,
            )
            .unwrap();
            assert_eq!(b.db.row_count("warehouse").unwrap(), 1);
            assert_eq!(b.annotated, setup == Setup::Tracked);
        }
    }
}
