//! Row- vs. column-level tracking: the cost/accuracy trade-off the paper's
//! §6 leaves open ("keeping a tr_id attribute per attribute ... is required
//! to minimize false sharing ... and how to implement it efficiently
//! deserves more investigation").
//!
//! Two measurements:
//! * **cost** — read/write-mix throughput under row-level tracking,
//!   column-level tracking, and no tracking;
//! * **accuracy** — undo-set size for the Figure 5 attack with *no DBA
//!   rules*, comparing row-level, row-level + the `w_ytd` rule, and
//!   column-level tracking.

use resildb_core::{Flavor, LinkProfile, ProxyConfig, SimContext, TrackingGranularity, Value};
use resildb_tpcc::{Attack, AttackKind, Mix, TpccConfig, TpccRunner, ATTACK_LABEL};

use crate::{costs, prepare, Setup};

/// Result of the cost measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Configuration name.
    pub name: &'static str,
    /// Transactions per virtual second.
    pub tps: f64,
    /// Penalty vs. baseline, percent.
    pub overhead_pct: f64,
}

/// Result of the accuracy measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Configuration name.
    pub name: &'static str,
    /// Undo-set size for the standard attack scenario.
    pub rolled_back: usize,
    /// Percentage of post-attack transactions saved.
    pub saved_pct: f64,
}

fn run_cost(_name: &'static str, setup: Setup, pc: Option<ProxyConfig>, quick: bool) -> f64 {
    let config = TpccConfig::scaled(10);
    let sim = SimContext::new(costs::networked(), costs::POOL_PAGES);
    let mut bench = prepare(
        Flavor::Postgres,
        setup,
        &config,
        sim,
        LinkProfile::lan(),
        pc,
        42,
    )
    .expect("prepare");
    let mix = if quick {
        Mix::read_write(4)
    } else {
        Mix::read_write(40)
    };
    let mut runner = TpccRunner::new(config, 7).without_annotations();
    let t0 = bench.db.sim().clock().now();
    let committed = mix.run(&mut runner, &mut *bench.conn).expect("mix");
    let elapsed = (bench.db.sim().clock().now() - t0).as_secs_f64();
    committed as f64 / elapsed
}

/// Measures throughput for baseline / row / column tracking.
pub fn run_cost_comparison(quick: bool) -> Vec<CostRow> {
    let base = run_cost("baseline", Setup::Baseline, None, quick);
    let pc_row = ProxyConfig::builder(Flavor::Postgres)
        .record_provenance(false)
        .build();
    let pc_col = ProxyConfig::builder(Flavor::Postgres)
        .record_provenance(false)
        .granularity(TrackingGranularity::Column)
        .build();
    let row = run_cost("row", Setup::Tracked, Some(pc_row), quick);
    let col = run_cost("column", Setup::Tracked, Some(pc_col), quick);
    vec![
        CostRow {
            name: "no tracking",
            tps: base,
            overhead_pct: 0.0,
        },
        CostRow {
            name: "row-level tracking (paper)",
            tps: row,
            overhead_pct: crate::pct(base, row),
        },
        CostRow {
            name: "column-level tracking (§6)",
            tps: col,
            overhead_pct: crate::pct(base, col),
        },
    ]
}

fn run_accuracy(granularity: TrackingGranularity, t_detect: usize) -> (usize, usize, f64, f64) {
    let mut config = TpccConfig::scaled(2);
    config.items = 2_000;
    let pc = ProxyConfig::builder(Flavor::Postgres)
        .record_read_only_deps(true)
        .granularity(granularity)
        .build();
    let mut bench = prepare(
        Flavor::Postgres,
        Setup::Tracked,
        &config,
        SimContext::free(),
        LinkProfile::local(),
        Some(pc),
        77,
    )
    .expect("prepare");
    let mut runner = TpccRunner::new(config, 9);
    Mix::standard(20, 1)
        .run(&mut runner, &mut *bench.conn)
        .expect("warmup");
    Attack {
        kind: AttackKind::ForgedPayment,
        w_id: 1,
        d_id: 1,
        target_id: 1,
    }
    .execute(&mut *bench.conn)
    .expect("attack");
    Mix::standard(t_detect, 2)
        .run(&mut runner, &mut *bench.conn)
        .expect("load");

    let analysis = resildb_core::RepairController::new(bench.db.clone())
        .analyze()
        .expect("analyze");
    let attack_id = {
        let mut s = bench.db.session();
        match s
            .query(&format!(
                "SELECT tr_id FROM annot WHERE descr = '{ATTACK_LABEL}'"
            ))
            .expect("annot")
            .rows[0][0]
        {
            Value::Int(v) => v,
            ref other => panic!("{other:?}"),
        }
    };
    let after: Vec<i64> = analysis
        .tracked_transactions()
        .into_iter()
        .filter(|&t| t > attack_id)
        .collect();
    let no_rules = analysis.undo_set(&[attack_id], &[]);
    let with_rules = analysis.undo_set(&[attack_id], &crate::fig5::ytd_rules());
    let saved = |undo: &std::collections::BTreeSet<i64>| {
        if after.is_empty() {
            100.0
        } else {
            let polluted = after.iter().filter(|t| undo.contains(t)).count();
            100.0 * (after.len() - polluted) as f64 / after.len() as f64
        }
    };
    (
        no_rules.len(),
        with_rules.len(),
        saved(&no_rules),
        saved(&with_rules),
    )
}

/// Measures accuracy for the three configurations.
pub fn run_accuracy_comparison(t_detect: usize) -> Vec<AccuracyRow> {
    let (row_plain, row_rules, row_plain_saved, row_rules_saved) =
        run_accuracy(TrackingGranularity::Row, t_detect);
    let (col_plain, _, col_plain_saved, _) = run_accuracy(TrackingGranularity::Column, t_detect);
    vec![
        AccuracyRow {
            name: "row-level, no rules",
            rolled_back: row_plain,
            saved_pct: row_plain_saved,
        },
        AccuracyRow {
            name: "row-level + w_ytd rule (paper §5.3)",
            rolled_back: row_rules,
            saved_pct: row_rules_saved,
        },
        AccuracyRow {
            name: "column-level, no rules (§6)",
            rolled_back: col_plain,
            saved_pct: col_plain_saved,
        },
    ]
}

/// Renders both tables.
pub fn render(cost: &[CostRow], accuracy: &[AccuracyRow], t_detect: usize) -> String {
    let mut out = String::from(
        "Tracking granularity: the §6 trade-off (cost on r/w mix W=10; accuracy on the \
         Figure 5 attack)\n\nCost:\n",
    );
    out.push_str(&format!(
        "{:<38} {:>10} {:>10}\n",
        "configuration", "tps", "overhead"
    ));
    for r in cost {
        out.push_str(&format!(
            "{:<38} {:>10.2} {:>9.1}%\n",
            r.name, r.tps, r.overhead_pct
        ));
    }
    out.push_str(&format!("\nAccuracy (T_detect = {t_detect}):\n"));
    out.push_str(&format!(
        "{:<38} {:>12} {:>10}\n",
        "configuration", "rolled back", "saved"
    ));
    for r in accuracy {
        out.push_str(&format!(
            "{:<38} {:>12} {:>9.1}%\n",
            r.name, r.rolled_back, r.saved_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_tracking_costs_more_than_row_tracking() {
        let rows = run_cost_comparison(true);
        assert_eq!(rows.len(), 3);
        assert!(rows[1].tps <= rows[0].tps);
        assert!(
            rows[2].tps <= rows[1].tps,
            "column ({:.2}) should not beat row ({:.2})",
            rows[2].tps,
            rows[1].tps
        );
    }

    #[test]
    fn column_tracking_is_at_least_as_accurate_as_the_rule() {
        let rows = run_accuracy_comparison(40);
        let row_plain = &rows[0];
        let col = &rows[2];
        assert!(
            col.rolled_back <= row_plain.rolled_back,
            "column-level must not be worse than unruled row-level: {rows:?}"
        );
    }
}
