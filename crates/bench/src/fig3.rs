//! Figure 3: GraphViz visualisation of a sample inter-transaction
//! dependency graph from a small TPC-C run, with paper-style node labels
//! (`Order_w_d_c_seq`, `Payment_...`, `Deliv_...`).

use resildb_core::{CostModel, Flavor, LinkProfile, ProxyConfig};
use resildb_tpcc::{Mix, TpccConfig, TpccRunner};

use crate::json::Probe;
use crate::{prepare, Setup};

/// Runs a small annotated TPC-C mix and renders the dependency graph as
/// DOT, highlighting the damage closure of the earliest New-Order
/// transaction.
pub fn render() -> String {
    render_probed(None)
}

/// Like [`render`], with an optional telemetry probe attached (the
/// analysis pass populates the `repair.*` phase histograms).
pub fn render_probed(probe: Option<&Probe>) -> String {
    let config = TpccConfig::tiny();
    let mut builder = ProxyConfig::builder(Flavor::Postgres).record_read_only_deps(true);
    if let Some(probe) = probe {
        builder = builder.telemetry(probe.telemetry().clone());
    }
    let pc = builder.build();
    if let Some(probe) = probe {
        probe.note_proxy_config(pc.summary());
    }
    let mut bench = prepare(
        Flavor::Postgres,
        Setup::Tracked,
        &config,
        crate::sim_context(CostModel::free(), usize::MAX, probe.map(Probe::telemetry)),
        LinkProfile::local(),
        Some(pc),
        3,
    )
    .expect("prepare");
    let mut runner = TpccRunner::new(config, 12);
    Mix::standard(14, 4)
        .run(&mut runner, &mut *bench.conn)
        .expect("mix");

    let analysis = resildb_core::RepairController::new(bench.db.clone())
        .analyze()
        .expect("analyze");
    // Highlight the closure of the first Order transaction, as a stand-in
    // for the paper's example graph.
    let mut s = bench.db.session();
    let first_order = s
        .query("SELECT tr_id FROM annot WHERE descr LIKE 'Order_%' ORDER BY tr_id LIMIT 1")
        .expect("annot")
        .rows
        .first()
        .and_then(|row| match row[0] {
            resildb_core::Value::Int(v) => Some(v),
            _ => None,
        });
    let highlight = match first_order {
        Some(id) => analysis.undo_set(&[id], &[]),
        None => Default::default(),
    };
    if let Some(probe) = probe {
        probe.capture(&*bench.conn);
    }
    analysis.to_dot(&highlight)
}

#[cfg(test)]
mod tests {
    #[test]
    fn dot_has_paper_style_labels_and_edges() {
        let dot = super::render();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("Order_") || dot.contains("Payment_"), "{dot}");
        assert!(dot.contains("->"), "graph should have edges:\n{dot}");
    }
}
