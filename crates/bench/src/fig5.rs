//! Figure 5: repair accuracy — number of rolled-back transactions and
//! percentage of saved transactions versus the detection latency
//! `T_detect` (expressed, as in the paper, in transactions committed since
//! the intrusion), with and without false-dependency discarding.

use resildb_core::{CostModel, FalseDepRule, Flavor, LinkProfile, ProxyConfig};
use resildb_tpcc::{Attack, AttackKind, Mix, TpccConfig, TpccRunner, ATTACK_LABEL};

use crate::json::Probe;
use crate::{prepare, Setup};

/// One point of the Figure 5 curves (both variants).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Warehouse factor.
    pub w: u32,
    /// Transactions committed between intrusion and detection.
    pub t_detect: usize,
    /// Undo-set size when tracking all dependencies.
    pub rolled_back_all: usize,
    /// Percentage of post-intrusion transactions saved (all deps).
    pub saved_pct_all: f64,
    /// Undo-set size after discarding false (ytd-mediated) dependencies.
    pub rolled_back_filtered: usize,
    /// Percentage saved after discarding false dependencies.
    pub saved_pct_filtered: f64,
}

/// The DBA rule of the paper's §5.3 example: `warehouse.w_ytd` is a
/// running total recomputable from the orders table, so dependencies that
/// exist only through it are discarded. (The analogous `district.d_ytd`
/// rule would prune further — the paper's example stops at the warehouse
/// table, which leaves the district-row chains in place and is what keeps
/// the filtered curve growing with `T_detect`.)
pub fn ytd_rules() -> Vec<FalseDepRule> {
    vec![FalseDepRule::IgnoreDerivedColumns {
        table: "warehouse".into(),
        columns: vec!["w_ytd".into()],
    }]
}

/// The TPC-C sizing used for the accuracy experiments: more districts and
/// items than the throughput preset, diluting per-row collision rates the
/// way the paper's full-size database does (its 30 districts × 100 000
/// items make accidental row sharing rare outside the warehouse row).
pub fn fig5_config(w: u32) -> TpccConfig {
    let mut config = TpccConfig::scaled(w);
    config.districts_per_warehouse = 6;
    config.items = 8_000;
    config
}

/// Runs one (W, T_detect) experiment and measures both variants.
pub fn run_point(w: u32, t_detect: usize, seed: u64) -> Point {
    run_point_probed(w, t_detect, seed, None)
}

/// Like [`run_point`], with an optional telemetry probe attached.
pub fn run_point_probed(w: u32, t_detect: usize, seed: u64, probe: Option<&Probe>) -> Point {
    let config = fig5_config(w);
    // Costs are irrelevant here; track read-only transactions too so the
    // saved-percentage accounts for every transaction, as in the paper.
    let mut builder = ProxyConfig::builder(Flavor::Postgres).record_read_only_deps(true);
    if let Some(probe) = probe {
        builder = builder.telemetry(probe.telemetry().clone());
    }
    let pc = builder.build();
    if let Some(probe) = probe {
        probe.note_proxy_config(pc.summary());
    }
    let mut bench = prepare(
        Flavor::Postgres,
        Setup::Tracked,
        &config,
        crate::sim_context(CostModel::free(), usize::MAX, probe.map(Probe::telemetry)),
        LinkProfile::local(),
        Some(pc),
        seed,
    )
    .expect("prepare");

    let mut runner = TpccRunner::new(config, seed.wrapping_mul(31).wrapping_add(7));
    // Pre-intrusion activity.
    Mix::standard(25, seed)
        .run(&mut runner, &mut *bench.conn)
        .expect("warmup");

    Attack {
        kind: AttackKind::ForgedPayment,
        w_id: 1,
        d_id: 1,
        target_id: 1,
    }
    .execute(&mut *bench.conn)
    .expect("attack");

    // T_detect further transactions before detection.
    Mix::standard(t_detect, seed.wrapping_add(1))
        .run(&mut runner, &mut *bench.conn)
        .expect("post-attack load");

    let tool = resildb_core::RepairController::new(bench.db.clone());
    let analysis = tool.analyze().expect("analyze");
    let attack_id = {
        let mut s = bench.db.session();
        let r = s
            .query(&format!(
                "SELECT tr_id FROM annot WHERE descr = '{ATTACK_LABEL}'"
            ))
            .expect("annot query");
        match r.rows.first().map(|row| row[0].clone()) {
            Some(resildb_core::Value::Int(v)) => v,
            other => panic!("attack not tracked: {other:?}"),
        }
    };

    let after_attack: std::collections::BTreeSet<i64> = analysis
        .tracked_transactions()
        .into_iter()
        .filter(|&t| t > attack_id)
        .collect();

    let measure = |rules: &[FalseDepRule]| {
        let undo = analysis.undo_set(&[attack_id], rules);
        let rolled_back = undo.len();
        let polluted_after = after_attack.intersection(&undo).count();
        let saved = if after_attack.is_empty() {
            100.0
        } else {
            100.0 * (after_attack.len() - polluted_after) as f64 / after_attack.len() as f64
        };
        (rolled_back, saved)
    };

    let (rolled_back_all, saved_pct_all) = measure(&[]);
    let (rolled_back_filtered, saved_pct_filtered) = measure(&ytd_rules());
    if let Some(probe) = probe {
        probe.capture(&*bench.conn);
    }

    Point {
        w,
        t_detect,
        rolled_back_all,
        saved_pct_all,
        rolled_back_filtered,
        saved_pct_filtered,
    }
}

/// Runs the full grid.
pub fn run(ws: &[u32], t_detects: &[usize]) -> Vec<Point> {
    run_probed(ws, t_detects, None)
}

/// Runs the full grid with an optional telemetry probe shared across it.
pub fn run_probed(ws: &[u32], t_detects: &[usize], probe: Option<&Probe>) -> Vec<Point> {
    let mut out = Vec::new();
    for &w in ws {
        for &t in t_detects {
            out.push(run_point_probed(w, t, 1000 + u64::from(w), probe));
        }
    }
    out
}

/// Renders the two columns of Figure 5 per warehouse factor.
pub fn render(points: &[Point]) -> String {
    let mut out = String::new();
    let mut ws: Vec<u32> = points.iter().map(|p| p.w).collect();
    ws.sort_unstable();
    ws.dedup();
    for w in ws {
        out.push_str(&format!("\n=== W = {w} ===\n"));
        out.push_str(&format!(
            "{:>9} {:>18} {:>20} {:>16} {:>18}\n",
            "T_detect",
            "rolled back (all)",
            "rolled back (no-false)",
            "saved % (all)",
            "saved % (no-false)"
        ));
        for p in points.iter().filter(|p| p.w == w) {
            out.push_str(&format!(
                "{:>9} {:>18} {:>20} {:>15.1}% {:>17.1}%\n",
                p.t_detect,
                p.rolled_back_all,
                p.rolled_back_filtered,
                p.saved_pct_all,
                p.saved_pct_filtered,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtering_never_increases_rollbacks() {
        let p = run_point(2, 30, 5);
        assert!(p.rolled_back_filtered <= p.rolled_back_all, "{p:?}");
        assert!(p.saved_pct_filtered >= p.saved_pct_all, "{p:?}");
        assert!(p.rolled_back_all >= 1, "attack itself is rolled back");
    }

    #[test]
    fn rollbacks_grow_with_t_detect() {
        let short = run_point(2, 10, 5);
        let long = run_point(2, 60, 5);
        assert!(
            long.rolled_back_all >= short.rolled_back_all,
            "short {short:?} vs long {long:?}"
        );
    }
}
