//! Table 2: test database parameters, verified against a loaded instance.

use resildb_core::{Flavor, LinkProfile, SimContext};
use resildb_tpcc::{TpccConfig, TPCC_TABLES};

use crate::{prepare, Setup};

/// Renders the paper's Table 2 next to this reproduction's presets, then
/// loads the scaled preset and prints the realized cardinalities.
pub fn report() -> String {
    let paper = TpccConfig::paper();
    let scaled = TpccConfig::scaled(10);
    let mut out = String::from("Table 2: test database parameters\n\n");
    out.push_str(&format!(
        "{:<28} {:>12} {:>16}\n",
        "parameter", "paper", "scaled preset"
    ));
    for (name, p, s) in [
        ("Number of warehouses", paper.warehouses, scaled.warehouses),
        (
            "Districts per warehouse",
            paper.districts_per_warehouse,
            scaled.districts_per_warehouse,
        ),
        (
            "Clients per district",
            paper.customers_per_district,
            scaled.customers_per_district,
        ),
        ("Items per warehouse", paper.items, scaled.items),
        (
            "Orders per district",
            paper.orders_per_district,
            scaled.orders_per_district,
        ),
    ] {
        out.push_str(&format!("{name:<28} {p:>12} {s:>16}\n"));
    }

    let bench = prepare(
        Flavor::Postgres,
        Setup::Baseline,
        &scaled,
        SimContext::free(),
        LinkProfile::local(),
        None,
        42,
    )
    .expect("load");
    out.push_str("\nLoaded cardinalities (scaled preset, W=10):\n");
    let mut total_pages = 0;
    for t in TPCC_TABLES {
        let handle = bench.db.table(t).expect("table");
        let guard = handle.read();
        total_pages += guard.page_count();
        out.push_str(&format!(
            "{:<12} {:>8} rows {:>6} pages\n",
            t,
            guard.row_count(),
            guard.page_count()
        ));
    }
    out.push_str(&format!(
        "\nTotal data pages: {total_pages} (Figure 4 buffer pool: {} pages)\n",
        crate::costs::POOL_PAGES
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_lists_every_table_and_paper_numbers() {
        let text = super::report();
        assert!(text.contains("100000")); // paper items
        assert!(text.contains("5000")); // paper clients/orders
        for t in resildb_tpcc::TPCC_TABLES {
            assert!(text.contains(t), "missing {t}:\n{text}");
        }
    }

    #[test]
    fn scaled_w10_exceeds_the_benchmark_pool() {
        // The footprint axis only works if W=10 does not fit in the pool.
        let text = super::report();
        let pages: u64 = text
            .lines()
            .find(|l| l.starts_with("Total data pages:"))
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|n| n.parse().ok())
            .expect("total pages line");
        assert!(
            pages as usize > super::super::costs::POOL_PAGES,
            "W=10 data ({pages} pages) must exceed the pool"
        );
    }
}
