//! Mean-time-to-repair comparison — the paper's motivating claim made
//! measurable: selective undo repairs a compromised database far faster
//! than the conventional procedure of restoring a backup and replaying
//! every legitimate transaction since (§1: "a time-consuming, error-prone
//! and labor-intensive process", even ignoring the human analysis time).
//!
//! Both alternatives run on the same virtual-time cost model:
//!
//! * **selective repair** — dependency analysis + the backward
//!   compensation sweep, on the live database;
//! * **restore & replay** — reload the last backup (the initial
//!   population) and re-run every legitimate transaction committed since,
//!   which is what a DBA without dependency tracking must do.

use resildb_core::{Driver as _, Flavor, LinkProfile, Micros, ProxyConfig, SimContext};
use resildb_tpcc::{Attack, AttackKind, Loader, Mix, TpccConfig, TpccRunner, ATTACK_LABEL};

use crate::json::Probe;
use crate::{costs, prepare, Setup};

/// One measured detection-latency point.
#[derive(Debug, Clone, PartialEq)]
pub struct MttrPoint {
    /// Transactions committed between intrusion and detection.
    pub t_detect: usize,
    /// Virtual time of dependency analysis + selective undo.
    pub selective_repair: Micros,
    /// Number of compensating statements the sweep executed.
    pub compensating_statements: usize,
    /// Virtual time of restoring the backup and replaying survivors.
    pub restore_and_replay: Micros,
}

impl MttrPoint {
    /// How many times faster selective repair is.
    pub fn speedup(&self) -> f64 {
        self.restore_and_replay.as_secs_f64() / self.selective_repair.as_secs_f64().max(1e-9)
    }
}

fn workload(runner: &mut TpccRunner, conn: &mut dyn resildb_core::Connection, t_detect: usize) {
    Mix::standard(25, 11).run(runner, conn).expect("warmup");
    Attack {
        kind: AttackKind::ForgedPayment,
        w_id: 1,
        d_id: 1,
        target_id: 1,
    }
    .execute(conn)
    .expect("attack");
    Mix::standard(t_detect, 12)
        .run(runner, conn)
        .expect("post-attack");
}

/// Runs one point.
pub fn run_point(t_detect: usize) -> MttrPoint {
    run_point_probed(t_detect, None)
}

/// Like [`run_point`], with an optional telemetry probe attached to the
/// tracked (world A) run — the repair sweep populates the `repair.*`
/// phase histograms.
pub fn run_point_probed(t_detect: usize, probe: Option<&Probe>) -> MttrPoint {
    let config = TpccConfig::scaled(2);

    // --- world A: tracked database, attacked, selectively repaired -----
    let sim = crate::sim_context(
        costs::networked(),
        costs::POOL_PAGES,
        probe.map(Probe::telemetry),
    );
    let mut builder = ProxyConfig::builder(Flavor::Postgres).record_read_only_deps(true);
    if let Some(probe) = probe {
        builder = builder.telemetry(probe.telemetry().clone());
    }
    let pc = builder.build();
    if let Some(probe) = probe {
        probe.note_proxy_config(pc.summary());
    }
    let mut bench = prepare(
        Flavor::Postgres,
        Setup::Tracked,
        &config,
        sim,
        LinkProfile::lan(),
        Some(pc),
        5,
    )
    .expect("prepare");
    let mut runner = TpccRunner::new(config.clone(), 9);
    workload(&mut runner, &mut *bench.conn, t_detect);

    let tool = resildb_core::RepairTool::new(bench.db.clone());
    let t0 = bench.db.sim().clock().now();
    let analysis = tool.analyze().expect("analyze");
    let attack = {
        let mut s = bench.db.session();
        match s
            .query(&format!(
                "SELECT tr_id FROM annot WHERE descr = '{ATTACK_LABEL}'"
            ))
            .expect("annot")
            .rows
            .first()
            .map(|r| r[0].clone())
        {
            Some(resildb_core::Value::Int(v)) => v,
            other => panic!("attack missing: {other:?}"),
        }
    };
    let undo = analysis.undo_set(&[attack], &crate::fig5::ytd_rules());
    let report = tool.repair_with_undo_set(&analysis, &undo).expect("repair");
    let selective_repair = bench.db.sim().clock().now() - t0;
    if let Some(probe) = probe {
        probe.capture(&*bench.conn);
    }

    // --- world B: untracked database; restore backup + replay ----------
    // The DBA reloads the backup (initial population) and re-runs every
    // legitimate transaction (everything except the attack) by hand.
    let sim = SimContext::new(costs::networked(), costs::POOL_PAGES);
    let db = resildb_core::Database::new("restore", Flavor::Postgres, sim);
    let conn = &mut *resildb_core::NativeDriver::new(db.clone(), LinkProfile::lan())
        .connect()
        .expect("connect");
    let t0 = db.sim().clock().now();
    Loader::new(config.clone(), 5)
        .load(conn)
        .expect("restore backup");
    let mut replay = TpccRunner::new(config, 9).without_annotations();
    Mix::standard(25, 11)
        .run(&mut replay, conn)
        .expect("replay warmup");
    Mix::standard(t_detect, 12)
        .run(&mut replay, conn)
        .expect("replay rest");
    let restore_and_replay = db.sim().clock().now() - t0;

    MttrPoint {
        t_detect,
        selective_repair,
        compensating_statements: report.outcome.statements.len(),
        restore_and_replay,
    }
}

/// Runs the sweep.
pub fn run(t_detects: &[usize]) -> Vec<MttrPoint> {
    run_probed(t_detects, None)
}

/// Runs the sweep with an optional telemetry probe shared across points.
pub fn run_probed(t_detects: &[usize], probe: Option<&Probe>) -> Vec<MttrPoint> {
    t_detects
        .iter()
        .map(|&t| run_point_probed(t, probe))
        .collect()
}

/// Renders the comparison table.
pub fn render(points: &[MttrPoint]) -> String {
    let mut out = String::from(
        "MTTR: selective repair vs. restore-backup-and-replay (W=2, forged payment)\n\n",
    );
    out.push_str(&format!(
        "{:>9} {:>18} {:>14} {:>20} {:>9}\n",
        "T_detect", "selective repair", "comp. stmts", "restore and replay", "speedup"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>9} {:>18} {:>14} {:>20} {:>8.1}x\n",
            p.t_detect,
            p.selective_repair.to_string(),
            p.compensating_statements,
            p.restore_and_replay.to_string(),
            p.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_repair_beats_restore_and_replay() {
        let p = run_point(30);
        assert!(
            p.speedup() > 1.0,
            "selective {} vs restore {}",
            p.selective_repair,
            p.restore_and_replay
        );
        assert!(p.compensating_statements > 0);
    }
}
