//! Mean-time-to-repair comparison — the paper's motivating claim made
//! measurable: selective undo repairs a compromised database far faster
//! than the conventional procedure of restoring a backup and replaying
//! every legitimate transaction since (§1: "a time-consuming, error-prone
//! and labor-intensive process", even ignoring the human analysis time).
//!
//! Both alternatives run on the same virtual-time cost model:
//!
//! * **selective repair** — dependency analysis + the backward
//!   compensation sweep, on the live database;
//! * **restore & replay** — reload the last backup (the initial
//!   population) and re-run every legitimate transaction committed since,
//!   which is what a DBA without dependency tracking must do.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use resildb_core::{
    ContainmentPolicy, Driver as _, FenceAction, Flavor, IncidentRecord, IncidentTimeline,
    LinkProfile, Micros, ProxyConfig, RepairProgress, ResilientDb, SimContext, WireError,
};
use resildb_tpcc::{Attack, AttackKind, Loader, Mix, TpccConfig, TpccRunner, ATTACK_LABEL};

use crate::json::Probe;
use crate::{costs, prepare, Setup};

/// One measured detection-latency point.
#[derive(Debug, Clone, PartialEq)]
pub struct MttrPoint {
    /// Transactions committed between intrusion and detection.
    pub t_detect: usize,
    /// Virtual time of dependency analysis + selective undo.
    pub selective_repair: Micros,
    /// Number of compensating statements the sweep executed.
    pub compensating_statements: usize,
    /// Virtual time of restoring the backup and replaying survivors.
    pub restore_and_replay: Micros,
}

impl MttrPoint {
    /// How many times faster selective repair is.
    pub fn speedup(&self) -> f64 {
        self.restore_and_replay.as_secs_f64() / self.selective_repair.as_secs_f64().max(1e-9)
    }
}

fn workload(
    runner: &mut TpccRunner,
    conn: &mut dyn resildb_core::Connection,
    t_detect: usize,
    timeline: Option<&IncidentTimeline>,
) {
    Mix::standard(25, 11).run(runner, conn).expect("warmup");
    Attack {
        kind: AttackKind::ForgedPayment,
        w_id: 1,
        d_id: 1,
        target_id: 1,
    }
    .execute(conn)
    .expect("attack");
    // Ground truth for the incident timeline: the driver knows exactly
    // when the attack committed, so MTTD can be measured rather than
    // assumed zero.
    if let Some(timeline) = timeline {
        timeline.note_attack();
    }
    Mix::standard(t_detect, 12)
        .run(runner, conn)
        .expect("post-attack");
}

/// Runs one point.
pub fn run_point(t_detect: usize) -> MttrPoint {
    run_point_probed(t_detect, None)
}

/// Like [`run_point`], with an optional telemetry probe attached to the
/// tracked (world A) run — the repair sweep populates the `repair.*`
/// phase histograms.
pub fn run_point_probed(t_detect: usize, probe: Option<&Probe>) -> MttrPoint {
    let config = TpccConfig::scaled(2);

    // --- world A: tracked database, attacked, selectively repaired -----
    let sim = crate::sim_context(
        costs::networked(),
        costs::POOL_PAGES,
        probe.map(Probe::telemetry),
    );
    let mut builder = ProxyConfig::builder(Flavor::Postgres).record_read_only_deps(true);
    if let Some(probe) = probe {
        builder = builder.telemetry(probe.telemetry().clone());
    }
    let pc = builder.build();
    if let Some(probe) = probe {
        probe.note_proxy_config(pc.summary());
    }
    let mut bench = prepare(
        Flavor::Postgres,
        Setup::Tracked,
        &config,
        sim,
        LinkProfile::lan(),
        Some(pc),
        5,
    )
    .expect("prepare");
    let mut runner = TpccRunner::new(config.clone(), 9);
    let timeline = bench.db.sim().telemetry().timeline();
    workload(&mut runner, &mut *bench.conn, t_detect, Some(timeline));

    let tool = resildb_core::RepairController::new(bench.db.clone());
    let t0 = bench.db.sim().clock().now();
    let analysis = tool.analyze().expect("analyze");
    let attack = {
        let mut s = bench.db.session();
        match s
            .query(&format!(
                "SELECT tr_id FROM annot WHERE descr = '{ATTACK_LABEL}'"
            ))
            .expect("annot")
            .rows
            .first()
            .map(|r| r[0].clone())
        {
            Some(resildb_core::Value::Int(v)) => v,
            other => panic!("attack missing: {other:?}"),
        }
    };
    let undo = analysis.undo_set(&[attack], &crate::fig5::ytd_rules());
    let plan = resildb_core::RepairPlan::with_undo_set(&[attack], undo);
    let report = tool.execute(&analysis, &plan).expect("repair");
    let selective_repair = bench.db.sim().clock().now() - t0;
    if let Some(probe) = probe {
        probe.capture(&*bench.conn);
    }

    // --- world B: untracked database; restore backup + replay ----------
    // The DBA reloads the backup (initial population) and re-runs every
    // legitimate transaction (everything except the attack) by hand.
    let sim = SimContext::new(costs::networked(), costs::POOL_PAGES);
    let db = resildb_core::Database::new("restore", Flavor::Postgres, sim);
    let conn = &mut *resildb_core::NativeDriver::new(db.clone(), LinkProfile::lan())
        .connect()
        .expect("connect");
    let t0 = db.sim().clock().now();
    Loader::new(config.clone(), 5)
        .load(conn)
        .expect("restore backup");
    let mut replay = TpccRunner::new(config, 9).without_annotations();
    Mix::standard(25, 11)
        .run(&mut replay, conn)
        .expect("replay warmup");
    Mix::standard(t_detect, 12)
        .run(&mut replay, conn)
        .expect("replay rest");
    let restore_and_replay = db.sim().clock().now() - t0;

    MttrPoint {
        t_detect,
        selective_repair,
        compensating_statements: report.outcome.statements.len(),
        restore_and_replay,
    }
}

/// Runs the sweep.
pub fn run(t_detects: &[usize]) -> Vec<MttrPoint> {
    run_probed(t_detects, None)
}

/// Runs the sweep with an optional telemetry probe shared across points.
pub fn run_probed(t_detects: &[usize], probe: Option<&Probe>) -> Vec<MttrPoint> {
    t_detects
        .iter()
        .map(|&t| run_point_probed(t, probe))
        .collect()
}

/// Renders the comparison table.
pub fn render(points: &[MttrPoint]) -> String {
    let mut out = String::from(
        "MTTR: selective repair vs. restore-backup-and-replay (W=2, forged payment)\n\n",
    );
    out.push_str(&format!(
        "{:>9} {:>18} {:>14} {:>20} {:>9}\n",
        "T_detect", "selective repair", "comp. stmts", "restore and replay", "speedup"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>9} {:>18} {:>14} {:>20} {:>8.1}x\n",
            p.t_detect,
            p.selective_repair.to_string(),
            p.compensating_statements,
            p.restore_and_replay.to_string(),
            p.speedup()
        ));
    }
    out
}

/// One measured live-repair availability point: how much clean traffic
/// the database kept serving *while* the repair sweep ran behind the
/// containment fence — the number a quiesced repair pins at zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveMttrPoint {
    /// Transactions committed between intrusion and detection.
    pub t_detect: usize,
    /// Wall-clock duration of the live repair (fence raise → lift).
    pub repair_wall: std::time::Duration,
    /// Clean transactions attempted while the repair was in flight.
    pub attempted: usize,
    /// Of those, committed (served despite the repair).
    pub served: usize,
    /// Of those, refused by the containment fence.
    pub fenced: usize,
    /// Tables fenced by the initial static raise.
    pub fenced_tables: usize,
    /// Rows individually fenced after the shrink.
    pub fenced_rows: usize,
    /// Fence-extension rounds the closure needed to converge.
    pub extension_rounds: usize,
    /// Transactions the repair undid.
    pub undo_set: usize,
    /// The incident this point's repair recorded on its timeline —
    /// attack/detect/fence marks plus the MTTD/MTTC/MTTR decomposition.
    pub incident: Option<IncidentRecord>,
}

impl LiveMttrPoint {
    /// Fraction of in-repair transaction attempts that were served.
    pub fn availability(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.served as f64 / self.attempted as f64
        }
    }
}

/// Shared observation slot for the metrics endpoint: the live instance
/// being measured and the progress handle of its repair controller.
/// `mttr --live --serve` installs each point here before the repair
/// starts, and the endpoint's route closures read whatever is current.
pub type ObserveSlot = Mutex<Option<(Arc<ResilientDb>, RepairProgress)>>;

/// Lock an [`ObserveSlot`], surviving a poisoned mutex (a panicking
/// bench point must not take the endpoint down with it).
pub fn lock_slot(
    slot: &ObserveSlot,
) -> std::sync::MutexGuard<'_, Option<(Arc<ResilientDb>, RepairProgress)>> {
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs one live-availability point.
pub fn run_live_point(t_detect: usize) -> LiveMttrPoint {
    run_live_point_observed(t_detect, None, None)
}

/// Like [`run_live_point`], with an optional telemetry probe: the final
/// metrics fold (including the `proxy.fence.*` counters and the
/// `repair.live.fence_size` gauge) is captured into it.
pub fn run_live_point_probed(t_detect: usize, probe: Option<&Probe>) -> LiveMttrPoint {
    run_live_point_observed(t_detect, probe, None)
}

/// Like [`run_live_point_probed`], additionally publishing the instance
/// and its repair progress into `observe` for a concurrently running
/// metrics endpoint.
pub fn run_live_point_observed(
    t_detect: usize,
    probe: Option<&Probe>,
    observe: Option<&ObserveSlot>,
) -> LiveMttrPoint {
    let config = TpccConfig::scaled(2);
    let rdb = Arc::new(
        ResilientDb::builder(Flavor::Postgres)
            .containment(ContainmentPolicy::FenceDynamic(FenceAction::Reject))
            .build()
            .expect("build"),
    );
    {
        let mut conn = rdb.connect().expect("connect");
        Loader::new(config.clone(), 5)
            .load(&mut *conn)
            .expect("load");
        let mut runner = TpccRunner::new(config.clone(), 9);
        workload(
            &mut runner,
            &mut *conn,
            t_detect,
            Some(rdb.telemetry().timeline()),
        );
    }
    let attack = rdb
        .txn_id_by_label(ATTACK_LABEL)
        .expect("annot lookup")
        .expect("attack tracked");

    // A worker keeps submitting clean transactions throughout: reads on
    // `item` (the attack closure never touches it) alternating with
    // payments against warehouse 2 (the forged payment hits warehouse 1).
    // Only attempts made while the repair is in flight are counted.
    let in_repair = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    let (attempted, served, fenced) = (
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
    );
    // Build the controller before the repair starts so the endpoint can
    // watch the whole episode, Idle phase included.
    let controller = rdb.repair_controller_with(rdb.live_repair_options());
    if let Some(slot) = observe {
        *lock_slot(slot) = Some((Arc::clone(&rdb), controller.progress()));
    }
    let (wall, report) = std::thread::scope(|scope| {
        let (rdb_w, in_repair, done) = (&rdb, &in_repair, &done);
        let (attempted, served, fenced) = (&attempted, &served, &fenced);
        scope.spawn(move || {
            let Ok(mut conn) = rdb_w.connect() else {
                return;
            };
            let mut i = 0usize;
            while !done.load(Ordering::Relaxed) {
                i += 1;
                let stmt = if i.is_multiple_of(2) {
                    "SELECT i_price FROM item WHERE i_id = 1".to_string()
                } else {
                    "UPDATE warehouse SET w_ytd = w_ytd + 1.0 WHERE w_id = 2".to_string()
                };
                let result = (|| -> Result<(), WireError> {
                    conn.execute("BEGIN")?;
                    conn.execute(&stmt)?;
                    conn.execute("COMMIT")?;
                    Ok(())
                })();
                if result.is_err() {
                    let _ = conn.execute("ROLLBACK");
                }
                if !in_repair.load(Ordering::Relaxed) {
                    continue;
                }
                attempted.fetch_add(1, Ordering::Relaxed);
                match result {
                    Ok(()) => {
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) if e.to_string().contains("containment fence") => {
                        fenced.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {}
                }
                std::thread::yield_now();
            }
        });
        let t0 = std::time::Instant::now();
        in_repair.store(true, Ordering::Relaxed);
        let report = controller.repair(&[attack]).expect("live repair");
        in_repair.store(false, Ordering::Relaxed);
        let wall = t0.elapsed();
        done.store(true, Ordering::Relaxed);
        (wall, report)
    });
    if let Some(probe) = probe {
        probe.capture_snapshot(rdb.metrics());
    }

    let stats = report.live.expect("live execution reports live stats");
    LiveMttrPoint {
        t_detect,
        repair_wall: wall,
        attempted: attempted.into_inner(),
        served: served.into_inner(),
        fenced: fenced.into_inner(),
        fenced_tables: stats.fenced_tables,
        fenced_rows: stats.fenced_rows,
        extension_rounds: stats.extension_rounds,
        undo_set: report.undo_set.len(),
        incident: rdb.telemetry().timeline().snapshot().pop(),
    }
}

/// Runs the live-availability sweep.
pub fn run_live(t_detects: &[usize]) -> Vec<LiveMttrPoint> {
    run_live_probed(t_detects, None)
}

/// Runs the live-availability sweep with an optional shared probe.
pub fn run_live_probed(t_detects: &[usize], probe: Option<&Probe>) -> Vec<LiveMttrPoint> {
    run_live_observed(t_detects, probe, None)
}

/// Runs the live-availability sweep, publishing each point into
/// `observe` for a concurrently running metrics endpoint.
pub fn run_live_observed(
    t_detects: &[usize],
    probe: Option<&Probe>,
    observe: Option<&ObserveSlot>,
) -> Vec<LiveMttrPoint> {
    t_detects
        .iter()
        .map(|&t| run_live_point_observed(t, probe, observe))
        .collect()
}

/// Renders the live-availability table.
pub fn render_live(points: &[LiveMttrPoint]) -> String {
    let mut out = String::from(
        "Live repair availability: clean traffic served during the sweep \
         (W=2, forged payment, FenceDynamic/Reject)\n\n",
    );
    out.push_str(&format!(
        "{:>9} {:>12} {:>10} {:>8} {:>8} {:>13} {:>11} {:>9} {:>6}\n",
        "T_detect",
        "repair (ms)",
        "attempted",
        "served",
        "fenced",
        "availability",
        "fence rows",
        "ext.rnds",
        "undo"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>9} {:>12.2} {:>10} {:>8} {:>8} {:>12.1}% {:>11} {:>9} {:>6}\n",
            p.t_detect,
            p.repair_wall.as_secs_f64() * 1e3,
            p.attempted,
            p.served,
            p.fenced,
            p.availability() * 100.0,
            p.fenced_rows,
            p.extension_rounds,
            p.undo_set,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_repair_beats_restore_and_replay() {
        let p = run_point(30);
        assert!(
            p.speedup() > 1.0,
            "selective {} vs restore {}",
            p.selective_repair,
            p.restore_and_replay
        );
        assert!(p.compensating_statements > 0);
    }

    #[test]
    fn live_repair_serves_clean_traffic_mid_sweep() {
        let p = run_live_point(20);
        assert!(p.attempted > 0, "worker never ran during repair: {p:?}");
        assert!(
            p.served > 0,
            "no clean transaction served during live repair: {p:?}"
        );
        assert!(p.fenced_tables >= 1);
        assert!(p.undo_set >= 1);

        // The point carries its incident timeline: closed, ground-truth
        // attack mark first, one fence pair, decomposition exact.
        let incident = p.incident.expect("live point records an incident");
        assert!(!incident.open, "incident left open: {incident:?}");
        use resildb_core::IncidentPhase;
        assert_eq!(
            incident.marks.first().map(|m| m.phase),
            Some(IncidentPhase::AttackCommitted)
        );
        assert_eq!(incident.count(IncidentPhase::FenceRaised), 1);
        assert_eq!(incident.count(IncidentPhase::FenceLifted), 1);
        let d = incident.decomposition();
        assert!(d.mttd_ns > 0, "attack→detect should take time: {d:?}");
        assert_eq!(d.mttd_ns + d.mttc_ns + d.mttr_ns, d.wall_ns);
    }
}
