//! MTTR comparison: selective repair vs restore-backup-and-replay.
//! Pass `--quick` for a reduced grid.

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let grid: Vec<usize> = if quick {
        vec![30]
    } else {
        vec![50, 100, 200, 400, 700]
    };
    print!(
        "{}",
        resildb_bench::mttr::render(&resildb_bench::mttr::run(&grid))
    );
}
