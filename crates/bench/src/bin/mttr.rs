//! MTTR comparison: selective repair vs restore-backup-and-replay.
//! Pass `--quick` for a reduced grid; `--live` measures *online* repair
//! instead — clean traffic served while the sweep runs behind the
//! containment fence; `--json-out [PATH]` additionally emits a
//! machine-readable report (default `BENCH_pr4.json`, or `BENCH_pr9.json`
//! under `--live`); `--trace-out [PATH]` captures a flight-recorder
//! trace of the attack, analysis and repair (Chrome Trace Event Format;
//! `.jsonl` for JSONL; default `BENCH_trace.json`). Explore captures
//! with `resildb-trace`.

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_bench::json::{self, Probe};
use resildb_bench::mttr::{LiveMttrPoint, MttrPoint};

fn points_json(points: &[MttrPoint]) -> String {
    let items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"t_detect\":{},\"selective_repair_us\":{},\
                 \"compensating_statements\":{},\"restore_and_replay_us\":{},\
                 \"speedup\":{}}}",
                p.t_detect,
                p.selective_repair.as_micros(),
                p.compensating_statements,
                p.restore_and_replay.as_micros(),
                json::json_f64(p.speedup()),
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn live_points_json(points: &[LiveMttrPoint]) -> String {
    let items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"t_detect\":{},\"repair_wall_us\":{},\"attempted\":{},\
                 \"served\":{},\"fenced\":{},\"availability\":{},\
                 \"fenced_tables\":{},\"fenced_rows\":{},\
                 \"extension_rounds\":{},\"undo_set\":{}}}",
                p.t_detect,
                p.repair_wall.as_micros(),
                p.attempted,
                p.served,
                p.fenced,
                json::json_f64(p.availability()),
                p.fenced_tables,
                p.fenced_rows,
                p.extension_rounds,
                p.undo_set,
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let live = args.iter().any(|a| a == "--live");
    let grid: Vec<usize> = if quick {
        vec![30]
    } else {
        vec![50, 100, 200, 400, 700]
    };
    let json_out = if live {
        json::flag_path(&args, "--json-out", "BENCH_pr9.json")
    } else {
        json::json_out_path(&args)
    };
    let trace_out = json::trace_out_path(&args);
    let probe = (json_out.is_some() || trace_out.is_some()).then(Probe::new);
    if trace_out.is_some() {
        if let Some(probe) = &probe {
            probe.enable_tracing();
        }
    }
    if live {
        let points = resildb_bench::mttr::run_live_probed(&grid, probe.as_ref());
        print!("{}", resildb_bench::mttr::render_live(&points));
        if let (Some(path), Some(probe)) = (&json_out, &probe) {
            json::write_report(
                path,
                "mttr-live",
                &live_points_json(&points),
                &probe.snapshot(),
                &probe.run_meta(),
            )
            .expect("write json report");
            println!("\nJSON report written to {path}");
        }
        return;
    }
    let points = resildb_bench::mttr::run_probed(&grid, probe.as_ref());
    print!("{}", resildb_bench::mttr::render(&points));
    if let (Some(path), Some(probe)) = (&json_out, &probe) {
        json::write_report(
            path,
            "mttr",
            &points_json(&points),
            &probe.snapshot(),
            &probe.run_meta(),
        )
        .expect("write json report");
        println!("\nJSON report written to {path}");
    }
    if let (Some(path), Some(probe)) = (&trace_out, &probe) {
        json::write_trace(path, &probe.telemetry().flight().snapshot())
            .expect("write trace capture");
        println!("trace capture written to {path}");
    }
}
