//! MTTR comparison: selective repair vs restore-backup-and-replay.
//! Pass `--quick` for a reduced grid; `--live` measures *online* repair
//! instead — clean traffic served while the sweep runs behind the
//! containment fence; `--json-out [PATH]` additionally emits a
//! machine-readable report (default `BENCH_pr4.json`, or
//! `BENCH_pr10.json` under `--live`); `--trace-out [PATH]` captures a
//! flight-recorder trace of the attack, analysis and repair (Chrome
//! Trace Event Format; `.jsonl` for JSONL; default `BENCH_trace.json`).
//! Explore captures with `resildb-trace`.
//!
//! `--live --serve [ADDR]` (default `127.0.0.1:9188`) additionally runs
//! the observability endpoint while the points execute: `/metrics`
//! (Prometheus), `/health`, `/ready` (503 while a fence is up or a
//! repair is executing), `/incidents` (timeline JSON) and `/quit`.
//! Watch it live with `resildb-top`. The process keeps serving after
//! the sweep finishes until `/quit` is requested.

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::sync::Arc;

use resildb_bench::json::{self, Probe};
use resildb_bench::mttr::{lock_slot, LiveMttrPoint, MttrPoint, ObserveSlot};
use resildb_core::{MetricsServer, MetricsSnapshot, ServerRoutes};

fn points_json(points: &[MttrPoint]) -> String {
    let items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"t_detect\":{},\"selective_repair_us\":{},\
                 \"compensating_statements\":{},\"restore_and_replay_us\":{},\
                 \"speedup\":{}}}",
                p.t_detect,
                p.selective_repair.as_micros(),
                p.compensating_statements,
                p.restore_and_replay.as_micros(),
                json::json_f64(p.speedup()),
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// The per-incident timeline of a live point: phase marks plus the
/// MTTD/MTTC/MTTR decomposition (nanoseconds, so the three phases sum
/// to the wall time *exactly* — microsecond rounding would break that).
fn timeline_json(p: &LiveMttrPoint) -> String {
    let Some(incident) = &p.incident else {
        return "null".to_string();
    };
    let d = incident.decomposition();
    let marks: Vec<String> = incident
        .marks
        .iter()
        .map(|m| format!("{{\"phase\":\"{}\",\"at_ns\":{}}}", m.phase.name(), m.at_ns))
        .collect();
    format!(
        "{{\"incident\":{},\"marks\":[{}],\"mttd_ns\":{},\"mttc_ns\":{},\
         \"mttr_ns\":{},\"wall_ns\":{}}}",
        incident.id,
        marks.join(","),
        d.mttd_ns,
        d.mttc_ns,
        d.mttr_ns,
        d.wall_ns,
    )
}

fn live_points_json(points: &[LiveMttrPoint]) -> String {
    let items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"t_detect\":{},\"repair_wall_us\":{},\"attempted\":{},\
                 \"served\":{},\"fenced\":{},\"availability\":{},\
                 \"fenced_tables\":{},\"fenced_rows\":{},\
                 \"extension_rounds\":{},\"undo_set\":{},\"timeline\":{}}}",
                p.t_detect,
                p.repair_wall.as_micros(),
                p.attempted,
                p.served,
                p.fenced,
                json::json_f64(p.availability()),
                p.fenced_tables,
                p.fenced_rows,
                p.extension_rounds,
                p.undo_set,
                timeline_json(p),
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Builds the endpoint routes over the shared observation slot. Before
/// a point installs itself the endpoint serves empty-but-valid data, so
/// a scraper can connect the moment the process is up.
fn observe_routes(slot: &Arc<ObserveSlot>) -> ServerRoutes {
    let metrics_slot = Arc::clone(slot);
    let ready_slot = Arc::clone(slot);
    let incidents_slot = Arc::clone(slot);
    ServerRoutes::new()
        .metrics(move || match &*lock_slot(&metrics_slot) {
            Some((rdb, progress)) => {
                let mut snap = rdb.metrics();
                progress.fold_metrics(&mut snap);
                snap
            }
            None => MetricsSnapshot::default(),
        })
        .ready(move || match &*lock_slot(&ready_slot) {
            Some((rdb, progress)) => {
                !rdb.proxy_runtime().fence().is_active() && !progress.is_executing()
            }
            None => true,
        })
        .incidents(move || match &*lock_slot(&incidents_slot) {
            Some((rdb, _)) => rdb.telemetry().timeline().to_json(),
            None => "{\"incidents\":[]}".to_string(),
        })
        .allow_quit(true)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let live = args.iter().any(|a| a == "--live");
    let grid: Vec<usize> = if quick {
        vec![30]
    } else {
        vec![50, 100, 200, 400, 700]
    };
    let json_out = if live {
        json::flag_path(&args, "--json-out", "BENCH_pr10.json")
    } else {
        json::json_out_path(&args)
    };
    let serve = live
        .then(|| json::flag_path(&args, "--serve", "127.0.0.1:9188"))
        .flatten();
    let trace_out = json::trace_out_path(&args);
    let probe = (json_out.is_some() || trace_out.is_some()).then(Probe::new);
    if trace_out.is_some() {
        if let Some(probe) = &probe {
            probe.enable_tracing();
        }
    }
    if live {
        let slot: Arc<ObserveSlot> = Arc::new(ObserveSlot::default());
        let mut server = serve.as_deref().map(|addr| {
            let server =
                MetricsServer::serve(addr, observe_routes(&slot)).expect("bind metrics endpoint");
            println!("observability endpoint on http://{}/", server.addr());
            server
        });
        let observe = server.as_ref().map(|_| &*slot);
        let points = resildb_bench::mttr::run_live_observed(&grid, probe.as_ref(), observe);
        print!("{}", resildb_bench::mttr::render_live(&points));
        if let (Some(path), Some(probe)) = (&json_out, &probe) {
            json::write_report(
                path,
                "mttr-live",
                &live_points_json(&points),
                &probe.snapshot(),
                &probe.run_meta(),
            )
            .expect("write json report");
            println!("\nJSON report written to {path}");
        }
        if let Some(server) = server.as_mut() {
            println!("serving until GET /quit on http://{}/", server.addr());
            server.join();
        }
        return;
    }
    let points = resildb_bench::mttr::run_probed(&grid, probe.as_ref());
    print!("{}", resildb_bench::mttr::render(&points));
    if let (Some(path), Some(probe)) = (&json_out, &probe) {
        json::write_report(
            path,
            "mttr",
            &points_json(&points),
            &probe.snapshot(),
            &probe.run_meta(),
        )
        .expect("write json report");
        println!("\nJSON report written to {path}");
    }
    if let (Some(path), Some(probe)) = (&trace_out, &probe) {
        json::write_trace(path, &probe.telemetry().flight().snapshot())
            .expect("write trace capture");
        println!("trace capture written to {path}");
    }
}
