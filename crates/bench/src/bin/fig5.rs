//! Regenerates paper Figure 5: rolled-back transaction counts and saved
//! percentages vs T_detect for W in {2, 5}, tracking all dependencies vs
//! discarding false (ytd-mediated) dependencies. `--quick` reduces the
//! T_detect grid; `--json-out [PATH]` additionally emits a
//! machine-readable report (default `BENCH_pr4.json`).

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_bench::fig5::Point;
use resildb_bench::json::{self, Probe};

fn points_json(points: &[Point]) -> String {
    let items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"w\":{},\"t_detect\":{},\"rolled_back_all\":{},\
                 \"saved_pct_all\":{},\"rolled_back_filtered\":{},\
                 \"saved_pct_filtered\":{}}}",
                p.w,
                p.t_detect,
                p.rolled_back_all,
                json::json_f64(p.saved_pct_all),
                p.rolled_back_filtered,
                json::json_f64(p.saved_pct_filtered),
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let t_detects: Vec<usize> = if quick {
        vec![20, 60]
    } else {
        vec![50, 100, 200, 300, 400, 500, 600, 700]
    };
    let json_out = json::json_out_path(&args);
    let probe = json_out.as_ref().map(|_| Probe::new());
    let points = resildb_bench::fig5::run_probed(&[2, 5], &t_detects, probe.as_ref());
    print!("{}", resildb_bench::fig5::render(&points));
    if let (Some(path), Some(probe)) = (json_out, probe) {
        json::write_report(
            &path,
            "fig5",
            &points_json(&points),
            &probe.snapshot(),
            &probe.run_meta(),
        )
        .expect("write json report");
        println!("\nJSON report written to {path}");
    }
}
