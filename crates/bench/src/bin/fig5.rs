//! Regenerates paper Figure 5: rolled-back transaction counts and saved
//! percentages vs T_detect for W in {2, 5}, tracking all dependencies vs
//! discarding false (ytd-mediated) dependencies. `--quick` reduces the
//! T_detect grid.

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t_detects: Vec<usize> = if quick {
        vec![20, 60]
    } else {
        vec![50, 100, 200, 300, 400, 500, 600, 700]
    };
    let points = resildb_bench::fig5::run(&[2, 5], &t_detects);
    print!("{}", resildb_bench::fig5::render(&points));
}
