//! Row- vs column-level tracking cost/accuracy comparison (paper §6).
//! Pass `--quick` for a reduced run.

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t_detect = if quick { 40 } else { 150 };
    let cost = resildb_bench::granularity::run_cost_comparison(quick);
    let accuracy = resildb_bench::granularity::run_accuracy_comparison(t_detect);
    print!(
        "{}",
        resildb_bench::granularity::render(&cost, &accuracy, t_detect)
    );
}
