//! `resildb-top` — a live terminal view of the observability endpoint.
//!
//! Polls a running `mttr --live --serve` (or any embedder of
//! `MetricsServer`) and renders commit/reject rates, fence state, and
//! the repair progress bar:
//!
//! ```text
//! resildb-top — http://127.0.0.1:9188  (ready: NO)
//!   commits/s: 1234.5   fence rejects/s: 12.0
//!   fence: 17 entries   phase: sweep   extension rounds: 0
//!   repair [#########################........] 23/31 txns
//!   incidents: 1 (latest wall 48.2 ms)
//! ```
//!
//! Flags: `--addr HOST:PORT` (default `127.0.0.1:9188`), `--interval-ms
//! N` (default 1000), `--once` (print a single frame and exit — what CI
//! uses), `--frames N` (exit after N frames).

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One HTTP GET against the endpoint: returns (status-code, body).
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("write {path}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response from {path}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Value of a plain `name value` sample line in Prometheus text format.
fn metric(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// Crude count of incidents in the `/incidents` JSON (no parser needed:
/// every incident object opens with `{"id":`).
fn incident_count(json: &str) -> usize {
    json.matches("{\"id\":").count()
}

/// `wall_ns` of the last decomposition in the `/incidents` JSON.
fn last_wall_ns(json: &str) -> Option<u64> {
    let at = json.rfind("\"wall_ns\":")?;
    json[at + "\"wall_ns\":".len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

const PHASES: [&str; 7] = [
    "idle", "analyze", "plan", "drain", "sweep", "extend", "done",
];

fn phase_name(gauge: Option<f64>) -> &'static str {
    let idx = gauge.unwrap_or(0.0) as usize;
    PHASES.get(idx).copied().unwrap_or("?")
}

fn progress_bar(compensated: f64, total: f64, width: usize) -> String {
    let frac = if total > 0.0 {
        (compensated / total).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (frac * width as f64).round() as usize;
    format!(
        "[{}{}] {}/{} txns",
        "#".repeat(filled),
        ".".repeat(width - filled),
        compensated as u64,
        total as u64
    )
}

/// Per-second rate between two counter samples `dt` apart.
fn rate(prev: Option<f64>, now: Option<f64>, dt: Duration) -> Option<f64> {
    match (prev, now) {
        (Some(p), Some(n)) if dt > Duration::ZERO => Some((n - p).max(0.0) / dt.as_secs_f64()),
        _ => None,
    }
}

fn fmt_rate(r: Option<f64>) -> String {
    r.map_or_else(|| "--".to_string(), |r| format!("{r:.1}"))
}

struct Frame {
    ready: bool,
    metrics: String,
    incidents: String,
}

fn scrape(addr: &str) -> Result<Frame, String> {
    let (ready_status, _) = http_get(addr, "/ready")?;
    let (status, metrics) = http_get(addr, "/metrics")?;
    if status != 200 {
        return Err(format!("/metrics returned {status}"));
    }
    let (status, incidents) = http_get(addr, "/incidents")?;
    if status != 200 {
        return Err(format!("/incidents returned {status}"));
    }
    Ok(Frame {
        ready: ready_status == 200,
        metrics,
        incidents,
    })
}

fn render(addr: &str, frame: &Frame, prev: Option<&(Frame, Instant)>, now: Instant) -> String {
    let m = &frame.metrics;
    let dt = prev.map_or(Duration::ZERO, |(_, t)| now.duration_since(*t));
    let prev_m = prev.map(|(f, _)| f.metrics.as_str());
    let commits = rate(
        prev_m.and_then(|p| metric(p, "resildb_engine_commit_count_total")),
        metric(m, "resildb_engine_commit_count_total"),
        dt,
    );
    let rejects = rate(
        prev_m.and_then(|p| metric(p, "resildb_proxy_fence_rejected_total")),
        metric(m, "resildb_proxy_fence_rejected_total"),
        dt,
    );
    let fence_size = metric(m, "resildb_repair_live_fence_size").unwrap_or(0.0);
    let phase = phase_name(metric(m, "resildb_repair_progress_phase"));
    let rounds = metric(m, "resildb_repair_progress_extension_rounds").unwrap_or(0.0);
    let bar = progress_bar(
        metric(m, "resildb_repair_progress_compensated").unwrap_or(0.0),
        metric(m, "resildb_repair_progress_total").unwrap_or(0.0),
        32,
    );
    let incidents = incident_count(&frame.incidents);
    let wall = last_wall_ns(&frame.incidents).map_or_else(String::new, |ns| {
        format!(" (latest wall {:.1} ms)", ns as f64 / 1e6)
    });
    format!(
        "resildb-top — http://{addr}/  (ready: {})\n\
         \x20 commits/s: {}   fence rejects/s: {}\n\
         \x20 fence: {} entries   phase: {}   extension rounds: {}\n\
         \x20 repair {}\n\
         \x20 incidents: {}{}\n",
        if frame.ready { "yes" } else { "NO" },
        fmt_rate(commits),
        fmt_rate(rejects),
        fence_size as u64,
        phase,
        rounds as u64,
        bar,
        incidents,
        wall,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let addr = value_of("--addr").unwrap_or_else(|| "127.0.0.1:9188".to_string());
    let interval = Duration::from_millis(
        value_of("--interval-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000),
    );
    let once = args.iter().any(|a| a == "--once");
    let frames: Option<u64> = value_of("--frames").and_then(|v| v.parse().ok());

    let mut prev: Option<(Frame, Instant)> = None;
    let mut rendered = 0u64;
    loop {
        let now = Instant::now();
        match scrape(&addr) {
            Ok(frame) => {
                if !once {
                    print!("\x1b[2J\x1b[H"); // clear screen, home cursor
                }
                print!("{}", render(&addr, &frame, prev.as_ref(), now));
                std::io::stdout().flush().ok();
                prev = Some((frame, now));
            }
            Err(e) => {
                eprintln!("resildb-top: {e}");
                if once {
                    std::process::exit(1);
                }
            }
        }
        rendered += 1;
        if once || frames.is_some_and(|n| rendered >= n) {
            return;
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: &str = "\
# TYPE resildb_engine_commit_count_total counter\n\
resildb_engine_commit_count_total 120\n\
resildb_proxy_fence_rejected_total 4\n\
resildb_repair_live_fence_size 17\n\
resildb_repair_progress_phase 4\n\
resildb_repair_progress_compensated 23\n\
resildb_repair_progress_total 31\n";

    #[test]
    fn parses_prometheus_sample_lines() {
        assert_eq!(
            metric(METRICS, "resildb_engine_commit_count_total"),
            Some(120.0)
        );
        assert_eq!(
            metric(METRICS, "resildb_repair_live_fence_size"),
            Some(17.0)
        );
        assert_eq!(metric(METRICS, "resildb_missing"), None);
        // A name that is a prefix of another must not match its lines.
        assert_eq!(metric(METRICS, "resildb_repair_progress"), None);
    }

    #[test]
    fn renders_phase_bar_and_incident_summary() {
        assert_eq!(phase_name(Some(4.0)), "sweep");
        assert_eq!(phase_name(Some(99.0)), "?");
        let bar = progress_bar(23.0, 31.0, 32);
        assert!(bar.contains("23/31 txns"), "{bar}");
        assert!(bar.starts_with("[####"), "{bar}");
        let json = "{\"incidents\":[{\"id\":1,\"open\":false,\"marks\":[],\
             \"decomposition\":{\"mttd_ns\":1,\"mttc_ns\":2,\"mttr_ns\":3,\"wall_ns\":6}}]}";
        assert_eq!(incident_count(json), 1);
        assert_eq!(last_wall_ns(json), Some(6));
    }

    #[test]
    fn rates_need_two_samples_and_positive_dt() {
        let dt = Duration::from_secs(2);
        assert_eq!(rate(Some(100.0), Some(150.0), dt), Some(25.0));
        assert_eq!(rate(None, Some(150.0), dt), None);
        assert_eq!(rate(Some(100.0), Some(150.0), Duration::ZERO), None);
        // Counter reset (restart) clamps to zero instead of going negative.
        assert_eq!(rate(Some(150.0), Some(100.0), dt), Some(0.0));
    }
}
