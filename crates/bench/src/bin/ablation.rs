//! Tracking-overhead ablation (paper §6 optimisation discussion).
//! Pass `--quick` for a reduced run.

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        resildb_bench::ablation::render(&resildb_bench::ablation::run(quick))
    );
}
