//! Tracking-overhead ablation (paper §6 optimisation discussion).
//! Pass `--quick` for a reduced run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        resildb_bench::ablation::render(&resildb_bench::ablation::run(quick))
    );
}
