//! Regenerates paper Figure 4: inter-transaction dependency tracking
//! overhead over the four panels. Pass `--quick` for a reduced run and
//! `--no-rewrite-cache` to disable the proxy's statement-template cache
//! (the ablation isolating what cached rewrites buy back).

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_bench::fig4::{render, run_with, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let rewrite_cache = !args.iter().any(|a| a == "--no-rewrite-cache");
    if !rewrite_cache {
        println!("(proxy statement-template rewrite cache DISABLED)");
    }
    let cells = run_with(scale, rewrite_cache);
    print!("{}", render(&cells));
}
