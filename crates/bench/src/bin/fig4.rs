//! Regenerates paper Figure 4: inter-transaction dependency tracking
//! overhead over the four panels. Pass `--quick` for a reduced run.

use resildb_bench::fig4::{render, run, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let cells = run(scale);
    print!("{}", render(&cells));
}
