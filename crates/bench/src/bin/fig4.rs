//! Regenerates paper Figure 4: inter-transaction dependency tracking
//! overhead over the four panels. Pass `--quick` for a reduced run,
//! `--no-rewrite-cache` to disable the proxy's statement-template cache
//! (the ablation isolating what cached rewrites buy back),
//! `--json-out [PATH]` to also emit a machine-readable report (cells plus
//! per-stage telemetry histograms; default `BENCH_pr4.json`), and
//! `--trace-out [PATH]` to capture a flight-recorder trace of the run
//! (Chrome Trace Event Format, Perfetto-loadable; `.jsonl` for JSONL;
//! default `BENCH_trace.json`). Explore captures with `resildb-trace`.
//!
//! `--threads N` switches to the wall-clock scaling mode instead: N OS
//! threads (measured at every power of two up to N) drive real
//! connections against one shared database with the simulator in
//! wall-clock mode, reporting base and tracked TPS scaling curves
//! (`--wall-clock` is implied and accepted as an explicit flag; the JSON
//! report defaults to `BENCH_pr6.json`).

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_bench::fig4::{render, run_probed, Cell, Scale};
use resildb_bench::json::{self, Probe};
use resildb_bench::threads::{self, thread_counts, ThreadCell};

fn cells_json(cells: &[Cell]) -> String {
    let items: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "{{\"flavor\":{},\"networked\":{},\"read_intensive\":{},\
                 \"large_footprint\":{},\"base_tps\":{},\"proxy_tps\":{},\
                 \"overhead_pct\":{}}}",
                json::json_str(c.flavor.name()),
                c.networked,
                c.read_intensive,
                c.large_footprint,
                json::json_f64(c.base_tps),
                json::json_f64(c.proxy_tps),
                json::json_f64(c.overhead_pct()),
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn scaling_json(cells: &[ThreadCell]) -> String {
    let anchor = cells.first().map_or(0.0, |c| c.base_tps);
    let items: Vec<String> = cells
        .iter()
        .map(|c| {
            let scaling = if anchor > 0.0 {
                c.base_tps / anchor
            } else {
                0.0
            };
            format!(
                "{{\"threads\":{},\"base_tps\":{},\"proxy_tps\":{},\
                 \"overhead_pct\":{},\"base_scaling\":{}}}",
                c.threads,
                json::json_f64(c.base_tps),
                json::json_f64(c.proxy_tps),
                json::json_f64(c.overhead_pct()),
                json::json_f64(scaling),
            )
        })
        .collect();
    format!("{{\"scaling\":[{}]}}", items.join(","))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let rewrite_cache = !args.iter().any(|a| a == "--no-rewrite-cache");
    let threads = json::threads_arg(&args);
    let json_default = if threads.is_some() {
        json::DEFAULT_THREADS_JSON_PATH
    } else {
        json::DEFAULT_JSON_PATH
    };
    let json_out = json::flag_path(&args, "--json-out", json_default);
    let trace_out = json::trace_out_path(&args);
    let probe = (json_out.is_some() || trace_out.is_some()).then(Probe::new);
    if trace_out.is_some() {
        if let Some(probe) = &probe {
            probe.enable_tracing();
        }
    }

    if let Some(n) = threads {
        // Threaded wall-clock mode (--wall-clock is implied).
        let cells = threads::run(&thread_counts(n), scale, probe.as_ref());
        print!("{}", threads::render(&cells));
        if let (Some(path), Some(probe)) = (&json_out, &probe) {
            json::write_report(
                path,
                "fig4-threads",
                &scaling_json(&cells),
                &probe.snapshot(),
                &probe.run_meta(),
            )
            .expect("write json report");
            println!("\nJSON report written to {path}");
        }
    } else {
        if !rewrite_cache {
            println!("(proxy statement-template rewrite cache DISABLED)");
        }
        let cells = run_probed(scale, rewrite_cache, probe.as_ref());
        print!("{}", render(&cells));
        if let (Some(path), Some(probe)) = (&json_out, &probe) {
            json::write_report(
                path,
                "fig4",
                &cells_json(&cells),
                &probe.snapshot(),
                &probe.run_meta(),
            )
            .expect("write json report");
            println!("\nJSON report written to {path}");
        }
    }
    if let (Some(path), Some(probe)) = (&trace_out, &probe) {
        json::write_trace(path, &probe.telemetry().flight().snapshot())
            .expect("write trace capture");
        println!("trace capture written to {path}");
    }
}
