//! Interactive damage-repair console — the paper §6's planned "full-scale
//! interactive database damage repair tool", as a terminal REPL.
//!
//! Starts a demo TPC-C database with an injected forged payment, then lets
//! the DBA explore the damage perimeter and execute the repair:
//!
//! ```text
//! cargo run -p resildb-bench --bin repair_console
//! repair> help
//! ```
//!
//! Commands can also be piped: `echo "closure\nrepair\nquit" | repair_console`.

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::io::{BufRead, Write as _};

use resildb_core::WhatIfSession;
use resildb_core::{FalseDepRule, Flavor, LinkProfile, ProxyConfig, SimContext, Value};
use resildb_tpcc::{Attack, AttackKind, Mix, TpccConfig, TpccRunner, ATTACK_LABEL};

const HELP: &str = "\
commands:
  list                      show tracked transactions and labels
  closure                   show the current undo set
  dot                       print the dependency graph (GraphViz DOT)
  seed <id>                 add a transaction to the initial attack set
  unseed <id>               remove it again
  ignore-table <t>          discard dependencies mediated by table <t>
  ignore-cols <t> <c,c,..>  discard deps existing only through those columns
  clear-rules               drop all false-dependency rules
  include <id>              force a transaction into the undo set
  exclude <id>              force a transaction out of the undo set
  repair                    execute the compensation sweep for the undo set
  help                      this text
  quit                      exit";

fn main() {
    // Demo scenario: small TPC-C database, some traffic, one forged
    // payment, more traffic.
    let config = TpccConfig::tiny();
    let pc = ProxyConfig::builder(Flavor::Postgres)
        .record_read_only_deps(true)
        .build();
    let bench = resildb_bench::prepare(
        Flavor::Postgres,
        resildb_bench::Setup::Tracked,
        &config,
        SimContext::free(),
        LinkProfile::local(),
        Some(pc),
        99,
    )
    .expect("prepare demo database");
    let mut conn = bench.conn;
    let mut runner = TpccRunner::new(config, 3);
    Mix::standard(8, 1)
        .run(&mut runner, &mut *conn)
        .expect("warmup");
    Attack {
        kind: AttackKind::ForgedPayment,
        w_id: 1,
        d_id: 1,
        target_id: 1,
    }
    .execute(&mut *conn)
    .expect("attack");
    Mix::standard(10, 2)
        .run(&mut runner, &mut *conn)
        .expect("post-attack");
    drop(conn);
    let db = bench.db;

    let tool = resildb_core::RepairController::new(db.clone());
    let analysis = tool.analyze().expect("analyze");
    let mut session = WhatIfSession::new(&analysis);
    // Pre-seed with the known attack so `closure` is interesting at once.
    let mut s = db.session();
    if let Some(row) = s
        .query(&format!(
            "SELECT tr_id FROM annot WHERE descr = '{ATTACK_LABEL}'"
        ))
        .expect("annot")
        .rows
        .first()
    {
        if let Value::Int(attack) = row[0] {
            session.add_initial(attack);
            println!("demo database ready; attack transaction is txn {attack}");
        }
    }
    println!("{}", session.summary());
    println!("type `help` for commands");

    let stdin = std::io::stdin();
    loop {
        print!("repair> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => continue,
            ["help"] => println!("{HELP}"),
            ["quit"] | ["exit"] => break,
            ["list"] => {
                for txn in analysis.tracked_transactions() {
                    let marker = if session.undo_set().contains(&txn) {
                        " [undo]"
                    } else {
                        ""
                    };
                    println!("  {txn:>4}  {}{marker}", analysis.graph.label(txn));
                }
            }
            ["closure"] => {
                let undo = session.undo_set();
                println!("undo set ({}): {undo:?}", undo.len());
                println!("{}", session.summary());
            }
            ["dot"] => print!("{}", session.to_dot()),
            ["seed", id] => with_id(id, |id| {
                session.add_initial(id);
            }),
            ["unseed", id] => with_id(id, |id| {
                session.remove_initial(id);
            }),
            ["ignore-table", t] => {
                session.add_rule(FalseDepRule::IgnoreTable(t.to_string()));
                println!("{}", session.summary());
            }
            ["ignore-cols", t, cols] => {
                session.add_rule(FalseDepRule::IgnoreDerivedColumns {
                    table: t.to_string(),
                    columns: cols.split(',').map(str::to_string).collect(),
                });
                println!("{}", session.summary());
            }
            ["clear-rules"] => {
                session.clear_rules();
                println!("{}", session.summary());
            }
            ["include", id] => with_id(id, |id| {
                session.force_include(id);
            }),
            ["exclude", id] => with_id(id, |id| {
                session.force_exclude(id);
            }),
            ["repair"] => {
                let undo = session.undo_set();
                match tool.execute(
                    &analysis,
                    &resildb_core::RepairPlan::with_undo_set(&[], undo),
                ) {
                    Ok(report) => println!(
                        "repaired: {} compensating statements, {}/{} transactions saved",
                        report.outcome.statements.len(),
                        report.saved,
                        report.tracked_total
                    ),
                    Err(e) => println!("repair failed: {e}"),
                }
                break;
            }
            other => println!("unknown command {other:?}; type `help`"),
        }
    }
}

fn with_id(raw: &str, f: impl FnOnce(i64)) {
    match raw.parse::<i64>() {
        Ok(id) => f(id),
        Err(_) => println!("not a transaction id: {raw}"),
    }
}
