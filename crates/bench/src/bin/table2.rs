//! Regenerates paper Table 2: database parameters and verified loaded
//! cardinalities.

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
fn main() {
    print!("{}", resildb_bench::table2::report());
}
