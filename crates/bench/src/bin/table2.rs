//! Regenerates paper Table 2: database parameters and verified loaded
//! cardinalities.

fn main() {
    print!("{}", resildb_bench::table2::report());
}
