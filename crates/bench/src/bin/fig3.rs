//! Regenerates paper Figure 3: prints the dependency-graph DOT to stdout.
//! Pipe through GraphViz (`fig3 | dot -Tpng -o fig3.png`) to render.
//! `--json-out [PATH]` additionally emits a machine-readable report
//! (default `BENCH_pr4.json`).

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_bench::json::{self, Probe};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_out = json::json_out_path(&args);
    let probe = json_out.as_ref().map(|_| Probe::new());
    let dot = resildb_bench::fig3::render_probed(probe.as_ref());
    print!("{dot}");
    if let (Some(path), Some(probe)) = (json_out, probe) {
        let results = format!(
            "{{\"dot_bytes\":{},\"edges\":{}}}",
            dot.len(),
            dot.matches("->").count()
        );
        json::write_report(
            &path,
            "fig3",
            &results,
            &probe.snapshot(),
            &probe.run_meta(),
        )
        .expect("write json report");
        eprintln!("JSON report written to {path}");
    }
}
