//! Regenerates paper Figure 3: prints the dependency-graph DOT to stdout.
//! Pipe through GraphViz (`fig3 | dot -Tpng -o fig3.png`) to render.

// Harness target: setup failures panic with context by design.
#![allow(clippy::unwrap_used, clippy::expect_used)]
fn main() {
    print!("{}", resildb_bench::fig3::render());
}
