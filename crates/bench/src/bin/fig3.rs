//! Regenerates paper Figure 3: prints the dependency-graph DOT to stdout.
//! Pipe through GraphViz (`fig3 | dot -Tpng -o fig3.png`) to render.

fn main() {
    print!("{}", resildb_bench::fig3::render());
}
