//! Machine-readable benchmark output (`--json-out`).
//!
//! Every figure binary can emit one JSON document combining its figure
//! results with a telemetry snapshot of an instrumented run — per-stage
//! latency histograms (p50/p95/p99) for the proxy rewrite, engine
//! execute/WAL/commit and repair phases, plus the layer counters. The CI
//! `bench-smoke` job runs `fig4 --quick --json-out` and fails when the
//! required metric keys are missing from the artifact.

use std::cell::RefCell;

use resildb_core::{telemetry::export, Connection, MetricsSnapshot, Telemetry};

/// Default output path of `--json-out` when no explicit path follows.
pub const DEFAULT_JSON_PATH: &str = "BENCH_pr4.json";

/// Parses `--json-out [PATH]` from a binary's argument list. Returns
/// `None` when the flag is absent; the default path when the flag is last
/// or followed by another flag.
pub fn json_out_path(args: &[String]) -> Option<String> {
    let at = args.iter().position(|a| a == "--json-out")?;
    Some(match args.get(at + 1) {
        Some(next) if !next.starts_with("--") => next.clone(),
        _ => DEFAULT_JSON_PATH.to_string(),
    })
}

/// A telemetry probe shared by the instrumented cells of one figure run:
/// one recording domain threaded through every simulation context and
/// proxy configuration, plus the last captured per-connection metrics
/// fold (which adds the proxy rewrite-cache/enforcement counters and the
/// simulation substrate counters to the registry's spans).
#[derive(Debug)]
pub struct Probe {
    telemetry: Telemetry,
    captured: RefCell<Option<MetricsSnapshot>>,
}

impl Default for Probe {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe {
    /// A probe with a fresh recording telemetry domain.
    pub fn new() -> Self {
        Self {
            telemetry: Telemetry::recording(),
            captured: RefCell::new(None),
        }
    }

    /// The shared telemetry domain, for `SimContext::with_telemetry` and
    /// `ProxyConfigBuilder::telemetry`.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Captures the full metrics fold of `conn` (registry spans + the
    /// connection's layer counters), replacing any earlier capture. Call
    /// it at the end of a measured cell; the span histograms are
    /// cumulative across cells because the domain is shared.
    pub fn capture(&self, conn: &dyn Connection) {
        *self.captured.borrow_mut() = Some(conn.metrics());
    }

    /// The final snapshot: the last capture if any, else the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.captured
            .borrow()
            .clone()
            .unwrap_or_else(|| self.telemetry.snapshot())
    }
}

/// Writes the combined document: `results` must already be a JSON value
/// (array or object) rendered by the caller.
///
/// # Errors
///
/// File I/O failures.
pub fn write_report(
    path: &str,
    bench: &str,
    results: &str,
    snapshot: &MetricsSnapshot,
) -> std::io::Result<()> {
    let doc = format!(
        "{{\"bench\":\"{bench}\",\"results\":{results},\"metrics\":{}}}\n",
        export::to_json(snapshot)
    );
    std::fs::write(path, doc)
}

/// Escapes a string for inclusion in hand-rolled JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (non-finite values render as `0`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_out_parsing() {
        assert_eq!(json_out_path(&args(&["fig4"])), None);
        assert_eq!(
            json_out_path(&args(&["fig4", "--json-out"])),
            Some(DEFAULT_JSON_PATH.to_string())
        );
        assert_eq!(
            json_out_path(&args(&["fig4", "--json-out", "out.json", "--quick"])),
            Some("out.json".to_string())
        );
        assert_eq!(
            json_out_path(&args(&["fig4", "--json-out", "--quick"])),
            Some(DEFAULT_JSON_PATH.to_string())
        );
    }

    #[test]
    fn probe_falls_back_to_registry_snapshot() {
        let probe = Probe::new();
        probe.telemetry().count("x", 3);
        assert_eq!(probe.snapshot().counter("x"), 3);
    }

    #[test]
    fn json_helpers_escape_and_format() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
