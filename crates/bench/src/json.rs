//! Machine-readable benchmark output (`--json-out`).
//!
//! Every figure binary can emit one JSON document combining its figure
//! results with a telemetry snapshot of an instrumented run — per-stage
//! latency histograms (p50/p95/p99) for the proxy rewrite, engine
//! execute/WAL/commit and repair phases, plus the layer counters. The CI
//! `bench-smoke` job runs `fig4 --quick --json-out` and fails when the
//! required metric keys are missing from the artifact.

use std::cell::RefCell;
use std::time::{SystemTime, UNIX_EPOCH};

use resildb_core::{telemetry::export, telemetry::trace, Connection, MetricsSnapshot, Telemetry};

/// Default output path of `--json-out` when no explicit path follows.
pub const DEFAULT_JSON_PATH: &str = "BENCH_pr4.json";

/// Default `--json-out` path in threaded mode (`fig4 --threads N`), whose
/// document carries the wall-clock scaling curve instead of the cells.
pub const DEFAULT_THREADS_JSON_PATH: &str = "BENCH_pr6.json";

/// Parses `--threads N` from a binary's argument list. Returns `None`
/// when the flag is absent; panics on a missing or malformed count (a
/// usage error worth failing loudly on in a harness binary).
pub fn threads_arg(args: &[String]) -> Option<usize> {
    let at = args.iter().position(|a| a == "--threads")?;
    let n = args
        .get(at + 1)
        .and_then(|v| v.parse::<usize>().ok())
        .expect("--threads requires a positive integer");
    assert!(n >= 1, "--threads requires a positive integer");
    Some(n)
}

/// Default output path of `--trace-out` when no explicit path follows
/// (Chrome Trace Event Format — loadable in Perfetto).
pub const DEFAULT_TRACE_PATH: &str = "BENCH_trace.json";

/// Parses `flag [PATH]` from a binary's argument list: `None` when the
/// flag is absent, `default` when it is last or followed by another flag.
pub fn flag_path(args: &[String], flag: &str, default: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    Some(match args.get(at + 1) {
        Some(next) if !next.starts_with("--") => next.clone(),
        _ => default.to_string(),
    })
}

/// Parses `--json-out [PATH]` from a binary's argument list. Returns
/// `None` when the flag is absent; the default path when the flag is last
/// or followed by another flag.
pub fn json_out_path(args: &[String]) -> Option<String> {
    flag_path(args, "--json-out", DEFAULT_JSON_PATH)
}

/// Parses `--trace-out [PATH]` (same conventions as [`json_out_path`]).
/// A `.jsonl` path selects JSONL output; anything else gets Chrome Trace
/// Event Format.
pub fn trace_out_path(args: &[String]) -> Option<String> {
    flag_path(args, "--trace-out", DEFAULT_TRACE_PATH)
}

/// Provenance stamped into every `--json-out` report: which commit and
/// proxy configuration produced the numbers, and when.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// `git rev-parse HEAD` of the working tree, or `"unknown"`.
    pub git_sha: String,
    /// UTC wall-clock time of the run, ISO-8601 (`YYYY-MM-DDThh:mm:ssZ`).
    pub timestamp_utc: String,
    /// Active proxy configuration summary (from `ProxyConfig::summary`),
    /// when the benchmark ran through the proxy.
    pub proxy_config: Option<String>,
}

impl RunMeta {
    /// Collects the current provenance. `proxy_config` is the active
    /// configuration summary, if the bench exercised the proxy.
    pub fn collect(proxy_config: Option<String>) -> Self {
        Self {
            git_sha: git_head_sha(),
            timestamp_utc: utc_timestamp(),
            proxy_config,
        }
    }

    /// Renders the meta block as a JSON object.
    pub fn to_json(&self) -> String {
        let proxy = match &self.proxy_config {
            Some(s) => json_str(s),
            None => "null".to_string(),
        };
        format!(
            "{{\"git_sha\":{},\"timestamp_utc\":{},\"proxy_config\":{proxy}}}",
            json_str(&self.git_sha),
            json_str(&self.timestamp_utc),
        )
    }
}

fn git_head_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Formats the current time as ISO-8601 UTC without any date/time crate,
/// using the standard days-from-civil inversion.
fn utc_timestamp() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // Civil-from-days (Howard Hinnant's algorithm), valid for the Unix era.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mo <= 2 { y + 1 } else { y };
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// A telemetry probe shared by the instrumented cells of one figure run:
/// one recording domain threaded through every simulation context and
/// proxy configuration, plus the last captured per-connection metrics
/// fold (which adds the proxy rewrite-cache/enforcement counters and the
/// simulation substrate counters to the registry's spans).
#[derive(Debug)]
pub struct Probe {
    telemetry: Telemetry,
    captured: RefCell<Option<MetricsSnapshot>>,
    proxy_config: RefCell<Option<String>>,
}

impl Default for Probe {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe {
    /// A probe with a fresh recording telemetry domain.
    pub fn new() -> Self {
        Self {
            telemetry: Telemetry::recording(),
            captured: RefCell::new(None),
            proxy_config: RefCell::new(None),
        }
    }

    /// Turns on the telemetry domain's flight recorder, so the run also
    /// captures a trace-event window (for `--trace-out`).
    pub fn enable_tracing(&self) {
        self.telemetry.flight().set_enabled(true);
    }

    /// Records the active proxy configuration summary (for the report's
    /// meta block). Later calls win; figures run one configuration.
    pub fn note_proxy_config(&self, summary: String) {
        *self.proxy_config.borrow_mut() = Some(summary);
    }

    /// Provenance for [`write_report`], including any noted proxy config.
    pub fn run_meta(&self) -> RunMeta {
        RunMeta::collect(self.proxy_config.borrow().clone())
    }

    /// The shared telemetry domain, for `SimContext::with_telemetry` and
    /// `ProxyConfigBuilder::telemetry`.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Captures the full metrics fold of `conn` (registry spans + the
    /// connection's layer counters), replacing any earlier capture. Call
    /// it at the end of a measured cell; the span histograms are
    /// cumulative across cells because the domain is shared.
    pub fn capture(&self, conn: &dyn Connection) {
        *self.captured.borrow_mut() = Some(conn.metrics());
    }

    /// Captures an already-assembled snapshot (the threaded runner merges
    /// its per-worker snapshots with the database fold before handing the
    /// result over). Replaces any earlier capture, like [`Probe::capture`].
    pub fn capture_snapshot(&self, snapshot: MetricsSnapshot) {
        *self.captured.borrow_mut() = Some(snapshot);
    }

    /// The final snapshot: the last capture if any, else the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.captured
            .borrow()
            .clone()
            .unwrap_or_else(|| self.telemetry.snapshot())
    }
}

/// Writes the combined document: `results` must already be a JSON value
/// (array or object) rendered by the caller.
///
/// # Errors
///
/// File I/O failures.
pub fn write_report(
    path: &str,
    bench: &str,
    results: &str,
    snapshot: &MetricsSnapshot,
    meta: &RunMeta,
) -> std::io::Result<()> {
    let doc = format!(
        "{{\"bench\":\"{bench}\",\"meta\":{},\"results\":{results},\"metrics\":{}}}\n",
        meta.to_json(),
        export::to_json(snapshot)
    );
    std::fs::write(path, doc)
}

/// Writes a flight-recorder capture: JSONL when `path` ends in `.jsonl`,
/// Chrome Trace Event Format (Perfetto-loadable) otherwise.
///
/// # Errors
///
/// File I/O failures.
pub fn write_trace(path: &str, snapshot: &trace::TraceSnapshot) -> std::io::Result<()> {
    let doc = if path.ends_with(".jsonl") {
        trace::to_jsonl(snapshot)
    } else {
        trace::to_chrome_trace(snapshot)
    };
    std::fs::write(path, doc)
}

/// Escapes a string for inclusion in hand-rolled JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (non-finite values render as `0`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn threads_arg_parsing() {
        assert_eq!(threads_arg(&args(&["fig4"])), None);
        assert_eq!(threads_arg(&args(&["fig4", "--threads", "4"])), Some(4));
        assert_eq!(
            threads_arg(&args(&["fig4", "--threads", "8", "--quick"])),
            Some(8)
        );
    }

    #[test]
    fn json_out_parsing() {
        assert_eq!(json_out_path(&args(&["fig4"])), None);
        assert_eq!(
            json_out_path(&args(&["fig4", "--json-out"])),
            Some(DEFAULT_JSON_PATH.to_string())
        );
        assert_eq!(
            json_out_path(&args(&["fig4", "--json-out", "out.json", "--quick"])),
            Some("out.json".to_string())
        );
        assert_eq!(
            json_out_path(&args(&["fig4", "--json-out", "--quick"])),
            Some(DEFAULT_JSON_PATH.to_string())
        );
    }

    #[test]
    fn probe_falls_back_to_registry_snapshot() {
        let probe = Probe::new();
        probe.telemetry().count("x", 3);
        assert_eq!(probe.snapshot().counter("x"), 3);
    }

    #[test]
    fn json_helpers_escape_and_format() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn trace_out_parsing() {
        assert_eq!(trace_out_path(&args(&["fig4"])), None);
        assert_eq!(
            trace_out_path(&args(&["fig4", "--trace-out"])),
            Some(DEFAULT_TRACE_PATH.to_string())
        );
        assert_eq!(
            trace_out_path(&args(&["fig4", "--trace-out", "t.jsonl", "--quick"])),
            Some("t.jsonl".to_string())
        );
    }

    #[test]
    fn run_meta_renders_valid_fields() {
        let meta = RunMeta::collect(Some("flavor=postgres".into()));
        let json = meta.to_json();
        assert!(json.contains("\"git_sha\":\""));
        assert!(json.contains("\"proxy_config\":\"flavor=postgres\""));
        // ISO-8601: YYYY-MM-DDThh:mm:ssZ.
        let ts = &meta.timestamp_utc;
        assert_eq!(ts.len(), 20, "timestamp {ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        assert!(ts.ends_with('Z'));
        assert!(ts.starts_with("20"), "unix-era year: {ts}");
        let no_proxy = RunMeta::collect(None).to_json();
        assert!(no_proxy.contains("\"proxy_config\":null"));
    }

    #[test]
    fn probe_notes_proxy_config_into_meta() {
        let probe = Probe::new();
        assert_eq!(probe.run_meta().proxy_config, None);
        probe.note_proxy_config("granularity=row".into());
        assert_eq!(
            probe.run_meta().proxy_config.as_deref(),
            Some("granularity=row")
        );
    }

    #[test]
    fn probe_tracing_starts_disabled_until_enabled() {
        let probe = Probe::new();
        assert!(!probe.telemetry().flight().is_enabled());
        probe.enable_tracing();
        assert!(probe.telemetry().flight().is_enabled());
    }
}
