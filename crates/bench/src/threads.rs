//! Wall-clock thread-scaling benchmark (`fig4 --threads N`).
//!
//! The figure-4 cells measure overhead in *virtual* time on one
//! connection. This runner answers the orthogonal question the paper's
//! production setting poses: does the stack actually scale when N clients
//! hit it from N OS threads at once? It drives real threads through real
//! connections against one shared database in the simulator's wall-clock
//! mode ([`resildb_core::SimContext::set_realtime`]): every virtual-time
//! charge is also slept off at the wire layer, outside the engine's
//! latches, so the measured wall-clock throughput scales exactly insofar
//! as the locking design lets concurrent sessions overlap their I/O and
//! network waits.
//!
//! Each worker is pinned to its own TPC-C home warehouse (disjoint row
//! footprints — contention exercises the lock manager's striping and the
//! WAL group commit, not artificial row conflicts) and runs the paper's
//! read/write mix. Per-worker counters are collected in per-thread
//! snapshots and merged with [`MetricsSnapshot::merge`]; the shared
//! database's metrics are folded exactly once.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use resildb_core::{
    prepare_database, CostModel, Database, Driver, Flavor, LinkProfile, MetricsSnapshot, Micros,
    NativeDriver, Telemetry, TrackingProxy,
};
use resildb_tpcc::{Mix, TpccConfig, TpccRunner};

use crate::fig4::Scale;
use crate::json::Probe;
use crate::{costs, Setup};

/// Warehouses in the threaded database: one home warehouse per worker at
/// the largest supported thread count, and the large-footprint `W = 10`
/// sizing of Figure 4.
const WAREHOUSES: u32 = 10;

/// Buffer pool for the threaded cells: large enough that the database is
/// cache-resident. The wall-clock sleeps then come from the network round
/// trips and log forces — costs that are *per statement* and therefore
/// identical at every thread count — instead of buffer-pool misses, whose
/// rate shifts with concurrency and would confound the scaling curve.
const POOL_PAGES: usize = 8_192;

/// Cost model of the threaded cells: the networked Figure-4 model with a
/// heavier synchronous log force — precisely the cost the WAL group
/// commit amortizes across concurrently committing workers.
fn wall_clock_costs() -> CostModel {
    CostModel {
        log_force: Micros::new(2_000),
        ..costs::networked()
    }
}

/// Client link of the threaded cells: a WAN-ish 1 ms round trip rather
/// than the LAN's 200 µs. On a container with a single CPU, wall-clock
/// scaling can only come from overlapped waiting, so per-statement waits
/// must dominate per-statement CPU by a wide margin — and the link round
/// trip is the per-statement cost, charged at the wire layer where the
/// accrued wait is slept off outside every engine latch.
fn wall_clock_link() -> LinkProfile {
    LinkProfile {
        rtt: Micros::new(1_000),
        per_byte_ns: 80,
    }
}

/// One point of the scaling curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadCell {
    /// Worker threads driving the database concurrently.
    pub threads: usize,
    /// Baseline wall-clock throughput (committed txns per second).
    pub base_tps: f64,
    /// Wall-clock throughput through the tracking proxy.
    pub proxy_tps: f64,
}

impl ThreadCell {
    /// Tracking overhead in percent at this thread count.
    pub fn overhead_pct(&self) -> f64 {
        crate::pct(self.base_tps, self.proxy_tps)
    }
}

/// The thread counts measured for `--threads n`: powers of two up to and
/// including `n` (so `--threads 8` yields the 1→8 scaling curve, and the
/// CI smoke's `--threads 4` still measures the 1-thread anchor).
pub fn thread_counts(n: usize) -> Vec<usize> {
    let n = n.max(1);
    let mut counts = vec![];
    let mut c = 1;
    while c < n {
        counts.push(c);
        c *= 2;
    }
    counts.push(n);
    counts
}

/// Read/write mix units each worker runs (one unit is 2 New-Order +
/// 2 Payment + 1 Delivery). The total is held constant across thread
/// counts — workers split it — so every point of the curve measures the
/// same transaction volume and the single-thread anchor gets the same
/// (long) measurement window as the crowded cells.
fn mix_units(scale: Scale, threads: usize) -> usize {
    let total = match scale {
        Scale::Quick => 4,
        Scale::Full => 64,
    };
    (total / threads).max(1)
}

/// Builds and loads the shared database plus the connection factory for
/// `setup`. Loading runs in pure virtual time; the caller flips the
/// simulation into wall-clock mode afterwards.
fn build(setup: Setup, config: &TpccConfig, probe: Option<&Probe>) -> (Database, Arc<dyn Driver>) {
    let sim = crate::sim_context(wall_clock_costs(), POOL_PAGES, probe.map(Probe::telemetry));
    let flavor = Flavor::Postgres;
    let link = wall_clock_link();
    let db = Database::new("bench", flavor, sim);
    let driver: Arc<dyn Driver> = match setup {
        Setup::Baseline => Arc::new(NativeDriver::new(db.clone(), link)),
        Setup::Tracked => {
            let native = NativeDriver::new(db.clone(), LinkProfile::local());
            prepare_database(&mut *native.connect().expect("native connect"))
                .expect("prepare tracking tables");
            // Same paper-literal tracking set as the figure-4 cells.
            let mut builder = resildb_core::ProxyConfig::builder(flavor)
                .record_provenance(false)
                .record_read_only_deps(true);
            if let Some(probe) = probe {
                builder = builder.telemetry(probe.telemetry().clone());
            }
            let pc = builder.build();
            if let Some(probe) = probe {
                probe.note_proxy_config(pc.summary());
            }
            Arc::new(TrackingProxy::single_proxy(db.clone(), link, pc))
        }
    };
    resildb_tpcc::Loader::new(config.clone(), 42)
        .load(&mut *driver.connect().expect("load connect"))
        .expect("load");
    (db, driver)
}

/// Runs `threads` workers through `setup`, returning wall-clock TPS and
/// the merged per-worker + database metrics fold.
fn wall_clock_tps(
    setup: Setup,
    threads: usize,
    scale: Scale,
    probe: Option<&Probe>,
) -> (f64, MetricsSnapshot) {
    let config = TpccConfig::scaled(WAREHOUSES);
    let (db, driver) = build(setup, &config, probe);
    db.sim().set_realtime(true);
    let mix = Mix::read_write(mix_units(scale, threads));
    // Workers connect before the barrier so measured time is pure mix.
    let barrier = Arc::new(Barrier::new(threads + 1));
    let (snapshots, elapsed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let driver = Arc::clone(&driver);
                let barrier = Arc::clone(&barrier);
                let config = config.clone();
                let mix = &mix;
                scope.spawn(move || {
                    let mut conn = driver.connect().expect("worker connect");
                    let mut runner = TpccRunner::new(config, 100 + t as u64)
                        .without_annotations()
                        .with_home_warehouse(t as u32 % WAREHOUSES + 1);
                    barrier.wait();
                    let start = Instant::now();
                    let committed = mix.run(&mut runner, &mut *conn).expect("worker mix");
                    // Per-worker probe: its own recording domain, folded
                    // into a snapshot the main thread merges.
                    let tel = Telemetry::recording();
                    tel.count("bench.worker.committed", committed);
                    tel.count(
                        "bench.worker.deadlock_retries",
                        runner.stats.deadlock_retries,
                    );
                    tel.record_span_ns("bench.worker.wall", {
                        let nanos = start.elapsed().as_nanos();
                        u64::try_from(nanos).unwrap_or(u64::MAX)
                    });
                    tel.snapshot()
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let snapshots: Vec<MetricsSnapshot> = handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect();
        (snapshots, t0.elapsed().as_secs_f64())
    });
    db.sim().set_realtime(false);
    // Merge the per-worker snapshots (counters add), then fold the shared
    // database's metrics exactly once.
    let mut merged = MetricsSnapshot::default();
    for snap in &snapshots {
        merged.merge(snap);
    }
    merged.merge(&db.metrics());
    let committed = merged.counter("bench.worker.committed");
    let tps = committed as f64 / elapsed.max(f64::EPSILON);
    (tps, merged)
}

/// Runs the wall-clock scaling curve for every count in `counts`. The
/// baseline for each thread count is measured once and reused in the
/// cell, and the last tracked run's merged metrics land in `probe`.
pub fn run(counts: &[usize], scale: Scale, probe: Option<&Probe>) -> Vec<ThreadCell> {
    counts
        .iter()
        .map(|&threads| {
            let (base_tps, _) = wall_clock_tps(Setup::Baseline, threads, scale, probe);
            let (proxy_tps, merged) = wall_clock_tps(Setup::Tracked, threads, scale, probe);
            if let Some(probe) = probe {
                probe.capture_snapshot(merged);
            }
            ThreadCell {
                threads,
                base_tps,
                proxy_tps,
            }
        })
        .collect()
}

/// Renders the scaling curve as a report table.
pub fn render(cells: &[ThreadCell]) -> String {
    let mut out = String::from(
        "\n=== Wall-clock thread scaling (read/write mix, W=10, one home warehouse per worker) ===\n",
    );
    out.push_str(&format!(
        "{:<8} {:>14} {:>14} {:>10} {:>14}\n",
        "threads", "base tps", "tracked tps", "overhead", "base scaling"
    ));
    let anchor = cells.first().map_or(0.0, |c| c.base_tps);
    for c in cells {
        let scaling = if anchor > 0.0 {
            c.base_tps / anchor
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<8} {:>14.2} {:>14.2} {:>9.1}% {:>13.2}x\n",
            c.threads,
            c.base_tps,
            c.proxy_tps,
            c.overhead_pct(),
            scaling,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_double_up_to_n() {
        assert_eq!(thread_counts(1), vec![1]);
        assert_eq!(thread_counts(4), vec![1, 2, 4]);
        assert_eq!(thread_counts(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_counts(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_counts(0), vec![1]);
    }

    #[test]
    fn two_threads_beat_one_wall_clock() {
        let cells = run(&[1, 2], Scale::Quick, None);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert!(c.base_tps > 0.0 && c.proxy_tps > 0.0, "cell {c:?}");
        }
        assert!(
            cells[1].base_tps > cells[0].base_tps,
            "2 threads ({:.1} tps) must out-run 1 thread ({:.1} tps): \
             overlapped waits are the whole point",
            cells[1].base_tps,
            cells[0].base_tps
        );
    }

    #[test]
    fn render_reports_scaling_column() {
        let cells = vec![
            ThreadCell {
                threads: 1,
                base_tps: 100.0,
                proxy_tps: 80.0,
            },
            ThreadCell {
                threads: 4,
                base_tps: 350.0,
                proxy_tps: 280.0,
            },
        ];
        let text = render(&cells);
        assert!(text.contains("3.50x"));
        assert!(text.contains("20.0%"));
    }
}
