//! Ablation of the tracking overhead (paper §6's optimisation
//! discussion): how much of the penalty comes from read-set harvesting vs.
//! the commit-time `trans_dep` insert vs. trid stamping alone.

use resildb_core::{Flavor, LinkProfile, ProxyConfig, SimContext};
use resildb_tpcc::{Mix, TpccConfig, TpccRunner};

use crate::{costs, prepare, Setup};

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Human-readable configuration name.
    pub name: &'static str,
    /// Throughput in transactions per virtual second.
    pub tps: f64,
    /// Overhead vs. the baseline, percent.
    pub overhead_pct: f64,
}

fn run_config(name: &'static str, setup: Setup, pc: Option<ProxyConfig>, quick: bool) -> f64 {
    let config = TpccConfig::scaled(10);
    let sim = SimContext::new(costs::networked(), costs::POOL_PAGES);
    let mut bench = prepare(
        Flavor::Postgres,
        setup,
        &config,
        sim,
        LinkProfile::lan(),
        pc,
        42,
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    let mix = if quick {
        Mix::read_write(4)
    } else {
        Mix::read_write(40)
    };
    let mut runner = TpccRunner::new(config, 7);
    if !bench.annotated {
        runner = runner.without_annotations();
    }
    let t0 = bench.db.sim().clock().now();
    let committed = mix.run(&mut runner, &mut *bench.conn).expect("mix");
    let elapsed = (bench.db.sim().clock().now() - t0).as_secs_f64();
    committed as f64 / elapsed
}

/// Runs the ablation on the read/write mix (where every mechanism is
/// exercised) and returns rows ordered from no tracking to full tracking.
pub fn run(quick: bool) -> Vec<AblationRow> {
    let base = run_config("baseline", Setup::Baseline, None, quick);
    let mut rows = vec![AblationRow {
        name: "baseline (no tracking)",
        tps: base,
        overhead_pct: 0.0,
    }];
    let full = ProxyConfig::new(Flavor::Postgres);
    let mut paper_faithful = full.clone();
    paper_faithful.record_provenance = false;
    let mut no_reads = paper_faithful.clone();
    no_reads.track_reads = false;
    let mut no_commit = paper_faithful.clone();
    no_commit.record_deps_at_commit = false;
    let mut stamp_only = paper_faithful.clone();
    stamp_only.track_reads = false;
    stamp_only.record_deps_at_commit = false;
    for (name, pc) in [
        ("trid stamping only", stamp_only),
        ("+ read-set harvesting", no_commit),
        ("+ commit-time trans_dep insert", no_reads),
        ("paper-faithful tracking", paper_faithful),
        ("full tracking (with provenance)", full),
    ] {
        let tps = run_config(name, Setup::Tracked, Some(pc), quick);
        rows.push(AblationRow {
            name,
            tps,
            overhead_pct: crate::pct(base, tps),
        });
    }
    rows
}

/// Renders the ablation table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::from(
        "Ablation: tracking-overhead decomposition (read/write mix, W=10, networked)\n\n",
    );
    out.push_str(&format!(
        "{:<34} {:>12} {:>10}\n",
        "configuration", "tps", "overhead"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:>12.2} {:>9.1}%\n",
            r.name, r.tps, r.overhead_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_tracking_costs_at_least_as_much_as_stamping_only() {
        let rows = run(true);
        assert_eq!(rows.len(), 6);
        let stamp = rows.iter().find(|r| r.name.contains("stamping")).unwrap();
        let full = rows
            .iter()
            .find(|r| r.name.starts_with("full tracking"))
            .unwrap();
        assert!(
            full.tps <= stamp.tps,
            "full {:.2} vs stamp {:.2}",
            full.tps,
            stamp.tps
        );
    }
}
