//! The inter-transaction dependency graph, damage-closure computation,
//! false-dependency filtering and GraphViz export (paper §3.3, §5.3,
//! Figure 3).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use resildb_analyze::{DotBuilder, EdgeStyle, FILL_ATTACK, FILL_CLOSURE};

/// How a dependency edge arose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeKind {
    /// The dependent transaction's SELECT read a row last written by the
    /// depended-on transaction (harvested online by the proxy).
    Read {
        /// Columns of the mediating table the reader referenced.
        read_columns: Vec<String>,
    },
    /// The dependent transaction updated or deleted a row last written by
    /// the depended-on transaction (reconstructed from the log at repair
    /// time).
    Write,
}

/// Provenance of one dependency edge (an edge may have several).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeProvenance {
    /// Table that mediated the dependency.
    pub table: String,
    /// How the dependency arose.
    pub kind: EdgeKind,
}

/// A DBA rule declaring certain dependencies ignorable (paper §5.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FalseDepRule {
    /// Ignore every dependency mediated by this table (e.g. a scratch
    /// table with no semantic significance).
    IgnoreTable(String),
    /// Ignore dependencies that exist only because of the named *derived*
    /// columns (e.g. TPC-C `warehouse.w_ytd`, recomputable from orders):
    /// an edge provenance is ignored when the writer changed nothing but
    /// these columns and the reader (when known) did not read any of them.
    IgnoreDerivedColumns {
        /// Mediating table.
        table: String,
        /// Derived column names.
        columns: Vec<String>,
    },
}

impl FalseDepRule {
    /// Builds [`FalseDepRule::IgnoreDerivedColumns`] rules from the static
    /// analyzer's derivable-column inference, one rule per table. This
    /// replaces hand-maintained DBA rule lists for the pure-accumulator
    /// pattern (TPC-C's `w_ytd` et al.): a column the workload only ever
    /// self-increments and never reads cannot carry information flow, so
    /// dependencies that exist only through it are false.
    pub fn from_derivable_columns(cols: &[resildb_analyze::DerivableColumn]) -> Vec<FalseDepRule> {
        let mut by_table: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for c in cols {
            let cols = by_table.entry(c.table.clone()).or_default();
            if !cols.iter().any(|x| x.eq_ignore_ascii_case(&c.column)) {
                cols.push(c.column.clone());
            }
        }
        by_table
            .into_iter()
            .map(|(table, columns)| FalseDepRule::IgnoreDerivedColumns { table, columns })
            .collect()
    }

    /// Whether this rule dismisses an edge provenance, given the columns
    /// the *writer* (the depended-on transaction) changed in that table.
    fn ignores(&self, prov: &EdgeProvenance, writer_changed: Option<&BTreeSet<String>>) -> bool {
        match self {
            FalseDepRule::IgnoreTable(t) => t.eq_ignore_ascii_case(&prov.table),
            FalseDepRule::IgnoreDerivedColumns { table, columns } => {
                if !table.eq_ignore_ascii_case(&prov.table) {
                    return false;
                }
                // Writer must have touched nothing beyond the derived
                // columns (the bookkeeping trid column never counts).
                let Some(changed) = writer_changed else {
                    return false; // inserted rows: a real dependency
                };
                let only_derived = changed
                    .iter()
                    .filter(|c| !resildb_proxy::is_tracking_column(c))
                    .all(|c| columns.iter().any(|d| d.eq_ignore_ascii_case(c)));
                if !only_derived {
                    return false;
                }
                // And the reader (if we know what it read) must not have
                // consumed the derived columns. Empty provenance means the
                // read columns are *unknown* (wildcard selects leave none),
                // not "read nothing": the reader may well have consumed the
                // derived column, so the edge must be kept.
                match &prov.kind {
                    EdgeKind::Read { read_columns } => {
                        !read_columns.is_empty()
                            && !read_columns
                                .iter()
                                .any(|c| columns.iter().any(|d| d.eq_ignore_ascii_case(c)))
                    }
                    EdgeKind::Write => true,
                }
            }
        }
    }
}

/// The dependency graph over proxy transaction ids.
///
/// Edges point from a transaction to the transactions it *depends on*.
/// Damage analysis walks the reverse direction: everything that
/// transitively depends on the attack set is corrupted.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// txn → set of txns it depends on.
    deps: BTreeMap<i64, BTreeSet<i64>>,
    /// txn → set of txns depending on it.
    rdeps: BTreeMap<i64, BTreeSet<i64>>,
    /// (dependent, dependee) → provenance list.
    edges: HashMap<(i64, i64), Vec<EdgeProvenance>>,
    /// txn → symbolic name (from the `annot` table).
    labels: BTreeMap<i64, String>,
    /// (writer txn, table) → columns it changed there (None entry absent
    /// means the writer inserted whole rows / unknown).
    writer_changed: HashMap<(i64, String), BTreeSet<String>>,
    /// (writer txn, table) → writer inserted whole rows there.
    writer_inserted: BTreeSet<(i64, String)>,
}

impl DepGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// All known transaction ids (nodes).
    pub fn transactions(&self) -> BTreeSet<i64> {
        let mut all: BTreeSet<i64> = self.labels.keys().copied().collect();
        all.extend(self.deps.keys());
        all.extend(self.rdeps.keys());
        all
    }

    /// Adds (or extends) an edge: `dependent` depends on `dependee`.
    pub fn add_edge(&mut self, dependent: i64, dependee: i64, prov: EdgeProvenance) {
        if dependent == dependee {
            return;
        }
        self.deps.entry(dependent).or_default().insert(dependee);
        self.rdeps.entry(dependee).or_default().insert(dependent);
        self.edges
            .entry((dependent, dependee))
            .or_default()
            .push(prov);
    }

    /// Names a transaction (for DOT rendering).
    pub fn set_label(&mut self, txn: i64, label: impl Into<String>) {
        self.labels.insert(txn, label.into());
    }

    /// The label of `txn`, defaulting to `txn_<id>`.
    pub fn label(&self, txn: i64) -> String {
        self.labels
            .get(&txn)
            .cloned()
            .unwrap_or_else(|| format!("txn_{txn}"))
    }

    /// Records which columns `writer` changed in `table` (union across its
    /// updates), used by [`FalseDepRule::IgnoreDerivedColumns`].
    pub fn note_writer_columns(
        &mut self,
        writer: i64,
        table: &str,
        columns: impl IntoIterator<Item = String>,
    ) {
        self.writer_changed
            .entry((writer, table.to_string()))
            .or_default()
            .extend(columns);
    }

    /// Records that `writer` inserted whole rows into `table` (dependencies
    /// on inserted rows are never derived-column artefacts).
    pub fn note_writer_insert(&mut self, writer: i64, table: &str) {
        self.writer_inserted.insert((writer, table.to_string()));
    }

    /// The direct dependencies of `txn`.
    pub fn dependencies_of(&self, txn: i64) -> BTreeSet<i64> {
        self.deps.get(&txn).cloned().unwrap_or_default()
    }

    /// The direct dependents of `txn`.
    pub fn dependents_of(&self, txn: i64) -> BTreeSet<i64> {
        self.rdeps.get(&txn).cloned().unwrap_or_default()
    }

    /// Provenance list of an edge.
    pub fn edge(&self, dependent: i64, dependee: i64) -> &[EdgeProvenance] {
        self.edges
            .get(&(dependent, dependee))
            .map_or(&[], Vec::as_slice)
    }

    fn edge_survives(&self, dependent: i64, dependee: i64, rules: &[FalseDepRule]) -> bool {
        let provs = self.edge(dependent, dependee);
        if provs.is_empty() {
            return true; // no provenance info: keep (safe side)
        }
        provs.iter().any(|p| {
            let key = (dependee, p.table.clone());
            let changed = if self.writer_inserted.contains(&key) {
                None
            } else {
                self.writer_changed.get(&key)
            };
            !rules.iter().any(|r| r.ignores(p, changed))
        })
    }

    /// Computes the damage closure: `initial` plus every transaction that
    /// transitively depends on it, considering only edges that survive
    /// `rules`. This is the paper's undo set.
    pub fn closure(&self, initial: &[i64], rules: &[FalseDepRule]) -> BTreeSet<i64> {
        let mut out: BTreeSet<i64> = initial.iter().copied().collect();
        let mut frontier: Vec<i64> = initial.to_vec();
        while let Some(t) = frontier.pop() {
            for &dep in self.rdeps.get(&t).map_or(&BTreeSet::new(), |s| s).iter() {
                if !out.contains(&dep) && self.edge_survives(dep, t, rules) {
                    out.insert(dep);
                    frontier.push(dep);
                }
            }
        }
        out
    }

    /// Every edge `(dependent, dependee)` dismissed by `rules` — the edges
    /// a false-dependency pruning pass removes before closure computation.
    pub fn pruned_edges(&self, rules: &[FalseDepRule]) -> BTreeSet<(i64, i64)> {
        let mut out = BTreeSet::new();
        for (dependent, dependees) in &self.deps {
            for dependee in dependees {
                if !self.edge_survives(*dependent, *dependee, rules) {
                    out.insert((*dependent, *dependee));
                }
            }
        }
        out
    }

    /// Renders the graph in GraphViz DOT (paper Figure 3): nodes carry the
    /// `annot` labels, transactions in `highlight` are filled red.
    pub fn to_dot(&self, highlight: &BTreeSet<i64>) -> String {
        self.to_dot_styled(highlight, None, None)
    }

    /// Renders the graph in GraphViz DOT with forensic styling on top of
    /// [`DepGraph::to_dot`]: `highlight` (the attack set) is filled red;
    /// members of `closure` outside the attack set — transactions damaged
    /// only transitively — are filled orange; edges in `pruned` (as
    /// produced by [`DepGraph::pruned_edges`]) are drawn dashed and gray
    /// with a `pruned` label, so a DBA can see exactly which dependencies
    /// the false-dependency rules dismissed and which survivors carried
    /// the damage.
    pub fn to_dot_styled(
        &self,
        highlight: &BTreeSet<i64>,
        closure: Option<&BTreeSet<i64>>,
        pruned: Option<&BTreeSet<(i64, i64)>>,
    ) -> String {
        let mut dot = DotBuilder::new("trans_dep");
        for txn in self.transactions() {
            let fill = if highlight.contains(&txn) {
                Some(FILL_ATTACK)
            } else if closure.is_some_and(|c| c.contains(&txn)) {
                Some(FILL_CLOSURE)
            } else {
                None
            };
            dot.node(&format!("t{txn}"), &self.label(txn), fill);
        }
        let pruned_style = EdgeStyle::pruned();
        for (dependent, dependees) in &self.deps {
            for dependee in dependees {
                // Edges drawn from dependee to dependent: data flows from
                // the earlier transaction to the one depending on it.
                let style = pruned
                    .is_some_and(|p| p.contains(&(*dependent, *dependee)))
                    .then_some(&pruned_style);
                dot.edge(&format!("t{dependee}"), &format!("t{dependent}"), style);
            }
        }
        dot.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_edge(cols: &[&str]) -> EdgeProvenance {
        EdgeProvenance {
            table: "warehouse".into(),
            kind: EdgeKind::Read {
                read_columns: cols.iter().map(|s| s.to_string()).collect(),
            },
        }
    }

    fn write_edge(table: &str) -> EdgeProvenance {
        EdgeProvenance {
            table: table.into(),
            kind: EdgeKind::Write,
        }
    }

    #[test]
    fn closure_follows_transitive_dependents() {
        let mut g = DepGraph::new();
        g.add_edge(2, 1, write_edge("t"));
        g.add_edge(3, 2, write_edge("t"));
        g.add_edge(4, 3, write_edge("t"));
        g.add_edge(10, 9, write_edge("t")); // unrelated chain
        let c = g.closure(&[1], &[]);
        assert_eq!(c, [1, 2, 3, 4].into_iter().collect());
    }

    #[test]
    fn closure_of_disconnected_node_is_itself() {
        let mut g = DepGraph::new();
        g.add_edge(2, 1, write_edge("t"));
        let c = g.closure(&[99], &[]);
        assert_eq!(c, [99].into_iter().collect());
    }

    #[test]
    fn self_edges_are_dropped() {
        let mut g = DepGraph::new();
        g.add_edge(1, 1, write_edge("t"));
        assert!(g.dependencies_of(1).is_empty());
    }

    #[test]
    fn ignore_table_rule_cuts_edges() {
        let mut g = DepGraph::new();
        g.add_edge(2, 1, write_edge("scratch"));
        g.add_edge(3, 1, write_edge("real"));
        let rules = vec![FalseDepRule::IgnoreTable("scratch".into())];
        let c = g.closure(&[1], &rules);
        assert_eq!(c, [1, 3].into_iter().collect());
    }

    #[test]
    fn rules_from_derivable_columns_group_per_table() {
        let derivable = vec![
            resildb_analyze::DerivableColumn {
                table: "warehouse".into(),
                column: "w_ytd".into(),
            },
            resildb_analyze::DerivableColumn {
                table: "district".into(),
                column: "d_ytd".into(),
            },
            resildb_analyze::DerivableColumn {
                table: "warehouse".into(),
                column: "W_YTD".into(), // case-insensitive duplicate
            },
        ];
        let rules = FalseDepRule::from_derivable_columns(&derivable);
        assert_eq!(
            rules,
            vec![
                FalseDepRule::IgnoreDerivedColumns {
                    table: "district".into(),
                    columns: vec!["d_ytd".into()],
                },
                FalseDepRule::IgnoreDerivedColumns {
                    table: "warehouse".into(),
                    columns: vec!["w_ytd".into()],
                },
            ]
        );
    }

    #[test]
    fn derived_columns_rule_matches_paper_scenario() {
        // Payment (txn 1) only bumps warehouse.w_ytd. New-Order (txn 2)
        // reads warehouse.w_tax — a row-level false dependency. A report
        // (txn 3) genuinely reads w_ytd — a true dependency.
        let mut g = DepGraph::new();
        g.note_writer_columns(1, "warehouse", ["w_ytd".to_string(), "trid".to_string()]);
        g.add_edge(2, 1, read_edge(&["w_tax", "w_id"]));
        g.add_edge(3, 1, read_edge(&["w_ytd", "w_id"]));
        let rules = vec![FalseDepRule::IgnoreDerivedColumns {
            table: "warehouse".into(),
            columns: vec!["w_ytd".into()],
        }];
        assert_eq!(g.closure(&[1], &[]), [1, 2, 3].into_iter().collect());
        assert_eq!(g.closure(&[1], &rules), [1, 3].into_iter().collect());
    }

    #[test]
    fn derived_rule_keeps_edges_from_inserting_writers() {
        let mut g = DepGraph::new();
        g.note_writer_insert(1, "warehouse");
        g.add_edge(2, 1, read_edge(&["w_tax"]));
        let rules = vec![FalseDepRule::IgnoreDerivedColumns {
            table: "warehouse".into(),
            columns: vec!["w_ytd".into()],
        }];
        assert_eq!(g.closure(&[1], &rules), [1, 2].into_iter().collect());
    }

    #[test]
    fn derived_rule_keeps_write_write_chains_on_other_columns() {
        // Writer changed w_name too: not purely derived → edge stays.
        let mut g = DepGraph::new();
        g.note_writer_columns(1, "warehouse", ["w_ytd".to_string(), "w_name".to_string()]);
        g.add_edge(2, 1, write_edge("warehouse"));
        let rules = vec![FalseDepRule::IgnoreDerivedColumns {
            table: "warehouse".into(),
            columns: vec!["w_ytd".into()],
        }];
        assert_eq!(g.closure(&[1], &rules), [1, 2].into_iter().collect());
    }

    #[test]
    fn derived_rule_cuts_ytd_write_chains() {
        // Payment → Payment chains where both only bump w_ytd.
        let mut g = DepGraph::new();
        g.note_writer_columns(1, "warehouse", ["w_ytd".to_string(), "trid".to_string()]);
        g.add_edge(2, 1, write_edge("warehouse"));
        let rules = vec![FalseDepRule::IgnoreDerivedColumns {
            table: "warehouse".into(),
            columns: vec!["w_ytd".into()],
        }];
        assert_eq!(g.closure(&[1], &rules), [1].into_iter().collect());
    }

    #[test]
    fn unknown_read_columns_keep_the_edge() {
        // A wildcard select records no read columns; the reader may have
        // consumed w_ytd, so the derived-column rule must not discard it.
        let mut g = DepGraph::new();
        g.note_writer_columns(1, "warehouse", ["w_ytd".to_string(), "trid".to_string()]);
        g.add_edge(2, 1, read_edge(&[]));
        let rules = vec![FalseDepRule::IgnoreDerivedColumns {
            table: "warehouse".into(),
            columns: vec!["w_ytd".into()],
        }];
        assert_eq!(g.closure(&[1], &rules), [1, 2].into_iter().collect());
    }

    #[test]
    fn multi_provenance_edge_survives_if_any_provenance_does() {
        let mut g = DepGraph::new();
        g.note_writer_columns(1, "warehouse", ["w_ytd".to_string()]);
        g.note_writer_columns(1, "district", ["d_next_o_id".to_string()]);
        g.add_edge(2, 1, read_edge(&["w_tax"])); // ignorable
        g.add_edge(
            2,
            1,
            EdgeProvenance {
                table: "district".into(),
                kind: EdgeKind::Read {
                    read_columns: vec!["d_next_o_id".into()],
                },
            },
        ); // real
        let rules = vec![FalseDepRule::IgnoreDerivedColumns {
            table: "warehouse".into(),
            columns: vec!["w_ytd".into()],
        }];
        assert_eq!(g.closure(&[1], &rules), [1, 2].into_iter().collect());
    }

    #[test]
    fn dot_output_contains_labels_edges_and_highlights() {
        let mut g = DepGraph::new();
        g.add_edge(2, 1, write_edge("t"));
        g.set_label(1, "Order_0_3_0_4");
        g.set_label(2, "Payment_0_3_0_5");
        let dot = g.to_dot(&[1].into_iter().collect());
        assert!(dot.starts_with("digraph trans_dep {"));
        assert!(dot.contains("t1 [label=\"Order_0_3_0_4\", style=filled"));
        assert!(dot.contains("t2 [label=\"Payment_0_3_0_5\"]"));
        assert!(dot.contains("t1 -> t2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn pruned_edges_reports_rule_casualties() {
        let mut g = DepGraph::new();
        g.add_edge(2, 1, write_edge("scratch"));
        g.add_edge(3, 1, write_edge("real"));
        let rules = vec![FalseDepRule::IgnoreTable("scratch".into())];
        assert_eq!(g.pruned_edges(&rules), [(2, 1)].into_iter().collect());
        assert!(g.pruned_edges(&[]).is_empty());
    }

    #[test]
    fn styled_dot_marks_closure_members_and_pruned_edges() {
        let mut g = DepGraph::new();
        g.add_edge(2, 1, write_edge("real"));
        g.add_edge(3, 1, write_edge("scratch"));
        let rules = vec![FalseDepRule::IgnoreTable("scratch".into())];
        let attack: BTreeSet<i64> = [1].into_iter().collect();
        let closure = g.closure(&[1], &rules);
        let pruned = g.pruned_edges(&rules);
        let dot = g.to_dot_styled(&attack, Some(&closure), Some(&pruned));
        assert!(dot.contains("t1 [label=\"txn_1\", style=filled, fillcolor=indianred1]"));
        assert!(dot.contains("t2 [label=\"txn_2\", style=filled, fillcolor=orange]"));
        assert!(dot.contains("t3 [label=\"txn_3\"]"));
        assert!(dot.contains("t1 -> t2;"));
        assert!(dot.contains("t1 -> t3 [style=dashed, color=gray, label=\"pruned\"];"));
    }

    #[test]
    fn plain_dot_matches_styled_dot_without_extras() {
        let mut g = DepGraph::new();
        g.add_edge(2, 1, write_edge("t"));
        let hl: BTreeSet<i64> = [1].into_iter().collect();
        assert_eq!(g.to_dot(&hl), g.to_dot_styled(&hl, None, None));
    }

    #[test]
    fn closure_handles_cycles() {
        // Mutually dependent transactions (possible with read/write mixes).
        let mut g = DepGraph::new();
        g.add_edge(2, 1, write_edge("t"));
        g.add_edge(1, 2, write_edge("t"));
        let c = g.closure(&[1], &[]);
        assert_eq!(c, [1, 2].into_iter().collect());
    }
}
