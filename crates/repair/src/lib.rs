//! Selective undo of committed transactions — the repair-time half of the
//! DSN 2004 intrusion-resilience framework.
//!
//! Given an initial set of malicious/erroneous transactions identified by
//! the DBA, the [`RepairController`] (phased: `analyze → plan → execute`):
//!
//! 1. reads the DBMS transaction log through a flavor-specific
//!    [`adapters::LogAdapter`] (Oracle LogMiner SQL parsing, the
//!    PostgreSQL WAL reader, or Sybase `dbcc log`/`dbcc page` with the
//!    §4.3 in-page row-migration offset adjustment),
//! 2. correlates proxy and internal transaction ids via the `trans_dep`
//!    insert that precedes every tracked commit ([`TxnCorrelation`]),
//! 3. builds the full inter-transaction dependency graph — online read
//!    dependencies from `trans_dep` plus update/delete dependencies
//!    reconstructed from pre-image `trid` values ([`DepGraph`]),
//! 4. computes the damage closure, optionally discarding DBA-declared
//!    false dependencies ([`FalseDepRule`], paper §5.3),
//! 5. walks the log backwards executing compensating statements with
//!    old→new row-id remapping — against a quiesced database, or *live*
//!    behind the proxy's containment fence ([`RepairMode::Live`]),
//! 6. and can render the graph in GraphViz DOT (paper Figure 3).
//!
//! # Examples
//!
//! ```
//! use resildb_engine::{Database, Flavor};
//! use resildb_proxy::{prepare_database, ProxyConfig, TrackingProxy};
//! use resildb_repair::RepairController;
//! use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = Database::in_memory(Flavor::Postgres);
//! let native = NativeDriver::new(db.clone(), LinkProfile::local());
//! prepare_database(&mut *native.connect()?)?;
//! let proxy = TrackingProxy::single_proxy(
//!     db.clone(), LinkProfile::local(), ProxyConfig::new(Flavor::Postgres));
//! let mut conn = proxy.connect()?;
//! conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")?;
//! conn.execute("INSERT INTO t (id, v) VALUES (1, 10)")?; // proxy txn 1
//!
//! // Undo proxy transaction 1 (and everything depending on it).
//! let report = RepairController::new(db.clone()).repair(&[1])?;
//! assert!(report.undo_set.contains(&1));
//! assert_eq!(db.row_count("t")?, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod adapters;
mod compensate;
mod controller;
mod correlate;
pub mod detect;
mod error;
pub mod explore;
mod graph;
mod progress;
mod record;
mod whatif;

pub use compensate::{CompensatingStatement, CompensationOutcome};
pub use controller::{
    Analysis, LiveRepairStats, RepairController, RepairMode, RepairOptions, RepairPlan,
    RepairReport,
};
pub use correlate::TxnCorrelation;
pub use detect::{detect, AnomalyRule, Detection};
pub use error::RepairError;
pub use explore::{CausalChain, TraceExplorer};
pub use graph::{DepGraph, EdgeKind, EdgeProvenance, FalseDepRule};
pub use progress::{RepairPhase, RepairProgress};
pub use record::{NamedRow, RepairOp, RepairRecord, RowAddress};
pub use whatif::WhatIfSession;

/// Whether `name` is one of the proxy's tracking tables (their rows are
/// bookkeeping, not user data).
pub fn is_tracking_table(name: &str) -> bool {
    resildb_proxy::TRACKING_TABLES
        .iter()
        .any(|t| t.eq_ignore_ascii_case(name))
}
