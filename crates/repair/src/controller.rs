//! The phased repair driver: `analyze() → plan() → execute()`.
//!
//! [`RepairController`] is the one entry point for repairing a database,
//! replacing the earlier `RepairTool::repair` / `repair_with_undo_set` /
//! free-standing `run_compensation` trio. The three phases separate what
//! the paper's interactive tool interleaves:
//!
//! * [`RepairController::analyze`] reads the transaction log and tracking
//!   tables and builds the dependency graph ([`Analysis`]);
//! * [`RepairController::plan`] computes the damage closure for an
//!   initial attack set under the controller's false-dependency rules
//!   ([`RepairPlan`] — its `undo_set` is open for interactive what-if
//!   adjustment before execution);
//! * [`RepairController::execute`] runs the compensation sweep, either
//!   **quiesced** (the paper's offline repair: the caller guarantees no
//!   concurrent traffic) or **live** ([`RepairMode::Live`]): the
//!   controller fences the static blast-radius surface through the
//!   proxy's [`resildb_proxy::Fence`], drains in-flight transactions,
//!   re-analyzes, shrinks the fence to the dynamic row-level closure,
//!   sweeps while clean traffic keeps flowing, and extends the fence if
//!   re-analysis grows the closure mid-sweep.
//!
//! Options are carried by the [`RepairOptions`] builder, which also hooks
//! the simulator's fault plan so deterministic tests can inject failures
//! at the repair failpoints without reaching into [`resildb_sim`]
//! internals.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use resildb_engine::{Database, Value};
use resildb_proxy::{canon_value, composite_key, ContainmentPolicy, ProxyRuntime, RowFence};
use resildb_sim::telemetry::names as span_names;
use resildb_sim::{failpoints, EventKind, FaultAction, FaultTrigger, IncidentPhase};
use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver, Response};

use crate::adapters::{adapter_for, LogAdapter};
use crate::compensate::{run_compensation, CompensationOutcome};
use crate::correlate::TxnCorrelation;
use crate::error::RepairError;
use crate::graph::{DepGraph, EdgeKind, EdgeProvenance, FalseDepRule};
use crate::progress::{PhaseDone, RepairPhase, RepairProgress};
use crate::record::{NamedRow, RepairOp, RepairRecord, RowAddress};

/// Everything the analysis phase learns from the database and its log.
#[derive(Debug)]
pub struct Analysis {
    /// Normalized log records (LSN order).
    pub records: Vec<RepairRecord>,
    /// Proxy ↔ internal id mapping.
    pub correlation: TxnCorrelation,
    /// The full dependency graph (online read deps + log-reconstructed
    /// write deps), labelled from `annot`.
    pub graph: DepGraph,
}

impl Analysis {
    /// Computes the undo set for an initial attack set under the given
    /// false-dependency rules — the "what if" primitive the paper's
    /// interactive repair tool is built around.
    pub fn undo_set(&self, initial: &[i64], rules: &[FalseDepRule]) -> BTreeSet<i64> {
        self.graph.closure(initial, rules)
    }

    /// Renders the dependency graph as GraphViz DOT, highlighting
    /// `highlight` (paper Figure 3).
    pub fn to_dot(&self, highlight: &BTreeSet<i64>) -> String {
        self.graph.to_dot(highlight)
    }

    /// Renders the dependency graph as forensic DOT: the attack set
    /// `initial` filled red, the rest of its damage closure under `rules`
    /// filled orange, and rule-pruned edges dashed gray.
    pub fn to_dot_forensic(&self, initial: &[i64], rules: &[FalseDepRule]) -> String {
        let attack: BTreeSet<i64> = initial.iter().copied().collect();
        let closure = self.graph.closure(initial, rules);
        let pruned = self.graph.pruned_edges(rules);
        self.graph
            .to_dot_styled(&attack, Some(&closure), Some(&pruned))
    }

    /// Every tracked (committed, correlated) proxy transaction id.
    pub fn tracked_transactions(&self) -> BTreeSet<i64> {
        self.correlation.internal_of.keys().copied().collect()
    }
}

/// Whether the compensation sweep runs against a quiesced database or
/// concurrently with client traffic behind a containment fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairMode {
    /// The paper's offline repair: the caller guarantees no concurrent
    /// traffic for the duration of [`RepairController::execute`].
    #[default]
    Quiesced,
    /// Online repair: fence the blast radius through the proxy, keep
    /// serving transactions that provably miss the quarantine, sweep in
    /// the background. Requires [`RepairOptions::live`].
    Live,
}

/// Options for a [`RepairController`], built fluently:
///
/// ```ignore
/// let opts = RepairOptions::quiesced()
///     .rule(FalseDepRule::IgnoreTable("scratch".into()))
///     .fault(failpoints::REPAIR_MID_SWEEP, FaultAction::Error, FaultTrigger::Once);
/// ```
///
/// The struct is `#[non_exhaustive]`: construct it through
/// [`RepairOptions::quiesced`] / [`RepairOptions::live`] so new knobs can
/// be added without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RepairOptions {
    /// Quiesced or live execution.
    pub mode: RepairMode,
    /// DBA-declared false-dependency rules applied to every closure the
    /// controller computes (paper §5.3).
    pub rules: Vec<FalseDepRule>,
    /// The static blast-radius surface a live repair fences before any
    /// log analysis. `None` means every user table (always sound); a
    /// profile-conflict analysis (DESIGN.md §15) can narrow it.
    pub static_surface: Option<Vec<String>>,
    /// The proxy runtime whose fence and in-flight ledger a live repair
    /// drives. Required for [`RepairMode::Live`].
    pub runtime: Option<Arc<ProxyRuntime>>,
    /// The containment policy of a live repair. `FenceDynamic` shrinks
    /// the fence to row level once the closure is known; `FenceStatic`
    /// keeps the table-level fence until the sweep commits.
    pub containment: ContainmentPolicy,
    /// How long a live repair waits for pre-fence transactions to drain.
    pub drain_timeout: Duration,
    /// How many fence-extension rounds a live repair tolerates before
    /// concluding the closure is not converging.
    pub max_extension_rounds: usize,
    /// Failpoints to arm on the database's fault plan for the duration of
    /// [`RepairController::execute`] (disarmed on exit, even on error).
    pub faults: Vec<(String, FaultAction, FaultTrigger)>,
}

impl Default for RepairOptions {
    fn default() -> Self {
        Self::quiesced()
    }
}

impl RepairOptions {
    /// Options for the paper's offline repair (no fence, no proxy).
    pub fn quiesced() -> Self {
        Self {
            mode: RepairMode::Quiesced,
            rules: Vec::new(),
            static_surface: None,
            runtime: None,
            containment: ContainmentPolicy::Off,
            drain_timeout: Duration::from_secs(10),
            max_extension_rounds: 8,
            faults: Vec::new(),
        }
    }

    /// Options for a live repair driving `runtime`'s fence under
    /// `containment` (pass the same policy the proxy was configured
    /// with; [`ContainmentPolicy::Off`] downgrades to table-level
    /// static fencing for the repair's duration).
    pub fn live(runtime: Arc<ProxyRuntime>, containment: ContainmentPolicy) -> Self {
        Self {
            mode: RepairMode::Live,
            runtime: Some(runtime),
            containment,
            ..Self::quiesced()
        }
    }

    /// Replaces the false-dependency rules.
    #[must_use]
    pub fn rules(mut self, rules: impl IntoIterator<Item = FalseDepRule>) -> Self {
        self.rules = rules.into_iter().collect();
        self
    }

    /// Adds one false-dependency rule.
    #[must_use]
    pub fn rule(mut self, rule: FalseDepRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Narrows the static fence surface of a live repair to `tables`
    /// (e.g. an attacker profile's static blast-radius closure). The
    /// surface must cover everything the attack could have touched;
    /// a too-narrow surface is caught by the extension loop but costs
    /// extra sweep rounds.
    #[must_use]
    pub fn static_surface(mut self, tables: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.static_surface = Some(tables.into_iter().map(Into::into).collect());
        self
    }

    /// Sets the in-flight drain timeout of a live repair.
    #[must_use]
    pub fn drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Sets the fence-extension round budget of a live repair.
    #[must_use]
    pub fn max_extension_rounds(mut self, rounds: usize) -> Self {
        self.max_extension_rounds = rounds;
        self
    }

    /// Arms `name` on the database's fault plan for the duration of
    /// [`RepairController::execute`] — the deterministic-failure hook
    /// for the repair failpoints (`repair.mid_sweep`,
    /// `repair.before_commit`, `repair.live.before_shrink`, ...).
    #[must_use]
    pub fn fault(
        mut self,
        name: impl Into<String>,
        action: FaultAction,
        trigger: FaultTrigger,
    ) -> Self {
        self.faults.push((name.into(), action, trigger));
        self
    }
}

/// The undo set chosen for execution, open for interactive what-if
/// adjustment between [`RepairController::plan`] and
/// [`RepairController::execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    /// The initial attack set the closure was seeded from.
    pub initial: Vec<i64>,
    /// The proxy transactions to undo. Starts as the closure of
    /// `initial` under the controller's rules; the DBA may add or remove
    /// members before execution (a live execute re-derives the closure
    /// post-fence and re-applies the manual delta).
    pub undo_set: BTreeSet<i64>,
}

impl RepairPlan {
    /// A plan with an explicitly chosen undo set (e.g. after interactive
    /// filtering).
    pub fn with_undo_set(initial: &[i64], undo_set: BTreeSet<i64>) -> Self {
        Self {
            initial: initial.to_vec(),
            undo_set,
        }
    }
}

/// What a live execution did beyond the sweep itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveRepairStats {
    /// Tables fenced by the initial static raise (peak containment).
    pub fenced_tables: usize,
    /// Rows individually fenced when the sweep started (post-shrink).
    pub fenced_rows: usize,
    /// Fence-extension rounds the closure needed to converge.
    pub extension_rounds: usize,
    /// Milliseconds spent draining pre-fence in-flight transactions.
    pub drain_ms: u64,
}

/// Report of a completed repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// The proxy transactions rolled back.
    pub undo_set: BTreeSet<i64>,
    /// Total tracked transactions at repair time.
    pub tracked_total: usize,
    /// Tracked transactions whose effects survived.
    pub saved: usize,
    /// What the compensation sweep did.
    pub outcome: CompensationOutcome,
    /// Live-mode bookkeeping; `None` for a quiesced repair.
    pub live: Option<LiveRepairStats>,
}

impl RepairReport {
    /// Percentage of tracked transactions preserved by the repair
    /// (the right-hand column of paper Figure 5).
    pub fn saved_percentage(&self) -> f64 {
        if self.tracked_total == 0 {
            100.0
        } else {
            100.0 * self.saved as f64 / self.tracked_total as f64
        }
    }
}

/// The phased repair driver for one database. See module docs.
pub struct RepairController {
    db: Database,
    adapter: Box<dyn LogAdapter>,
    options: RepairOptions,
    progress: RepairProgress,
}

impl std::fmt::Debug for RepairController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairController")
            .field("flavor", &self.db.flavor())
            .field("mode", &self.options.mode)
            .finish_non_exhaustive()
    }
}

/// Arms a set of failpoints and disarms them on drop, so an injected
/// error cannot leave the plan armed for unrelated later work.
struct ArmedFaults<'a> {
    plan: &'a resildb_sim::FaultPlan,
    names: Vec<String>,
}

impl Drop for ArmedFaults<'_> {
    fn drop(&mut self) {
        for name in &self.names {
            self.plan.disarm(name);
        }
    }
}

impl RepairController {
    /// A quiesced-mode controller with default options and the adapter
    /// matching the database's flavor.
    pub fn new(db: Database) -> Self {
        Self::with_options(db, RepairOptions::default())
    }

    /// A controller with explicit options.
    pub fn with_options(db: Database, options: RepairOptions) -> Self {
        let adapter = adapter_for(db.flavor());
        Self {
            db,
            adapter,
            options,
            progress: RepairProgress::default(),
        }
    }

    /// The options this controller executes under.
    pub fn options(&self) -> &RepairOptions {
        &self.options
    }

    /// A cloneable handle observing this controller's live repair
    /// progress (phase, compensated/total, fence size, extension
    /// rounds). Poll it from another thread — e.g. the metrics
    /// endpoint's `/ready` predicate and `resildb-top` both do.
    pub fn progress(&self) -> RepairProgress {
        self.progress.clone()
    }

    /// Phase 1: reads the log and tracking tables and builds the
    /// dependency graph.
    ///
    /// # Errors
    ///
    /// Log introspection or tracking-table read failures.
    pub fn analyze(&self) -> Result<Analysis, RepairError> {
        let telemetry = self.db.sim().telemetry();
        // Analysis is the detection step of an incident: open one on the
        // timeline unless a repair episode is already in flight (the live
        // protocol re-analyzes several times per incident).
        let timeline = telemetry.timeline();
        if timeline.current().is_none() {
            let incident = timeline.open_incident();
            timeline.mark(IncidentPhase::Detected);
            telemetry
                .flight()
                .emit(0, 0, EventKind::IncidentDetected { incident });
        }
        if self.progress.is_executing() {
            self.progress.set_phase(RepairPhase::Analyze);
        }
        let records = {
            let _span = telemetry.span(span_names::REPAIR_LOG_SCAN);
            self.adapter.scan(&self.db)?
        };
        telemetry.flight().emit(
            0,
            0,
            EventKind::LogScan {
                records: records.len() as u64,
            },
        );
        let correlation = {
            let _span = telemetry.span(span_names::REPAIR_CORRELATE);
            TxnCorrelation::from_records(&records)
        };
        telemetry.flight().emit(
            0,
            0,
            EventKind::Correlate {
                pairs: correlation.len() as u64,
            },
        );
        let _span = telemetry.span(span_names::REPAIR_GRAPH_BUILD);
        let mut graph = DepGraph::new();

        // 1. Online (read) dependencies from trans_dep + provenance.
        let mut session = self.db.session();
        let prov_rows = session
            .query("SELECT tr_id, dep_tr_id, via_table, read_cols FROM trans_dep_prov")
            .map_err(RepairError::Engine)?;
        // (tr_id, dep_tr_id) → [(mediating table, columns read)]
        type ProvMap = HashMap<(i64, i64), Vec<(String, Vec<String>)>>;
        let mut prov: ProvMap = HashMap::new();
        for row in &prov_rows.rows {
            if let (Value::Int(tr), Value::Int(dep), Value::Str(table), Value::Str(cols)) =
                (&row[0], &row[1], &row[2], &row[3])
            {
                prov.entry((*tr, *dep)).or_default().push((
                    table.clone(),
                    cols.split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                ));
            }
        }
        let dep_rows = session
            .query("SELECT tr_id, dep_tr_ids FROM trans_dep")
            .map_err(RepairError::Engine)?;
        for row in &dep_rows.rows {
            let (Value::Int(tr), Value::Str(deps)) = (&row[0], &row[1]) else {
                continue;
            };
            for dep in deps.split_whitespace() {
                let Ok(dep) = dep.parse::<i64>() else {
                    continue;
                };
                match prov.get(&(*tr, dep)) {
                    Some(sources) => {
                        for (table, cols) in sources {
                            graph.add_edge(
                                *tr,
                                dep,
                                EdgeProvenance {
                                    table: table.clone(),
                                    kind: EdgeKind::Read {
                                        read_columns: cols.clone(),
                                    },
                                },
                            );
                        }
                    }
                    None => {
                        // No provenance recorded: keep the edge with an
                        // unknown-table marker (it always survives rules).
                        graph.add_edge(
                            *tr,
                            dep,
                            EdgeProvenance {
                                table: String::new(),
                                kind: EdgeKind::Write,
                            },
                        );
                    }
                }
            }
        }

        // 2. Labels from annot.
        let annot_rows = session
            .query("SELECT tr_id, descr FROM annot")
            .map_err(RepairError::Engine)?;
        for row in &annot_rows.rows {
            if let (Value::Int(tr), Value::Str(descr)) = (&row[0], &row[1]) {
                graph.set_label(*tr, descr.clone());
            }
        }

        // 3. Log-reconstructed dependencies (updates/deletes) and writer
        //    column notes for false-dependency evaluation.
        for rec in &records {
            let Some(proxy) = correlation.proxy_id(rec.internal_txn) else {
                continue; // uncommitted or untracked transaction
            };
            if rec.table.is_empty() || crate::is_tracking_table(&rec.table) {
                continue;
            }
            match &rec.op {
                RepairOp::Insert { .. } => graph.note_writer_insert(proxy, &rec.table),
                RepairOp::Update { after, .. } => graph.note_writer_columns(
                    proxy,
                    &rec.table,
                    after
                        .columns()
                        .iter()
                        .filter(|c| !resildb_proxy::is_tracking_column(c))
                        .map(|s| s.to_string()),
                ),
                _ => {}
            }
            // Reconstruct the overwrite dependency from the pre-image.
            // Under column-level tracking the pre-image carries one
            // `trid__<col>` stamp per overwritten column, giving precise
            // per-column edges; otherwise fall back to the row `trid`.
            let before = match &rec.op {
                RepairOp::Update { before, .. } => Some(before),
                RepairOp::Delete { row, .. } => Some(row),
                _ => None,
            };
            if let Some(image) = before {
                let mut column_edges = 0;
                for (name, value) in &image.0 {
                    let Some(col) = name.strip_prefix(resildb_proxy::COLUMN_TRID_PREFIX) else {
                        continue;
                    };
                    if let resildb_engine::Value::Int(dep) = value {
                        column_edges += 1;
                        if *dep > 0 && *dep != proxy {
                            graph.add_edge(
                                proxy,
                                *dep,
                                EdgeProvenance {
                                    table: rec.table.clone(),
                                    kind: EdgeKind::Read {
                                        read_columns: vec![col.to_string()],
                                    },
                                },
                            );
                        }
                    }
                }
                if column_edges == 0 {
                    if let Some(dep) = rec.before_trid() {
                        if dep > 0 && dep != proxy {
                            graph.add_edge(
                                proxy,
                                dep,
                                EdgeProvenance {
                                    table: rec.table.clone(),
                                    kind: EdgeKind::Write,
                                },
                            );
                        }
                    }
                }
            }
        }

        Ok(Analysis {
            records,
            correlation,
            graph,
        })
    }

    /// Phase 2: computes the damage closure of `initial` under the
    /// controller's rules.
    pub fn plan(&self, analysis: &Analysis, initial: &[i64]) -> RepairPlan {
        let undo_set = {
            let _span = self.db.sim().telemetry().span(span_names::REPAIR_CLOSURE);
            analysis.undo_set(initial, &self.options.rules)
        };
        self.progress.set_closure(undo_set.len() as u64);
        self.db.sim().telemetry().flight().emit(
            0,
            0,
            EventKind::ClosureComputed {
                initial: u32::try_from(initial.len()).unwrap_or(u32::MAX),
                nodes: u32::try_from(undo_set.len()).unwrap_or(u32::MAX),
            },
        );
        RepairPlan {
            initial: initial.to_vec(),
            undo_set,
        }
    }

    /// Phase 3: executes the compensation sweep for `plan`, in the mode
    /// the options select. Failpoints named in the options are armed for
    /// the duration of this call.
    ///
    /// # Errors
    ///
    /// Compensation failures; for live mode also a missing runtime, a
    /// drain timeout, or a closure that does not converge within the
    /// extension-round budget. The fence is always lifted on the way out.
    pub fn execute(
        &self,
        analysis: &Analysis,
        plan: &RepairPlan,
    ) -> Result<RepairReport, RepairError> {
        let fault_plan = self.db.sim().faults();
        let _armed = ArmedFaults {
            plan: fault_plan,
            names: self
                .options
                .faults
                .iter()
                .map(|(name, action, trigger)| {
                    fault_plan.arm(name, *action, *trigger);
                    name.clone()
                })
                .collect(),
        };
        // Progress lands on `Done` and the incident closes on every exit
        // path — success, error, or a panic unwinding out of a
        // failpoint. For live mode the incident's `fence_lifted` mark is
        // placed by the inner `FenceLift` guard, which drops first.
        self.progress.begin(plan.undo_set.len() as u64);
        let _done = PhaseDone {
            progress: self.progress.clone(),
        };
        struct CloseIncident<'a> {
            timeline: &'a resildb_sim::IncidentTimeline,
        }
        impl Drop for CloseIncident<'_> {
            fn drop(&mut self) {
                self.timeline.close_incident();
            }
        }
        let _close = CloseIncident {
            timeline: self.db.sim().telemetry().timeline(),
        };
        match self.options.mode {
            RepairMode::Quiesced => self.execute_quiesced(analysis, &plan.undo_set),
            RepairMode::Live => self.execute_live(analysis, plan),
        }
    }

    /// Convenience: `analyze` → `plan(initial)` → `execute`.
    ///
    /// # Errors
    ///
    /// Any phase's failures.
    pub fn repair(&self, initial: &[i64]) -> Result<RepairReport, RepairError> {
        let analysis = self.analyze()?;
        let plan = self.plan(&analysis, initial);
        self.execute(&analysis, &plan)
    }

    /// The paper's offline sweep: one compensation transaction against a
    /// quiesced database.
    fn execute_quiesced(
        &self,
        analysis: &Analysis,
        undo_set: &BTreeSet<i64>,
    ) -> Result<RepairReport, RepairError> {
        let telemetry = self.db.sim().telemetry();
        let _span = telemetry.span(span_names::REPAIR_COMPENSATE);
        self.progress.set_phase(RepairPhase::Sweep);
        let undo_internal = internal_map(analysis, undo_set);
        let driver = NativeDriver::new(self.db.clone(), LinkProfile::local());
        let mut conn = driver.connect()?;
        let outcome = run_compensation(
            &self.db,
            conn.as_mut(),
            &analysis.records,
            &undo_internal,
            self.adapter.address_column(),
            &BTreeSet::new(),
        )?;
        self.progress.add_compensated(undo_set.len() as u64);
        telemetry.timeline().mark(IncidentPhase::SweepComplete);
        telemetry
            .flight()
            .emit(0, 0, EventKind::SweepComplete { rounds: 0 });
        Ok(build_report(analysis, undo_set.clone(), outcome, None))
    }

    /// Live repair: fence → drain → re-analyze → shrink → sweep →
    /// extend-until-converged → lift. The fence is lifted on every exit
    /// path, success or error.
    fn execute_live(
        &self,
        stale_analysis: &Analysis,
        plan: &RepairPlan,
    ) -> Result<RepairReport, RepairError> {
        let runtime = self.options.runtime.clone().ok_or_else(|| {
            RepairError::Analysis(
                "live repair requires a proxy runtime (build options with RepairOptions::live)"
                    .into(),
            )
        })?;
        let telemetry = self.db.sim().telemetry();
        let fence = runtime.fence();

        // 1. Raise the static fence: the blast-radius surface is known
        //    before any log analysis, so containment is instant.
        let surface: Vec<String> = match &self.options.static_surface {
            Some(tables) => tables.clone(),
            None => self
                .db
                .table_names()
                .into_iter()
                .filter(|t| !crate::is_tracking_table(t))
                .collect(),
        };
        let tables = fence.raise(surface);
        self.progress.set_fence_tables(tables as u64);
        telemetry.timeline().mark(IncidentPhase::FenceRaised);
        telemetry.flight().emit(
            0,
            0,
            EventKind::FenceRaised {
                tables: u32::try_from(tables).unwrap_or(u32::MAX),
            },
        );

        // Drop guard: the fence comes down on *every* exit — success,
        // error, or a panic unwinding out of a failpoint. A stuck fence
        // turns one failed repair into an indefinite outage.
        struct FenceLift<'a> {
            fence: &'a resildb_proxy::Fence,
            telemetry: &'a resildb_sim::Telemetry,
        }
        impl Drop for FenceLift<'_> {
            fn drop(&mut self) {
                self.fence.lift();
                self.telemetry.timeline().mark(IncidentPhase::FenceLifted);
                self.telemetry.flight().emit(0, 0, EventKind::FenceLifted);
            }
        }
        let _lift = FenceLift { fence, telemetry };

        self.live_protocol(&runtime, stale_analysis, plan, tables)
    }

    /// Everything between fence raise and fence lift.
    fn live_protocol(
        &self,
        runtime: &ProxyRuntime,
        stale_analysis: &Analysis,
        plan: &RepairPlan,
        raised_tables: usize,
    ) -> Result<RepairReport, RepairError> {
        let telemetry = self.db.sim().telemetry();
        let fence = runtime.fence();

        // The DBA may have hand-adjusted the plan's undo set relative to
        // the closure its (pre-fence) analysis produced. Capture that
        // delta so it can be re-applied to every post-fence closure.
        let stale_closure = stale_analysis.undo_set(&plan.initial, &self.options.rules);
        let manual_removed: BTreeSet<i64> =
            stale_closure.difference(&plan.undo_set).copied().collect();
        let manual_added: BTreeSet<i64> =
            plan.undo_set.difference(&stale_closure).copied().collect();
        let adjust = |mut closure: BTreeSet<i64>| -> BTreeSet<i64> {
            closure.retain(|t| !manual_removed.contains(t));
            closure.extend(manual_added.iter().copied());
            closure
        };

        // 2. Drain: every transaction admitted before the fence went up
        //    must commit or abort before analysis, so the log prefix the
        //    closure is computed from is complete.
        self.progress.set_phase(RepairPhase::Drain);
        let drain_start = Instant::now();
        let watermark = runtime.trid_watermark();
        let deadline = drain_start + self.options.drain_timeout;
        while runtime.any_inflight_below(watermark) {
            if Instant::now() >= deadline {
                return Err(RepairError::Analysis(
                    "live repair drain timed out: pre-fence transactions still in flight".into(),
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let drain_ms = drain_start.elapsed().as_millis() as u64;

        // 3. Fresh analysis behind the fence, and the real closure.
        let mut analysis = self.analyze()?;
        let mut undo = adjust(analysis.undo_set(&plan.initial, &self.options.rules));
        self.progress.set_closure(undo.len() as u64);
        self.progress.set_total(undo.len() as u64);
        telemetry.flight().emit(
            0,
            0,
            EventKind::ClosureComputed {
                initial: u32::try_from(plan.initial.len()).unwrap_or(u32::MAX),
                nodes: u32::try_from(undo.len()).unwrap_or(u32::MAX),
            },
        );

        // 4. Shrink from the static table surface to the dynamic
        //    row-level closure (when the policy allows).
        repair_fault(&self.db, failpoints::REPAIR_LIVE_BEFORE_SHRINK)?;
        let shrinks = matches!(
            self.options.containment,
            ContainmentPolicy::FenceDynamic(_) | ContainmentPolicy::Off
        );
        let (mut whole, mut rows) = if shrinks {
            self.fence_rows(&analysis, &undo)?
        } else {
            // Static policy: keep every table of the closure fenced.
            (closure_tables(&analysis, &undo), HashMap::new())
        };
        let (shrunk_tables, fenced_rows) = fence.shrink(whole.clone(), rows.clone());
        self.progress.set_fence_rows(fenced_rows as u64);
        telemetry.timeline().mark(IncidentPhase::QuarantineShrunk);
        telemetry.flight().emit(
            0,
            0,
            EventKind::FenceShrunk {
                tables: u32::try_from(shrunk_tables).unwrap_or(u32::MAX),
                rows: u32::try_from(fenced_rows).unwrap_or(u32::MAX),
            },
        );

        // 5. Sweep, then re-analyze until the closure stops growing. A
        //    correctly-sized static surface converges in one round; the
        //    loop is the safety net for a user-narrowed surface that
        //    missed a table the attack reached.
        let mut undone: BTreeSet<i64> = BTreeSet::new();
        let mut current: BTreeSet<i64> = undo.clone();
        let mut outcome = CompensationOutcome::default();
        let mut extension_rounds = 0usize;
        let driver = NativeDriver::new(self.db.clone(), LinkProfile::local());
        let mut conn = driver.connect()?;
        loop {
            if !current.is_empty() {
                let _span = telemetry.span(span_names::REPAIR_COMPENSATE);
                self.progress.set_phase(RepairPhase::Sweep);
                let undo_internal = internal_map(&analysis, &current);
                let round = run_compensation(
                    &self.db,
                    conn.as_mut(),
                    &analysis.records,
                    &undo_internal,
                    self.adapter.address_column(),
                    &undone,
                )?;
                merge_outcome(&mut outcome, round);
                undone.extend(current.iter().copied());
                self.progress.add_compensated(current.len() as u64);
            }

            analysis = self.analyze()?;
            undo = adjust(analysis.undo_set(&plan.initial, &self.options.rules));
            let fresh: BTreeSet<i64> = undo.difference(&undone).copied().collect();
            if fresh.is_empty() {
                telemetry.timeline().mark(IncidentPhase::SweepComplete);
                telemetry.flight().emit(
                    0,
                    0,
                    EventKind::SweepComplete {
                        rounds: u32::try_from(extension_rounds).unwrap_or(u32::MAX),
                    },
                );
                break;
            }
            extension_rounds += 1;
            self.progress.set_phase(RepairPhase::Extend);
            self.progress.set_extension_rounds(extension_rounds as u64);
            self.progress.set_total((undone.len() + fresh.len()) as u64);
            if extension_rounds > self.options.max_extension_rounds {
                return Err(RepairError::Analysis(format!(
                    "live repair closure still growing after {} extension rounds",
                    self.options.max_extension_rounds
                )));
            }
            // Extend the fence over the new members' rows before they
            // are swept.
            let (new_whole, new_rows) = if shrinks {
                self.fence_rows(&analysis, &fresh)?
            } else {
                (closure_tables(&analysis, &fresh), HashMap::new())
            };
            let mut added_rows = 0usize;
            whole.extend(new_whole);
            for (table, rf) in new_rows {
                if whole.contains(&table) {
                    continue;
                }
                let entry = rows.entry(table).or_insert_with(|| RowFence {
                    key_columns: rf.key_columns.clone(),
                    keys: Default::default(),
                });
                let before = entry.keys.len();
                entry.keys.extend(rf.keys);
                added_rows += entry.keys.len() - before;
            }
            fence.shrink(whole.clone(), rows.clone());
            telemetry.timeline().mark(IncidentPhase::FenceExtended);
            telemetry.flight().emit(
                0,
                0,
                EventKind::FenceExtended {
                    rows: u32::try_from(added_rows).unwrap_or(u32::MAX),
                },
            );
            current = fresh;
        }

        repair_fault(&self.db, failpoints::REPAIR_LIVE_BEFORE_LIFT)?;
        Ok(build_report(
            &analysis,
            undone,
            outcome,
            Some(LiveRepairStats {
                fenced_tables: raised_tables,
                fenced_rows,
                extension_rounds,
                drain_ms,
            }),
        ))
    }

    /// Computes the row-level quarantine for `undo`'s log records:
    /// per-table primary-key sets in the canonical form the proxy fence
    /// matches client statements against. A table falls back to a whole
    /// fence when it has no primary key or a record's key cannot be
    /// recovered.
    fn fence_rows(
        &self,
        analysis: &Analysis,
        undo: &BTreeSet<i64>,
    ) -> Result<(BTreeSet<String>, HashMap<String, RowFence>), RepairError> {
        let mut whole: BTreeSet<String> = BTreeSet::new();
        let mut rows: HashMap<String, RowFence> = HashMap::new();
        // table → lower-cased primary-key column names (empty = no pk).
        let mut pk_cache: HashMap<String, Vec<String>> = HashMap::new();
        let addr_col = self.adapter.address_column().column_name();
        let driver = NativeDriver::new(self.db.clone(), LinkProfile::local());
        let mut conn = driver.connect()?;

        for rec in &analysis.records {
            let Some(proxy) = analysis.correlation.proxy_id(rec.internal_txn) else {
                continue;
            };
            if !undo.contains(&proxy)
                || rec.table.is_empty()
                || crate::is_tracking_table(&rec.table)
            {
                continue;
            }
            let table = rec.table.to_lowercase();
            if whole.contains(&table) {
                continue;
            }
            let pk = match pk_cache.get(&table) {
                Some(pk) => pk.clone(),
                None => {
                    let schema = self
                        .db
                        .table(&rec.table)
                        .map_err(RepairError::Engine)?
                        .read()
                        .schema()
                        .clone();
                    let pk: Vec<String> = schema
                        .primary_key
                        .iter()
                        .map(|&i| schema.columns[i].name.to_lowercase())
                        .collect();
                    pk_cache.insert(table.clone(), pk.clone());
                    pk
                }
            };
            if pk.is_empty() {
                whole.insert(table.clone());
                rows.remove(&table);
                continue;
            }
            let key = match &rec.op {
                RepairOp::Insert { row, .. } | RepairOp::Delete { row, .. } => {
                    key_from_image(row, &pk)
                }
                RepairOp::Update {
                    address,
                    before,
                    after,
                } => match key_from_image(after, &pk).or_else(|| key_from_image(before, &pk)) {
                    Some(k) => Some(k),
                    None => {
                        match key_by_address(conn.as_mut(), &rec.table, addr_col, address, &pk)? {
                            Some(k) => Some(k),
                            // The row was deleted later in the log; when
                            // that delete is also being undone, its full
                            // image carries the key — this record is
                            // covered. Otherwise the key is gone: fall
                            // back to fencing the whole table.
                            None if deleted_later(analysis, undo, rec, address) => None,
                            None => Some(String::new()),
                        }
                    }
                },
                RepairOp::Commit | RepairOp::Abort => continue,
            };
            match key {
                Some(k) if !k.is_empty() => {
                    rows.entry(table)
                        .or_insert_with(|| RowFence {
                            key_columns: pk.clone(),
                            keys: Default::default(),
                        })
                        .keys
                        .insert(k);
                }
                Some(_) => {
                    // Empty marker: key unrecoverable — fence the table.
                    whole.insert(table.clone());
                    rows.remove(&table);
                }
                None => {} // covered by a later record
            }
        }
        Ok((whole, rows))
    }
}

/// Whether a later undo-set record deletes the row `rec` addresses (its
/// full delete image then contributes the fence key).
fn deleted_later(
    analysis: &Analysis,
    undo: &BTreeSet<i64>,
    rec: &RepairRecord,
    address: &RowAddress,
) -> bool {
    analysis.records.iter().any(|r| {
        r.lsn > rec.lsn
            && r.table.eq_ignore_ascii_case(&rec.table)
            && matches!(&r.op, RepairOp::Delete { address: a, .. } if a == address)
            && analysis
                .correlation
                .proxy_id(r.internal_txn)
                .is_some_and(|p| undo.contains(&p))
    })
}

/// Extracts a canonical composite fence key from a full row image.
fn key_from_image(image: &NamedRow, pk: &[String]) -> Option<String> {
    let parts: Vec<String> = pk
        .iter()
        .map(|col| image.get(col).and_then(canon_value))
        .collect::<Option<Vec<_>>>()?;
    Some(composite_key(&parts))
}

/// Recovers the fence key of an updated row from the live database via
/// its row address (update records carry changed columns only, which
/// rarely include the key). `Ok(None)` when the row no longer exists.
fn key_by_address(
    conn: &mut dyn Connection,
    table: &str,
    addr_col: &str,
    address: &RowAddress,
    pk: &[String],
) -> Result<Option<String>, RepairError> {
    let sql = format!(
        "SELECT {} FROM {table} WHERE {addr_col} = {}",
        pk.join(", "),
        address.literal()
    );
    match conn.execute(&sql)? {
        Response::Rows(r) => match r.rows.first() {
            Some(row) => {
                let parts: Option<Vec<String>> = row.iter().map(canon_value).collect();
                Ok(parts.map(|p| composite_key(&p)))
            }
            None => Ok(None),
        },
        other => Err(RepairError::Analysis(format!(
            "fence key lookup produced {other:?}: {sql}"
        ))),
    }
}

/// Every user table the undo set's records touch (the static-policy
/// fence surface after analysis).
fn closure_tables(analysis: &Analysis, undo: &BTreeSet<i64>) -> BTreeSet<String> {
    analysis
        .records
        .iter()
        .filter(|rec| {
            !rec.table.is_empty()
                && !crate::is_tracking_table(&rec.table)
                && analysis
                    .correlation
                    .proxy_id(rec.internal_txn)
                    .is_some_and(|p| undo.contains(&p))
        })
        .map(|rec| rec.table.to_lowercase())
        .collect()
}

/// Maps a proxy-level undo set to internal transaction ids.
fn internal_map(
    analysis: &Analysis,
    undo_set: &BTreeSet<i64>,
) -> HashMap<resildb_engine::InternalTxnId, i64> {
    let mut undo_internal = HashMap::new();
    for &proxy in undo_set {
        if let Some(internal) = analysis.correlation.internal_id(proxy) {
            undo_internal.insert(internal, proxy);
        }
    }
    undo_internal
}

fn build_report(
    analysis: &Analysis,
    undo_set: BTreeSet<i64>,
    outcome: CompensationOutcome,
    live: Option<LiveRepairStats>,
) -> RepairReport {
    let tracked = analysis.tracked_transactions();
    let rolled_back = tracked.intersection(&undo_set).count();
    RepairReport {
        undo_set,
        tracked_total: tracked.len(),
        saved: tracked.len() - rolled_back,
        outcome,
        live,
    }
}

fn merge_outcome(total: &mut CompensationOutcome, round: CompensationOutcome) {
    total.statements.extend(round.statements);
    total.rows_deleted += round.rows_deleted;
    total.rows_reinserted += round.rows_reinserted;
    total.rows_restored += round.rows_restored;
}

/// Maps an injected repair-layer fault to a [`RepairError`].
fn repair_fault(db: &Database, name: &str) -> Result<(), RepairError> {
    match db.sim().fault_check(name) {
        None => Ok(()),
        Some(resildb_sim::InjectedFault::Disconnect) => Err(RepairError::Wire(
            resildb_wire::WireError::ConnectionDropped,
        )),
        Some(resildb_sim::InjectedFault::Error) => Err(RepairError::Wire(
            resildb_wire::WireError::Protocol(format!("injected fault at failpoint {name}")),
        )),
        Some(resildb_sim::InjectedFault::Delay(_)) => {
            unreachable!("fault_check consumes delays")
        }
    }
}
