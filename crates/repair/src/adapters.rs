//! Per-flavor log adapters: the only database-specific part of the repair
//! tool, exactly as the paper observes (§3.3: "the repair-time logic of an
//! intrusion-resilient DBMS is very database-specific").

use resildb_engine::introspect::{self, DbccLogRecord, DbccOp};
use resildb_engine::{
    decode_row, decode_value, Database, EngineError, Flavor, Result, RowId, Value,
};
use resildb_sql::{BinaryOp, Expr, Statement};

use crate::record::{NamedRow, RepairOp, RepairRecord, RowAddress};

/// How compensating statements address rows for a given flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressColumn {
    /// A row-id pseudo-column with this name (`ctid`/`rowid`).
    Pseudo(&'static str),
    /// The proxy-injected identity column with this name (`rid`).
    Identity(&'static str),
}

impl AddressColumn {
    /// The SQL column name used in WHERE clauses.
    pub fn column_name(&self) -> &'static str {
        match self {
            AddressColumn::Pseudo(n) | AddressColumn::Identity(n) => n,
        }
    }
}

/// A flavor-specific transaction-log reader producing normalized
/// [`RepairRecord`]s.
pub trait LogAdapter {
    /// Reads and normalizes the whole log.
    ///
    /// # Errors
    ///
    /// Introspection failures (wrong flavor, dropped tables, corrupt
    /// images).
    fn scan(&self, db: &Database) -> Result<Vec<RepairRecord>>;

    /// How rows are addressed on this flavor.
    fn address_column(&self) -> AddressColumn;
}

/// Picks the adapter matching `flavor`.
pub fn adapter_for(flavor: Flavor) -> Box<dyn LogAdapter> {
    match flavor {
        Flavor::Postgres => Box::new(PostgresAdapter),
        Flavor::Oracle => Box::new(OracleAdapter),
        Flavor::Sybase => Box::new(SybaseAdapter),
    }
}

// ---------------------------------------------------------------------
// PostgreSQL: full before/after images from the (reverse-engineered) WAL.
// ---------------------------------------------------------------------

/// Adapter over [`introspect::waldump`] (paper §4.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct PostgresAdapter;

/// A log-record field the adapter cannot proceed without.
fn require<T>(v: Option<T>, what: &str) -> Result<T> {
    v.ok_or_else(|| EngineError::Internal(format!("log record missing {what}")))
}

fn named(db: &Database, table: &str, row: &resildb_engine::Row) -> Result<NamedRow> {
    let schema = db.table(table)?.read().schema().clone();
    Ok(schema
        .columns
        .iter()
        .zip(row.values())
        .map(|(c, v)| (c.name.clone(), v.clone()))
        .collect())
}

impl LogAdapter for PostgresAdapter {
    fn scan(&self, db: &Database) -> Result<Vec<RepairRecord>> {
        let mut out = Vec::new();
        for rec in introspect::waldump(db)? {
            let op = match rec.op_name.as_str() {
                "INSERT" => {
                    let row = require(rec.after.as_ref(), "insert after image")?;
                    RepairOp::Insert {
                        address: RowAddress::Pseudo(require(rec.rowid, "insert rowid")?),
                        row: named(db, require(rec.table.as_ref(), "table name")?, row)?,
                    }
                }
                "DELETE" => {
                    let row = require(rec.before.as_ref(), "delete before image")?;
                    RepairOp::Delete {
                        address: RowAddress::Pseudo(require(rec.rowid, "delete rowid")?),
                        row: named(db, require(rec.table.as_ref(), "table name")?, row)?,
                    }
                }
                "UPDATE" => {
                    let table = require(rec.table.as_ref(), "table name")?;
                    let before_full = named(
                        db,
                        table,
                        require(rec.before.as_ref(), "update before image")?,
                    )?;
                    let after_full = named(
                        db,
                        table,
                        require(rec.after.as_ref(), "update after image")?,
                    )?;
                    // Restrict to changed columns, the common denominator.
                    let mut before = Vec::new();
                    let mut after = Vec::new();
                    for ((c, b), (_, a)) in before_full.0.iter().zip(&after_full.0) {
                        if b != a {
                            before.push((c.clone(), b.clone()));
                            after.push((c.clone(), a.clone()));
                        }
                    }
                    RepairOp::Update {
                        address: RowAddress::Pseudo(require(rec.rowid, "update rowid")?),
                        before: NamedRow(before),
                        after: NamedRow(after),
                    }
                }
                "COMMIT" => RepairOp::Commit,
                "ABORT" => RepairOp::Abort,
                _ => continue, // DDL
            };
            out.push(RepairRecord {
                lsn: rec.lsn,
                internal_txn: rec.txn,
                table: rec.table.unwrap_or_default(),
                op,
            });
        }
        Ok(out)
    }

    fn address_column(&self) -> AddressColumn {
        AddressColumn::Pseudo("ctid")
    }
}

// ---------------------------------------------------------------------
// Oracle: parse LogMiner's sql_redo / sql_undo back into row images.
// ---------------------------------------------------------------------

/// Adapter over [`introspect::logminer`] (paper §4.1): recovers row images
/// by parsing the per-record redo/undo SQL.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleAdapter;

fn parse_stmt(sql: &str) -> Result<Statement> {
    resildb_sql::parse_statement(sql)
        .map_err(|e| EngineError::Internal(format!("unparseable LogMiner SQL {sql:?}: {e}")))
}

fn expr_value(e: &Expr) -> Result<Value> {
    match e {
        Expr::Literal(l) => Ok(Value::from_literal(l)),
        other => Err(EngineError::Internal(format!(
            "non-literal value in LogMiner SQL: {other:?}"
        ))),
    }
}

/// Extracts `N` from a `WHERE rowid = N` clause.
fn rowid_from_where(w: &Option<Expr>) -> Result<RowId> {
    if let Some(Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    }) = w
    {
        if let (Expr::Column(c), Expr::Literal(resildb_sql::Literal::Int(n))) = (&**left, &**right)
        {
            if c.column.eq_ignore_ascii_case("rowid") {
                return Ok(RowId(*n as u64));
            }
        }
    }
    Err(EngineError::Internal(format!(
        "LogMiner SQL lacks a rowid predicate: {w:?}"
    )))
}

impl LogAdapter for OracleAdapter {
    fn scan(&self, db: &Database) -> Result<Vec<RepairRecord>> {
        let mut out = Vec::new();
        for rec in introspect::logminer(db)? {
            let op = match rec.operation.as_str() {
                "INSERT" => {
                    let Statement::Insert(ins) =
                        parse_stmt(require(rec.sql_redo.as_ref(), "redo SQL")?)?
                    else {
                        return Err(EngineError::Internal("redo of INSERT not an INSERT".into()));
                    };
                    let row: NamedRow = ins
                        .columns
                        .iter()
                        .zip(&ins.rows[0])
                        .map(|(c, e)| Ok((c.to_ascii_lowercase(), expr_value(e)?)))
                        .collect::<Result<Vec<_>>>()?
                        .into_iter()
                        .collect();
                    RepairOp::Insert {
                        address: RowAddress::Pseudo(require(rec.row_id, "insert rowid")?),
                        row,
                    }
                }
                "DELETE" => {
                    // The undo of a DELETE is the re-inserting INSERT.
                    let Statement::Insert(ins) =
                        parse_stmt(require(rec.sql_undo.as_ref(), "undo SQL")?)?
                    else {
                        return Err(EngineError::Internal("undo of DELETE not an INSERT".into()));
                    };
                    let row: NamedRow = ins
                        .columns
                        .iter()
                        .zip(&ins.rows[0])
                        .map(|(c, e)| Ok((c.to_ascii_lowercase(), expr_value(e)?)))
                        .collect::<Result<Vec<_>>>()?
                        .into_iter()
                        .collect();
                    RepairOp::Delete {
                        address: RowAddress::Pseudo(require(rec.row_id, "delete rowid")?),
                        row,
                    }
                }
                "UPDATE" => {
                    let Statement::Update(redo) =
                        parse_stmt(require(rec.sql_redo.as_ref(), "redo SQL")?)?
                    else {
                        return Err(EngineError::Internal("redo of UPDATE not an UPDATE".into()));
                    };
                    let Statement::Update(undo) =
                        parse_stmt(require(rec.sql_undo.as_ref(), "undo SQL")?)?
                    else {
                        return Err(EngineError::Internal("undo of UPDATE not an UPDATE".into()));
                    };
                    let address = RowAddress::Pseudo(rowid_from_where(&redo.where_clause)?);
                    let after: NamedRow = redo
                        .assignments
                        .iter()
                        .map(|a| Ok((a.column.to_ascii_lowercase(), expr_value(&a.value)?)))
                        .collect::<Result<Vec<_>>>()?
                        .into_iter()
                        .collect();
                    let before: NamedRow = undo
                        .assignments
                        .iter()
                        .map(|a| Ok((a.column.to_ascii_lowercase(), expr_value(&a.value)?)))
                        .collect::<Result<Vec<_>>>()?
                        .into_iter()
                        .collect();
                    RepairOp::Update {
                        address,
                        before,
                        after,
                    }
                }
                "COMMIT" => RepairOp::Commit,
                "ROLLBACK" => RepairOp::Abort,
                _ => continue, // DDL
            };
            out.push(RepairRecord {
                lsn: rec.scn,
                internal_txn: rec.xid,
                table: rec.table_name.unwrap_or_default(),
                op,
            });
        }
        // The adapter never needed the catalog, but keep the signature
        // honest: verify the database really is Oracle-flavored.
        debug_assert_eq!(db.flavor(), Flavor::Oracle);
        Ok(out)
    }

    fn address_column(&self) -> AddressColumn {
        AddressColumn::Pseudo("rowid")
    }
}

// ---------------------------------------------------------------------
// Sybase: dbcc log + dbcc page + the §4.3 offset-adjustment algorithm.
// ---------------------------------------------------------------------

/// Adapter over [`introspect::dbcc_log`]/[`introspect::dbcc_page`]
/// implementing the paper's §4.3 algorithm: `MODIFY` records lack the
/// identity attribute, so the full row is recovered from the page after
/// compensating for in-page row migration caused by later deletes.
#[derive(Debug, Clone, Copy, Default)]
pub struct SybaseAdapter;

/// Decodes a full-row `dbcc` image into a named row.
fn decode_full(db: &Database, table: &str, bytes: &[u8]) -> Result<NamedRow> {
    let schema = db.table(table)?.read().schema().clone();
    let row = decode_row(&schema, bytes)?;
    Ok(schema
        .columns
        .iter()
        .zip(row.values())
        .map(|(c, v)| (c.name.clone(), v.clone()))
        .collect())
}

/// Decodes a MODIFY delta: `[col_idx u16][before][after]` groups.
fn decode_delta(db: &Database, table: &str, bytes: &[u8]) -> Result<(NamedRow, NamedRow)> {
    let schema = db.table(table)?.read().schema().clone();
    let mut pos = 0;
    let mut before = Vec::new();
    let mut after = Vec::new();
    while pos < bytes.len() {
        if pos + 2 > bytes.len() {
            return Err(EngineError::Internal("truncated dbcc delta".into()));
        }
        let idx = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]) as usize;
        pos += 2;
        let col = schema
            .columns
            .get(idx)
            .ok_or_else(|| EngineError::Internal(format!("dbcc delta references column {idx}")))?;
        let (b, used) = decode_value(&bytes[pos..], col.ty)?;
        pos += used;
        let (a, used) = decode_value(&bytes[pos..], col.ty)?;
        pos += used;
        before.push((col.name.clone(), b));
        after.push((col.name.clone(), a));
    }
    Ok((NamedRow(before), NamedRow(after)))
}

fn identity_address(row: &NamedRow) -> Result<RowAddress> {
    match row.get(resildb_proxy::IDENTITY_COLUMN) {
        Some(Value::Int(v)) => Ok(RowAddress::Identity(*v)),
        other => Err(EngineError::Internal(format!(
            "row image lacks the identity column: {other:?}"
        ))),
    }
}

/// Paper §4.3, step 2: adjusts a MODIFY record's page offset for every
/// later DELETE on the same page. Returns either the adjusted offset, or
/// the full row image directly when a later DELETE removed the modified
/// row itself (its log record carries the complete image).
fn adjust_modify_offset<'a>(
    rm: &DbccLogRecord,
    later: impl Iterator<Item = &'a DbccLogRecord>,
) -> AdjustOutcome<'a> {
    let mut off = rm.offset;
    for rd in later {
        if rd.op != DbccOp::Delete || rd.table != rm.table || rd.page != rm.page {
            continue;
        }
        if rd.offset + rd.len <= off {
            // Delete strictly before us in the page: we migrated down.
            off -= rd.len;
        } else if rd.offset <= off && off < rd.offset + rd.len {
            // The delete removed the modified row itself; its record holds
            // the complete image.
            return AdjustOutcome::DeletedLater(rd);
        }
    }
    AdjustOutcome::Offset(off)
}

enum AdjustOutcome<'a> {
    Offset(usize),
    DeletedLater(&'a DbccLogRecord),
}

impl LogAdapter for SybaseAdapter {
    fn scan(&self, db: &Database) -> Result<Vec<RepairRecord>> {
        let log = introspect::dbcc_log(db)?;
        let mut out = Vec::with_capacity(log.len());
        for (i, rec) in log.iter().enumerate() {
            let op = match rec.op {
                DbccOp::Insert => {
                    let row = decode_full(db, &rec.table, &rec.bytes)?;
                    RepairOp::Insert {
                        address: identity_address(&row)?,
                        row,
                    }
                }
                DbccOp::Delete => {
                    let row = decode_full(db, &rec.table, &rec.bytes)?;
                    RepairOp::Delete {
                        address: identity_address(&row)?,
                        row,
                    }
                }
                DbccOp::Modify => {
                    let (before, after) = decode_delta(db, &rec.table, &rec.bytes)?;
                    // Recover the identity attribute via the §4.3 offset
                    // adjustment + dbcc page.
                    let full = match adjust_modify_offset(rec, log[i + 1..].iter()) {
                        AdjustOutcome::Offset(off) => {
                            let bytes =
                                introspect::dbcc_page(db, &rec.table, rec.page, off, rec.len)?;
                            decode_full(db, &rec.table, &bytes)?
                        }
                        AdjustOutcome::DeletedLater(rd) => decode_full(db, &rd.table, &rd.bytes)?,
                    };
                    RepairOp::Update {
                        address: identity_address(&full)?,
                        before,
                        after,
                    }
                }
                DbccOp::Commit => RepairOp::Commit,
                DbccOp::Abort => RepairOp::Abort,
            };
            out.push(RepairRecord {
                lsn: rec.lsn,
                internal_txn: rec.txn,
                table: rec.table.clone(),
                op,
            });
        }
        Ok(out)
    }

    fn address_column(&self) -> AddressColumn {
        AddressColumn::Identity(resildb_proxy::IDENTITY_COLUMN)
    }
}
