//! Flight-recorder capture explorer.
//!
//! Reads a capture produced by the flight recorder — JSONL (one event
//! per line) or Chrome Trace Event Format (as written by `--trace-out`,
//! Perfetto-loadable) — and answers the forensic questions the paper's
//! repair workflow starts from: what did a transaction do, who tainted
//! it, and whom does it taint.
//!
//! ```text
//! resildb-trace <capture> [OPTIONS]
//!
//!   <capture>            capture file (.jsonl or Chrome-trace JSON;
//!                        the format is sniffed from the content)
//!   --txn <id>           print the causal chain of one transaction:
//!                        its timeline, taint sources and damage closure
//!   --dot                emit forensic GraphViz DOT on stdout (with
//!                        --txn: that transaction red, its closure
//!                        orange; rule-pruned edges dashed gray)
//!   --ignore-table <t>   false-dependency rule: dismiss dependencies
//!                        mediated by table <t> (repeatable)
//!   --list               list every transaction in the capture
//!   --repair             print the repair/containment timeline (fence
//!                        raise/shrink/extend/lift and sweep phases)
//! ```
//!
//! With no option beyond the capture, prints a summary (window size,
//! drop count, per-kind histogram).
//!
//! Exit status: 0 on success, 2 on usage, I/O or parse errors.

use std::process::ExitCode;

use resildb_repair::{FalseDepRule, TraceExplorer};
use resildb_sim::telemetry::trace::parse_capture;
use resildb_sim::TraceSnapshot;

struct Options {
    capture: String,
    txn: Option<i64>,
    dot: bool,
    list: bool,
    repair: bool,
    rules: Vec<FalseDepRule>,
}

fn usage() -> String {
    "usage: resildb-trace <capture> [--txn <id>] [--dot] [--ignore-table <t>] [--list] [--repair]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut capture = None;
    let mut opts = Options {
        capture: String::new(),
        txn: None,
        dot: false,
        list: false,
        repair: false,
        rules: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--txn" => {
                let v = it.next().ok_or_else(|| "--txn needs an id".to_string())?;
                opts.txn = Some(
                    v.parse::<i64>()
                        .map_err(|_| format!("invalid txn id `{v}`"))?,
                );
            }
            "--dot" => opts.dot = true,
            "--list" => opts.list = true,
            "--repair" => opts.repair = true,
            "--ignore-table" => {
                let t = it
                    .next()
                    .ok_or_else(|| "--ignore-table needs a table".to_string())?;
                opts.rules.push(FalseDepRule::IgnoreTable(t.clone()));
            }
            "--help" | "-h" => return Err(usage()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{}", usage()))
            }
            file if capture.is_none() => capture = Some(file.to_string()),
            extra => return Err(format!("unexpected argument `{extra}`\n{}", usage())),
        }
    }
    opts.capture = capture.ok_or_else(usage)?;
    Ok(opts)
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_args(args)?;
    let text = std::fs::read_to_string(&opts.capture)
        .map_err(|e| format!("cannot read {}: {e}", opts.capture))?;
    let events = parse_capture(&text).map_err(|e| format!("{}: {e}", opts.capture))?;
    let explorer = TraceExplorer::from_snapshot(TraceSnapshot::from_events(events));

    if opts.dot {
        print!("{}", explorer.to_dot(opts.txn, &opts.rules));
        return Ok(());
    }
    if opts.repair {
        print!("{}", explorer.repair_timeline());
        return Ok(());
    }
    if opts.list {
        for txn in explorer.transactions() {
            println!("{txn}");
        }
        return Ok(());
    }
    match opts.txn {
        Some(txn) => print!("{}", explorer.render_chain(txn)),
        None => print!("{}", explorer.summary()),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
