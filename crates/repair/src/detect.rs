//! Rule-based intrusion detection over the analyzed transaction history
//! (paper §6: "the current prototype does not support intrusion detection;
//! we plan to develop a DBMS-specific intrusion detection tool and
//! integrate it with the proposed intrusion resilience mechanism").
//!
//! Detection here is deliberately simple and DBA-configurable: rules run
//! over the *normalized log records* the repair analysis already produces,
//! so anything a rule flags can be handed straight to
//! [`crate::RepairController::repair`] as the initial attack set.

use resildb_engine::{Lsn, Value};

use crate::controller::Analysis;
use crate::record::{RepairOp, RepairRecord};

/// A DBA-supplied anomaly rule.
#[derive(Debug, Clone, PartialEq)]
pub enum AnomalyRule {
    /// Flags updates that change a numeric column by more than `factor`
    /// in absolute terms (e.g. a balance jumping from 50 to 1 000 000).
    ValueSpike {
        /// Monitored table.
        table: String,
        /// Monitored column.
        column: String,
        /// Maximum tolerated absolute change.
        max_delta: f64,
    },
    /// Flags transactions whose write set exceeds `max_rows` rows —
    /// blanket updates are a classic attack/error signature.
    LargeWriteSet {
        /// Maximum tolerated rows written by one transaction.
        max_rows: usize,
    },
    /// Flags any write to a table that should never be written by
    /// applications (e.g. the tracking tables themselves, or a sealed
    /// audit table).
    ForbiddenTableWrite {
        /// The protected table.
        table: String,
    },
}

/// One detection hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The offending proxy transaction (ready for the repair initial set).
    pub proxy_txn: i64,
    /// Log position of the triggering record (first hit for the txn).
    pub lsn: Lsn,
    /// Human-readable description of what fired.
    pub reason: String,
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn check_value_spike(
    rec: &RepairRecord,
    table: &str,
    column: &str,
    max_delta: f64,
) -> Option<String> {
    if !rec.table.eq_ignore_ascii_case(table) {
        return None;
    }
    let RepairOp::Update { before, after, .. } = &rec.op else {
        return None;
    };
    let (b, a) = (before.get(column)?, after.get(column)?);
    let (b, a) = (numeric(b)?, numeric(a)?);
    let delta = (a - b).abs();
    if delta > max_delta {
        Some(format!(
            "{table}.{column} changed by {delta:.2} (limit {max_delta:.2})"
        ))
    } else {
        None
    }
}

/// Runs `rules` over an analysis, returning at most one detection per
/// transaction (the earliest triggering record), ordered by LSN.
///
/// Only committed, tracked transactions are reported — untracked writes
/// cannot be selectively undone anyway (see the proxy-bypass discussion),
/// and uncommitted ones were already rolled back.
pub fn detect(analysis: &Analysis, rules: &[AnomalyRule]) -> Vec<Detection> {
    let mut detections: Vec<Detection> = Vec::new();
    let mut write_counts: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();

    let flag = |detections: &mut Vec<Detection>, proxy: i64, lsn: Lsn, reason: String| {
        if !detections.iter().any(|d| d.proxy_txn == proxy) {
            detections.push(Detection {
                proxy_txn: proxy,
                lsn,
                reason,
            });
        }
    };

    for rec in &analysis.records {
        let Some(proxy) = analysis.correlation.proxy_id(rec.internal_txn) else {
            continue;
        };
        if crate::is_tracking_table(&rec.table) {
            continue;
        }
        let is_write = matches!(
            rec.op,
            RepairOp::Insert { .. } | RepairOp::Delete { .. } | RepairOp::Update { .. }
        );
        if is_write {
            *write_counts.entry(proxy).or_default() += 1;
        }
        for rule in rules {
            match rule {
                AnomalyRule::ValueSpike {
                    table,
                    column,
                    max_delta,
                } => {
                    if let Some(reason) = check_value_spike(rec, table, column, *max_delta) {
                        flag(&mut detections, proxy, rec.lsn, reason);
                    }
                }
                AnomalyRule::LargeWriteSet { max_rows } => {
                    if is_write && write_counts[&proxy] == max_rows + 1 {
                        flag(
                            &mut detections,
                            proxy,
                            rec.lsn,
                            format!("write set exceeds {max_rows} rows"),
                        );
                    }
                }
                AnomalyRule::ForbiddenTableWrite { table } => {
                    if is_write && rec.table.eq_ignore_ascii_case(table) {
                        flag(
                            &mut detections,
                            proxy,
                            rec.lsn,
                            format!("write to forbidden table {table}"),
                        );
                    }
                }
            }
        }
    }
    detections.sort_by_key(|d| d.lsn);
    detections
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_engine::{Database, Flavor};
    use resildb_proxy::{prepare_database, ProxyConfig, TrackingProxy};
    use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver};

    fn setup() -> (Database, Box<dyn Connection>) {
        let db = Database::in_memory(Flavor::Postgres);
        let native = NativeDriver::new(db.clone(), LinkProfile::local());
        prepare_database(&mut *native.connect().unwrap()).unwrap();
        let driver = TrackingProxy::single_proxy(
            db.clone(),
            LinkProfile::local(),
            ProxyConfig::new(Flavor::Postgres),
        );
        let conn = driver.connect().unwrap();
        (db, conn)
    }

    #[test]
    fn value_spike_flags_the_forged_update_only() {
        let (db, mut conn) = setup();
        conn.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal FLOAT)")
            .unwrap();
        conn.execute("INSERT INTO acct (id, bal) VALUES (1, 100.0)")
            .unwrap();
        conn.execute("UPDATE acct SET bal = bal + 10.0 WHERE id = 1")
            .unwrap();
        conn.execute("ANNOTATE attack").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("UPDATE acct SET bal = 1000000.0 WHERE id = 1")
            .unwrap();
        conn.execute("COMMIT").unwrap();

        let analysis = crate::RepairController::new(db.clone()).analyze().unwrap();
        let hits = detect(
            &analysis,
            &[AnomalyRule::ValueSpike {
                table: "acct".into(),
                column: "bal".into(),
                max_delta: 10_000.0,
            }],
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].reason.contains("acct.bal"));
        // And the hit feeds straight into repair.
        let report = crate::RepairController::new(db.clone())
            .repair(&[hits[0].proxy_txn])
            .unwrap();
        assert!(report.undo_set.contains(&hits[0].proxy_txn));
    }

    #[test]
    fn large_write_set_flags_blanket_updates() {
        let (db, mut conn) = setup();
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .unwrap();
        for i in 0..10 {
            conn.execute(&format!("INSERT INTO t (id, v) VALUES ({i}, 0)"))
                .unwrap();
        }
        // The blanket update touches every row in one transaction.
        conn.execute("UPDATE t SET v = 1").unwrap();
        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let hits = detect(&analysis, &[AnomalyRule::LargeWriteSet { max_rows: 5 }]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].reason.contains("exceeds 5"));
    }

    #[test]
    fn forbidden_table_write_fires_and_dedupes_per_txn() {
        let (db, mut conn) = setup();
        conn.execute("CREATE TABLE audit (id INTEGER)").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO audit (id) VALUES (1)").unwrap();
        conn.execute("INSERT INTO audit (id) VALUES (2)").unwrap();
        conn.execute("COMMIT").unwrap();
        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let hits = detect(
            &analysis,
            &[AnomalyRule::ForbiddenTableWrite {
                table: "audit".into(),
            }],
        );
        assert_eq!(hits.len(), 1, "one detection per transaction");
    }

    #[test]
    fn clean_history_produces_no_detections() {
        let (db, mut conn) = setup();
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
            .unwrap();
        conn.execute("INSERT INTO t (id, v) VALUES (1, 1.0)")
            .unwrap();
        conn.execute("UPDATE t SET v = 2.0 WHERE id = 1").unwrap();
        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let rules = vec![
            AnomalyRule::ValueSpike {
                table: "t".into(),
                column: "v".into(),
                max_delta: 100.0,
            },
            AnomalyRule::LargeWriteSet { max_rows: 50 },
            AnomalyRule::ForbiddenTableWrite {
                table: "secrets".into(),
            },
        ];
        assert!(detect(&analysis, &rules).is_empty());
    }
}
