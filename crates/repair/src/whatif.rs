//! Interactive "what if" exploration of the damage perimeter — the
//! full-scale interactive repair tool the paper's §6 plans ("allows a DBA
//! to interact with the transaction dependency graph ... and explore the
//! damage perimeter by conducting what-if analysis"), as a programmatic
//! session the CLI/GUI layers can wrap.
//!
//! A session holds the DBA's evolving decisions — the initial attack set,
//! active false-dependency rules, and manual inclusions/exclusions — and
//! recomputes the undo set after every change.

use std::collections::BTreeSet;

use crate::controller::Analysis;
use crate::graph::FalseDepRule;

/// An interactive what-if session over one [`Analysis`].
///
/// # Examples
///
/// ```
/// use resildb_core::{Flavor, ResilientDb};
/// use resildb_repair::WhatIfSession;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rdb = ResilientDb::new(Flavor::Postgres)?;
/// let mut conn = rdb.connect()?;
/// conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")?;
/// conn.execute("ANNOTATE attack")?;
/// conn.execute("BEGIN")?;
/// conn.execute("INSERT INTO t (id, v) VALUES (1, 666)")?;
/// conn.execute("COMMIT")?;
/// let attack = rdb.txn_id_by_label("attack")?.unwrap();
///
/// let analysis = rdb.analyze()?;
/// let mut session = WhatIfSession::new(&analysis);
/// session.add_initial(attack);
/// assert!(session.undo_set().contains(&attack));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WhatIfSession<'a> {
    analysis: &'a Analysis,
    initial: BTreeSet<i64>,
    rules: Vec<FalseDepRule>,
    force_include: BTreeSet<i64>,
    force_exclude: BTreeSet<i64>,
}

impl<'a> WhatIfSession<'a> {
    /// Starts a session with an empty attack set and no rules.
    pub fn new(analysis: &'a Analysis) -> Self {
        Self {
            analysis,
            initial: BTreeSet::new(),
            rules: Vec::new(),
            force_include: BTreeSet::new(),
            force_exclude: BTreeSet::new(),
        }
    }

    /// Adds a transaction to the initial attack set.
    pub fn add_initial(&mut self, txn: i64) -> &mut Self {
        self.initial.insert(txn);
        self
    }

    /// Removes a transaction from the initial attack set.
    pub fn remove_initial(&mut self, txn: i64) -> &mut Self {
        self.initial.remove(&txn);
        self
    }

    /// Activates a false-dependency rule.
    pub fn add_rule(&mut self, rule: FalseDepRule) -> &mut Self {
        if !self.rules.contains(&rule) {
            self.rules.push(rule);
        }
        self
    }

    /// Deactivates every rule.
    pub fn clear_rules(&mut self) -> &mut Self {
        self.rules.clear();
        self
    }

    /// Activates [`FalseDepRule::IgnoreDerivedColumns`] rules built from
    /// the static analyzer's derivable-column inference (one rule per
    /// table), the machine-checked replacement for hand-written DBA rules.
    pub fn add_inferred_rules(
        &mut self,
        derivable: &[resildb_analyze::DerivableColumn],
    ) -> &mut Self {
        for rule in FalseDepRule::from_derivable_columns(derivable) {
            self.add_rule(rule);
        }
        self
    }

    /// Forces a transaction into the undo set regardless of dependency
    /// analysis — the DBA's remedy for the §3.1 false-*negative* cases
    /// (dependencies the tracker cannot see, like the service-fee
    /// example).
    pub fn force_include(&mut self, txn: i64) -> &mut Self {
        self.force_exclude.remove(&txn);
        self.force_include.insert(txn);
        self
    }

    /// Forces a transaction (and only it — its dependents remain judged
    /// by the graph) out of the undo set: the remedy for false positives
    /// the rules cannot express.
    pub fn force_exclude(&mut self, txn: i64) -> &mut Self {
        self.force_include.remove(&txn);
        self.force_exclude.insert(txn);
        self
    }

    /// Clears a manual decision for `txn`.
    pub fn clear_override(&mut self, txn: i64) -> &mut Self {
        self.force_include.remove(&txn);
        self.force_exclude.remove(&txn);
        self
    }

    /// The active rules.
    pub fn rules(&self) -> &[FalseDepRule] {
        &self.rules
    }

    /// The current initial attack set.
    pub fn initial(&self) -> &BTreeSet<i64> {
        &self.initial
    }

    /// Recomputes the undo set under the current decisions: graph closure
    /// of the initial set (and of forced inclusions — their dependents are
    /// corrupted too) under the rules, minus forced exclusions.
    pub fn undo_set(&self) -> BTreeSet<i64> {
        let mut seeds: Vec<i64> = self.initial.iter().copied().collect();
        seeds.extend(self.force_include.iter().copied());
        let mut set = self.analysis.graph.closure(&seeds, &self.rules);
        for t in &self.force_exclude {
            set.remove(t);
        }
        set
    }

    /// The transactions saved under the current decisions.
    pub fn saved_set(&self) -> BTreeSet<i64> {
        let undo = self.undo_set();
        self.analysis
            .tracked_transactions()
            .into_iter()
            .filter(|t| !undo.contains(t))
            .collect()
    }

    /// Renders the graph with the current undo set highlighted
    /// (paper Figure 3, driven interactively).
    pub fn to_dot(&self) -> String {
        self.analysis.to_dot(&self.undo_set())
    }

    /// A one-line summary for interactive display.
    pub fn summary(&self) -> String {
        let undo = self.undo_set();
        let tracked = self.analysis.tracked_transactions().len();
        format!(
            "undo {} of {} tracked txns ({} rules, {} manual includes, {} manual excludes)",
            undo.len(),
            tracked,
            self.rules.len(),
            self.force_include.len(),
            self.force_exclude.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_engine::{Database, Flavor, Value};
    use resildb_proxy::{prepare_database, ProxyConfig, TrackingProxy};
    use resildb_wire::{Driver, LinkProfile, NativeDriver};

    /// Three transactions: attack → dependent reader; one independent.
    fn scenario() -> (Database, i64, i64, i64) {
        let db = Database::in_memory(Flavor::Postgres);
        let native = NativeDriver::new(db.clone(), LinkProfile::local());
        prepare_database(&mut *native.connect().unwrap()).unwrap();
        let config = ProxyConfig::builder(Flavor::Postgres)
            .record_read_only_deps(true)
            .build();
        let driver = TrackingProxy::single_proxy(db.clone(), LinkProfile::local(), config);
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .unwrap();
        for (label, stmts) in [
            ("attack", vec!["INSERT INTO t (id, v) VALUES (1, 666)"]),
            (
                "dependent",
                vec![
                    "SELECT v FROM t WHERE id = 1",
                    "INSERT INTO t (id, v) VALUES (2, 1)",
                ],
            ),
            ("independent", vec!["INSERT INTO t (id, v) VALUES (3, 3)"]),
        ] {
            conn.execute(&format!("ANNOTATE {label}")).unwrap();
            conn.execute("BEGIN").unwrap();
            for s in stmts {
                conn.execute(s).unwrap();
            }
            conn.execute("COMMIT").unwrap();
        }
        let id = |label: &str| {
            let mut s = db.session();
            match s
                .query(&format!("SELECT tr_id FROM annot WHERE descr = '{label}'"))
                .unwrap()
                .rows[0][0]
            {
                Value::Int(v) => v,
                ref other => panic!("{other:?}"),
            }
        };
        let (a, d, i) = (id("attack"), id("dependent"), id("independent"));
        (db, a, d, i)
    }

    #[test]
    fn closure_recomputes_after_each_decision() {
        let (db, attack, dependent, independent) = scenario();
        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let mut wi = WhatIfSession::new(&analysis);
        assert!(wi.undo_set().is_empty());
        wi.add_initial(attack);
        assert_eq!(wi.undo_set(), [attack, dependent].into_iter().collect());
        assert!(wi.saved_set().contains(&independent));
        wi.remove_initial(attack);
        assert!(wi.undo_set().is_empty());
    }

    #[test]
    fn force_include_pulls_in_dependents_too() {
        let (db, attack, dependent, independent) = scenario();
        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let mut wi = WhatIfSession::new(&analysis);
        // The DBA knows `attack` is bad but starts from the independent
        // one; forcing the attack in also drags its dependent in.
        wi.add_initial(independent);
        wi.force_include(attack);
        let undo = wi.undo_set();
        assert!(undo.contains(&attack));
        assert!(undo.contains(&dependent));
        assert!(undo.contains(&independent));
    }

    #[test]
    fn force_exclude_spares_a_single_transaction() {
        let (db, attack, dependent, _) = scenario();
        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let mut wi = WhatIfSession::new(&analysis);
        wi.add_initial(attack);
        wi.force_exclude(dependent);
        let undo = wi.undo_set();
        assert!(undo.contains(&attack));
        assert!(!undo.contains(&dependent));
        wi.clear_override(dependent);
        assert!(wi.undo_set().contains(&dependent));
    }

    #[test]
    fn include_and_exclude_are_mutually_exclusive() {
        let (db, attack, _, _) = scenario();
        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let mut wi = WhatIfSession::new(&analysis);
        wi.force_exclude(attack);
        wi.force_include(attack);
        assert!(wi.undo_set().contains(&attack), "last decision wins");
        wi.force_exclude(attack);
        assert!(!wi.undo_set().contains(&attack));
    }

    #[test]
    fn summary_and_dot_render() {
        let (db, attack, _, _) = scenario();
        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let mut wi = WhatIfSession::new(&analysis);
        wi.add_initial(attack);
        assert!(wi.summary().contains("undo 2 of 3"));
        assert!(wi.to_dot().contains("fillcolor"));
    }

    #[test]
    fn inferred_derivable_columns_shrink_the_undo_set() {
        // End to end: the static analyzer infers `warehouse.w_ytd` from the
        // workload's own statements, the session consumes the inference via
        // `add_inferred_rules`, and the Payment→New-Order row-level false
        // dependency disappears from the undo set.
        let db = Database::in_memory(Flavor::Postgres);
        let native = NativeDriver::new(db.clone(), LinkProfile::local());
        prepare_database(&mut *native.connect().unwrap()).unwrap();
        let driver = TrackingProxy::single_proxy(db.clone(), LinkProfile::local(), {
            ProxyConfig::builder(Flavor::Postgres)
                .record_read_only_deps(true)
                .build()
        });
        let mut conn = driver.connect().unwrap();
        conn.execute(
            "CREATE TABLE warehouse (w_id INTEGER PRIMARY KEY, w_tax INTEGER, w_ytd INTEGER)",
        )
        .unwrap();
        conn.execute("CREATE TABLE orders (o_id INTEGER PRIMARY KEY, o_w_id INTEGER)")
            .unwrap();
        conn.execute("INSERT INTO warehouse (w_id, w_tax, w_ytd) VALUES (1, 7, 0)")
            .unwrap();

        // The application's statement corpus: Payment bumps the year-to-
        // date accumulator, New-Order reads the tax rate from the same row.
        let payment = ["UPDATE warehouse SET w_ytd = w_ytd + 10 WHERE w_id = 1"];
        let neworder = [
            "SELECT w_tax FROM warehouse WHERE w_id = 1",
            "INSERT INTO orders (o_id, o_w_id) VALUES (1, 1)",
        ];
        for (label, stmts) in [("payment", &payment[..]), ("neworder", &neworder[..])] {
            conn.execute(&format!("ANNOTATE {label}")).unwrap();
            conn.execute("BEGIN").unwrap();
            for s in stmts {
                conn.execute(s).unwrap();
            }
            conn.execute("COMMIT").unwrap();
        }
        let id = |label: &str| {
            let mut s = db.session();
            match s
                .query(&format!("SELECT tr_id FROM annot WHERE descr = '{label}'"))
                .unwrap()
                .rows[0][0]
            {
                Value::Int(v) => v,
                ref other => panic!("{other:?}"),
            }
        };
        let (payment_id, neworder_id) = (id("payment"), id("neworder"));

        // Static inference over the same corpus finds the accumulator.
        let corpus: Vec<resildb_sql::Statement> = payment
            .iter()
            .chain(&neworder)
            .map(|s| resildb_sql::parse_statement(s).unwrap())
            .collect();
        let derivable = resildb_analyze::infer_derivable_columns(&corpus, None);
        assert_eq!(
            derivable.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
            ["warehouse.w_ytd"]
        );

        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let mut wi = WhatIfSession::new(&analysis);
        wi.add_initial(payment_id);
        assert!(
            wi.undo_set().contains(&neworder_id),
            "row-level tracking makes New-Order depend on Payment"
        );
        wi.add_inferred_rules(&derivable);
        assert_eq!(wi.rules().len(), 1);
        let undo = wi.undo_set();
        assert!(undo.contains(&payment_id));
        assert!(
            !undo.contains(&neworder_id),
            "the inferred w_ytd rule discards the false dependency: {undo:?}"
        );
    }

    #[test]
    fn rules_apply_and_clear() {
        let (db, attack, _, _) = scenario();
        let analysis = crate::RepairController::new(db).analyze().unwrap();
        let mut wi = WhatIfSession::new(&analysis);
        wi.add_initial(attack);
        let before = wi.undo_set().len();
        wi.add_rule(FalseDepRule::IgnoreTable("t".into()));
        wi.add_rule(FalseDepRule::IgnoreTable("t".into())); // deduped
        assert_eq!(wi.rules().len(), 1);
        assert!(wi.undo_set().len() <= before);
        wi.clear_rules();
        assert_eq!(wi.undo_set().len(), before);
    }
}
