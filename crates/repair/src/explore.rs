//! Offline exploration of flight-recorder captures: per-transaction
//! timelines, causal ("who tainted whom") chains reconstructed from
//! harvested-dependency events, and forensic DOT rendering.
//!
//! This is the engine behind the `resildb-trace` binary, kept as a
//! library module so the timeline/chain logic is unit-testable without
//! spawning a process.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use resildb_sim::{EventKind, TraceSnapshot};

use crate::graph::{DepGraph, EdgeKind, EdgeProvenance, FalseDepRule};

/// The causal neighbourhood of one transaction in a capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalChain {
    /// The transaction under scrutiny.
    pub txn: i64,
    /// Transactions it transitively read from — who tainted it.
    pub tainted_by: BTreeSet<i64>,
    /// Transactions that transitively read from it — whom it taints
    /// (its damage closure, excluding itself).
    pub taints: BTreeSet<i64>,
}

/// An offline view over a [`TraceSnapshot`], with the dependency graph
/// rebuilt from its `dep_harvested` events.
#[derive(Debug)]
pub struct TraceExplorer {
    snapshot: TraceSnapshot,
    graph: DepGraph,
}

impl TraceExplorer {
    /// Builds an explorer from a parsed capture. Every `dep_harvested`
    /// event becomes one dependency edge (the harvesting transaction
    /// depends on the stamped writer, mediated by the recorded table).
    pub fn from_snapshot(snapshot: TraceSnapshot) -> Self {
        let mut graph = DepGraph::new();
        for ev in &snapshot.events {
            if let EventKind::DepHarvested { dep, table } = &ev.kind {
                graph.add_edge(
                    ev.txn,
                    *dep,
                    EdgeProvenance {
                        table: table.clone(),
                        kind: EdgeKind::Read {
                            read_columns: Vec::new(),
                        },
                    },
                );
            }
        }
        Self { snapshot, graph }
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &TraceSnapshot {
        &self.snapshot
    }

    /// The dependency graph reconstructed from harvested-dependency
    /// events.
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// Every proxy transaction id appearing in the capture (event owners
    /// and harvested writers; the out-of-transaction id `0` is excluded).
    pub fn transactions(&self) -> BTreeSet<i64> {
        let mut all: BTreeSet<i64> = self
            .snapshot
            .events
            .iter()
            .map(|e| e.txn)
            .filter(|&t| t != 0)
            .collect();
        all.extend(self.graph.transactions().into_iter().filter(|&t| t != 0));
        all
    }

    /// The causal neighbourhood of `txn`: everything it transitively
    /// depends on (`tainted_by`) and everything transitively depending on
    /// it (`taints`).
    pub fn causal_chain(&self, txn: i64) -> CausalChain {
        let mut tainted_by = BTreeSet::new();
        let mut frontier = vec![txn];
        while let Some(t) = frontier.pop() {
            for dep in self.graph.dependencies_of(t) {
                if tainted_by.insert(dep) {
                    frontier.push(dep);
                }
            }
        }
        tainted_by.remove(&txn);
        let mut taints = self.graph.closure(&[txn], &[]);
        taints.remove(&txn);
        CausalChain {
            txn,
            tainted_by,
            taints,
        }
    }

    /// The event timeline of `txn`, one line per event in tick order.
    pub fn timeline(&self, txn: i64) -> String {
        let mut out = String::new();
        for ev in &self.snapshot.events {
            if ev.txn == txn {
                let _ = writeln!(out, "#{:<8} s{:<4} {}", ev.seq, ev.session, ev.kind);
            }
        }
        out
    }

    /// Renders the causal chain of `txn` as text: its timeline, its
    /// direct and transitive taint sources, and its damage closure.
    pub fn render_chain(&self, txn: i64) -> String {
        let chain = self.causal_chain(txn);
        let mut out = String::new();
        let _ = writeln!(out, "txn {txn} timeline:");
        let timeline = self.timeline(txn);
        if timeline.is_empty() {
            out.push_str("  (no events in capture window)\n");
        } else {
            for line in timeline.lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        let direct = self.graph.dependencies_of(txn);
        let _ = writeln!(out, "reads from (direct): {}", fmt_set(&direct));
        let _ = writeln!(
            out,
            "tainted by (transitive): {}",
            fmt_set(&chain.tainted_by)
        );
        for dep in &direct {
            let tables: BTreeSet<&str> = self
                .graph
                .edge(txn, *dep)
                .iter()
                .map(|p| p.table.as_str())
                .collect();
            let _ = writeln!(
                out,
                "  txn {dep} -> txn {txn} via {}",
                tables.into_iter().collect::<Vec<_>>().join(", ")
            );
        }
        let _ = writeln!(out, "taints (damage closure): {}", fmt_set(&chain.taints));
        out
    }

    /// A whole-capture summary: window size, drop count, per-kind event
    /// histogram and transaction count.
    pub fn summary(&self) -> String {
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for ev in &self.snapshot.events {
            *counts.entry(ev.kind.name()).or_insert(0) += 1;
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events: {} (capacity {}, dropped {})",
            self.snapshot.events.len(),
            self.snapshot.capacity,
            self.snapshot.dropped
        );
        let _ = writeln!(out, "transactions: {}", self.transactions().len());
        for (name, n) in counts {
            let _ = writeln!(out, "  {name:<18} {n}");
        }
        out
    }

    /// The repair timeline: every repair-phase and containment-fence
    /// event in tick order, one line each. This is the live-repair view —
    /// `fence_raised → fence_shrunk → compensated… → fence_lifted`
    /// interleaved with analysis phases — reconstructed from the capture.
    pub fn repair_timeline(&self) -> String {
        let mut out = String::new();
        for ev in &self.snapshot.events {
            if matches!(
                ev.kind,
                EventKind::LogScan { .. }
                    | EventKind::Correlate { .. }
                    | EventKind::ClosureComputed { .. }
                    | EventKind::Compensated { .. }
                    | EventKind::IncidentDetected { .. }
                    | EventKind::SweepComplete { .. }
                    | EventKind::FenceRaised { .. }
                    | EventKind::FenceShrunk { .. }
                    | EventKind::FenceExtended { .. }
                    | EventKind::FenceLifted
            ) {
                let _ = writeln!(out, "#{:<8} {}", ev.seq, ev.kind);
            }
        }
        if out.is_empty() {
            out.push_str("(no repair events in capture window)\n");
        }
        out
    }

    /// Renders the reconstructed graph as forensic DOT. With a focus
    /// transaction, that transaction is filled red and its damage closure
    /// under `rules` orange; edges dismissed by `rules` are dashed gray.
    pub fn to_dot(&self, focus: Option<i64>, rules: &[FalseDepRule]) -> String {
        let pruned = self.graph.pruned_edges(rules);
        match focus {
            Some(txn) => {
                let attack: BTreeSet<i64> = [txn].into_iter().collect();
                let closure = self.graph.closure(&[txn], rules);
                self.graph
                    .to_dot_styled(&attack, Some(&closure), Some(&pruned))
            }
            None => self
                .graph
                .to_dot_styled(&BTreeSet::new(), None, Some(&pruned)),
        }
    }
}

fn fmt_set(s: &BTreeSet<i64>) -> String {
    if s.is_empty() {
        "(none)".to_string()
    } else {
        s.iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_sim::{FlightRecorder, TraceVerdict};

    /// 1 -> 2 -> 3 chain plus an unrelated txn 9, recorded as a real
    /// capture through a FlightRecorder.
    fn capture() -> TraceSnapshot {
        let rec = FlightRecorder::with_capacity(128);
        rec.set_enabled(true);
        rec.emit(1, 1, EventKind::TxnBegin);
        rec.emit(
            1,
            1,
            EventKind::StmtRewrite {
                cache_hit: false,
                verdict: TraceVerdict::Sound,
            },
        );
        rec.emit(1, 1, EventKind::Commit);
        rec.emit(2, 1, EventKind::TxnBegin);
        rec.emit(
            2,
            1,
            EventKind::DepHarvested {
                dep: 1,
                table: "accounts".into(),
            },
        );
        rec.emit(2, 1, EventKind::TransDepInsert { deps: 1 });
        rec.emit(2, 1, EventKind::Commit);
        rec.emit(3, 2, EventKind::TxnBegin);
        rec.emit(
            3,
            2,
            EventKind::DepHarvested {
                dep: 2,
                table: "orders".into(),
            },
        );
        rec.emit(3, 2, EventKind::Commit);
        rec.emit(9, 3, EventKind::TxnBegin);
        rec.emit(9, 3, EventKind::Abort);
        rec.snapshot()
    }

    #[test]
    fn chain_reports_taint_in_both_directions() {
        let ex = TraceExplorer::from_snapshot(capture());
        let chain = ex.causal_chain(2);
        assert_eq!(chain.tainted_by, [1].into_iter().collect());
        assert_eq!(chain.taints, [3].into_iter().collect());
        let chain = ex.causal_chain(1);
        assert!(chain.tainted_by.is_empty());
        assert_eq!(chain.taints, [2, 3].into_iter().collect());
        let chain = ex.causal_chain(9);
        assert!(chain.tainted_by.is_empty());
        assert!(chain.taints.is_empty());
    }

    #[test]
    fn timeline_lists_only_the_requested_txn() {
        let ex = TraceExplorer::from_snapshot(capture());
        let tl = ex.timeline(1);
        assert_eq!(tl.lines().count(), 3);
        assert!(tl.contains("txn_begin"));
        assert!(tl.contains("stmt_rewrite cache_hit=false verdict=sound"));
        assert!(tl.contains("commit"));
        assert!(!tl.contains("dep_harvested"));
    }

    #[test]
    fn render_chain_names_the_mediating_table() {
        let ex = TraceExplorer::from_snapshot(capture());
        let text = ex.render_chain(2);
        assert!(text.contains("tainted by (transitive): 1"));
        assert!(text.contains("txn 1 -> txn 2 via accounts"));
        assert!(text.contains("taints (damage closure): 3"));
    }

    #[test]
    fn transactions_include_event_owners_and_writers() {
        let ex = TraceExplorer::from_snapshot(capture());
        assert_eq!(ex.transactions(), [1, 2, 3, 9].into_iter().collect());
    }

    #[test]
    fn dot_focus_styles_closure_and_pruned_edges() {
        let ex = TraceExplorer::from_snapshot(capture());
        let rules = vec![FalseDepRule::IgnoreTable("orders".into())];
        let dot = ex.to_dot(Some(1), &rules);
        assert!(dot.contains("t1 [label=\"txn_1\", style=filled, fillcolor=indianred1]"));
        assert!(dot.contains("t2 [label=\"txn_2\", style=filled, fillcolor=orange]"));
        // txn 3's only edge is pruned, so it stays out of the closure.
        assert!(dot.contains("t3 [label=\"txn_3\"]"));
        assert!(dot.contains("t2 -> t3 [style=dashed, color=gray, label=\"pruned\"];"));
    }

    #[test]
    fn summary_counts_kinds() {
        let ex = TraceExplorer::from_snapshot(capture());
        let s = ex.summary();
        assert!(s.contains("events: 12"));
        assert!(s.contains("transactions: 4"));
        let count_of = |name: &str| {
            s.lines()
                .find_map(|l| {
                    let mut it = l.split_whitespace();
                    (it.next() == Some(name)).then(|| it.next().map(str::to_string))
                })
                .flatten()
        };
        assert_eq!(count_of("txn_begin").as_deref(), Some("4"));
        assert_eq!(count_of("commit").as_deref(), Some("3"));
        assert_eq!(count_of("abort").as_deref(), Some("1"));
    }
}
