//! Live progress observation for a running repair.
//!
//! [`RepairProgress`] is a cheap cloneable handle onto a
//! [`RepairController`](crate::RepairController)'s current state:
//! which phase it is in, how many transactions of the undo set have
//! been compensated, the closure and fence sizes, and how many
//! fence-extension rounds the sweep has needed. The controller updates
//! it with relaxed atomic stores as it moves through
//! `analyze → plan → execute`, so an observer thread (the metrics
//! endpoint, `resildb-top`, a test) can poll mid-flight without
//! touching any controller lock.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use resildb_sim::MetricsSnapshot;

/// Where a repair currently is in its lifecycle.
///
/// Quiesced repairs move `Idle → Analyze → Plan → Sweep → Done`; live
/// repairs insert `Drain` after the fence raise and may loop
/// `Sweep → Extend → Sweep` while the closure converges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum RepairPhase {
    /// No repair is executing.
    #[default]
    Idle = 0,
    /// Reading the log and building the dependency graph.
    Analyze = 1,
    /// Computing the damage closure.
    Plan = 2,
    /// Live only: waiting for pre-fence in-flight transactions.
    Drain = 3,
    /// Running the compensation sweep.
    Sweep = 4,
    /// Live only: extending the fence over a grown closure.
    Extend = 5,
    /// The last execution finished (successfully or not).
    Done = 6,
}

impl RepairPhase {
    /// Stable lower-case name (used in JSON and terminal output).
    pub fn name(self) -> &'static str {
        match self {
            RepairPhase::Idle => "idle",
            RepairPhase::Analyze => "analyze",
            RepairPhase::Plan => "plan",
            RepairPhase::Drain => "drain",
            RepairPhase::Sweep => "sweep",
            RepairPhase::Extend => "extend",
            RepairPhase::Done => "done",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => RepairPhase::Analyze,
            2 => RepairPhase::Plan,
            3 => RepairPhase::Drain,
            4 => RepairPhase::Sweep,
            5 => RepairPhase::Extend,
            6 => RepairPhase::Done,
            _ => RepairPhase::Idle,
        }
    }
}

impl std::fmt::Display for RepairPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug, Default)]
struct ProgressInner {
    phase: AtomicU8,
    compensated: AtomicU64,
    total: AtomicU64,
    closure: AtomicU64,
    fence_tables: AtomicU64,
    fence_rows: AtomicU64,
    extension_rounds: AtomicU64,
}

/// Shared, cloneable progress handle; see module docs. Clones observe
/// the same repair (`Arc` inside).
#[derive(Debug, Clone, Default)]
pub struct RepairProgress {
    inner: Arc<ProgressInner>,
}

impl RepairProgress {
    /// A fresh idle handle (also what `Default` gives).
    pub fn new() -> Self {
        Self::default()
    }

    /// The phase the repair is currently in.
    pub fn phase(&self) -> RepairPhase {
        RepairPhase::from_u8(self.inner.phase.load(Ordering::Relaxed))
    }

    /// Whether an execution is in flight (between `execute` entry and
    /// its exit) — the repair half of the endpoint's `/ready` predicate.
    pub fn is_executing(&self) -> bool {
        !matches!(self.phase(), RepairPhase::Idle | RepairPhase::Done)
    }

    /// Transactions compensated so far by the current (or last) sweep.
    pub fn compensated(&self) -> u64 {
        self.inner.compensated.load(Ordering::Relaxed)
    }

    /// Size of the undo set the sweep is working through.
    pub fn total(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Size of the most recently computed damage closure.
    pub fn closure(&self) -> u64 {
        self.inner.closure.load(Ordering::Relaxed)
    }

    /// Tables fenced by a live repair's static raise.
    pub fn fence_tables(&self) -> u64 {
        self.inner.fence_tables.load(Ordering::Relaxed)
    }

    /// Rows individually fenced after the dynamic shrink.
    pub fn fence_rows(&self) -> u64 {
        self.inner.fence_rows.load(Ordering::Relaxed)
    }

    /// Fence-extension rounds the sweep has needed so far.
    pub fn extension_rounds(&self) -> u64 {
        self.inner.extension_rounds.load(Ordering::Relaxed)
    }

    /// Sweep completion as a fraction in `[0, 1]`; `None` before the
    /// undo set is known.
    pub fn fraction(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        Some((self.compensated() as f64 / total as f64).min(1.0))
    }

    /// Fold the current state into a metrics snapshot as
    /// `repair.progress.*` gauges (scraped via `/metrics`).
    pub fn fold_metrics(&self, snap: &mut MetricsSnapshot) {
        snap.set_gauge("repair.progress.phase", f64::from(self.phase() as u8));
        snap.set_gauge("repair.progress.compensated", self.compensated() as f64);
        snap.set_gauge("repair.progress.total", self.total() as f64);
        snap.set_gauge("repair.progress.closure", self.closure() as f64);
        snap.set_gauge("repair.progress.fence_tables", self.fence_tables() as f64);
        snap.set_gauge("repair.progress.fence_rows", self.fence_rows() as f64);
        snap.set_gauge(
            "repair.progress.extension_rounds",
            self.extension_rounds() as f64,
        );
    }

    // ---- controller-side mutators (crate-private) -------------------

    pub(crate) fn set_phase(&self, phase: RepairPhase) {
        self.inner.phase.store(phase as u8, Ordering::Relaxed);
    }

    /// Reset the per-execution counters at `execute` entry.
    pub(crate) fn begin(&self, total: u64) {
        self.inner.compensated.store(0, Ordering::Relaxed);
        self.inner.total.store(total, Ordering::Relaxed);
        self.inner.extension_rounds.store(0, Ordering::Relaxed);
        self.inner.fence_tables.store(0, Ordering::Relaxed);
        self.inner.fence_rows.store(0, Ordering::Relaxed);
    }

    pub(crate) fn add_compensated(&self, n: u64) {
        self.inner.compensated.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn set_total(&self, total: u64) {
        self.inner.total.store(total, Ordering::Relaxed);
    }

    pub(crate) fn set_closure(&self, n: u64) {
        self.inner.closure.store(n, Ordering::Relaxed);
    }

    pub(crate) fn set_fence_tables(&self, n: u64) {
        self.inner.fence_tables.store(n, Ordering::Relaxed);
    }

    pub(crate) fn set_fence_rows(&self, n: u64) {
        self.inner.fence_rows.store(n, Ordering::Relaxed);
    }

    pub(crate) fn set_extension_rounds(&self, n: u64) {
        self.inner.extension_rounds.store(n, Ordering::Relaxed);
    }
}

/// Sets the phase to [`RepairPhase::Done`] when dropped, so `execute`
/// lands on `Done` on every exit path (success, error, or unwind).
pub(crate) struct PhaseDone {
    pub(crate) progress: RepairProgress,
}

impl Drop for PhaseDone {
    fn drop(&mut self) {
        self.progress.set_phase(RepairPhase::Done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_round_trip_and_report_executing() {
        let p = RepairProgress::new();
        assert_eq!(p.phase(), RepairPhase::Idle);
        assert!(!p.is_executing());
        for phase in [
            RepairPhase::Analyze,
            RepairPhase::Plan,
            RepairPhase::Drain,
            RepairPhase::Sweep,
            RepairPhase::Extend,
        ] {
            p.set_phase(phase);
            assert_eq!(p.phase(), phase);
            assert!(p.is_executing(), "{phase} should count as executing");
        }
        p.set_phase(RepairPhase::Done);
        assert!(!p.is_executing());
    }

    #[test]
    fn clones_observe_the_same_repair() {
        let p = RepairProgress::new();
        let observer = p.clone();
        p.begin(10);
        p.add_compensated(4);
        p.set_closure(10);
        assert_eq!(observer.compensated(), 4);
        assert_eq!(observer.total(), 10);
        assert_eq!(observer.fraction(), Some(0.4));
    }

    #[test]
    fn begin_resets_per_execution_counters() {
        let p = RepairProgress::new();
        p.begin(5);
        p.add_compensated(5);
        p.set_extension_rounds(2);
        p.set_fence_tables(9);
        p.set_fence_rows(40);
        p.begin(3);
        assert_eq!(p.compensated(), 0);
        assert_eq!(p.total(), 3);
        assert_eq!(p.extension_rounds(), 0);
        assert_eq!(p.fence_tables(), 0);
        assert_eq!(p.fence_rows(), 0);
    }

    #[test]
    fn done_guard_fires_on_drop() {
        let p = RepairProgress::new();
        p.set_phase(RepairPhase::Sweep);
        {
            let _guard = PhaseDone {
                progress: p.clone(),
            };
            assert!(p.is_executing());
        }
        assert_eq!(p.phase(), RepairPhase::Done);
    }

    #[test]
    fn fold_metrics_exports_progress_gauges() {
        let p = RepairProgress::new();
        p.set_phase(RepairPhase::Sweep);
        p.begin(8);
        p.add_compensated(3);
        p.set_fence_rows(17);
        let mut snap = MetricsSnapshot::default();
        p.fold_metrics(&mut snap);
        assert_eq!(snap.gauge("repair.progress.phase"), Some(4.0));
        assert_eq!(snap.gauge("repair.progress.compensated"), Some(3.0));
        assert_eq!(snap.gauge("repair.progress.total"), Some(8.0));
        assert_eq!(snap.gauge("repair.progress.fence_rows"), Some(17.0));
    }
}
