//! The end-to-end repair driver: analyze → choose undo set → compensate.

use std::collections::{BTreeSet, HashMap};

use resildb_engine::{Database, Value};
use resildb_sim::telemetry::names as span_names;
use resildb_sim::EventKind;
use resildb_wire::{Driver, LinkProfile, NativeDriver};

use crate::adapters::{adapter_for, LogAdapter};
use crate::compensate::{run_compensation, CompensationOutcome};
use crate::correlate::TxnCorrelation;
use crate::error::RepairError;
use crate::graph::{DepGraph, EdgeKind, EdgeProvenance, FalseDepRule};
use crate::record::{RepairOp, RepairRecord};

/// Everything the analysis phase learns from the database and its log.
#[derive(Debug)]
pub struct Analysis {
    /// Normalized log records (LSN order).
    pub records: Vec<RepairRecord>,
    /// Proxy ↔ internal id mapping.
    pub correlation: TxnCorrelation,
    /// The full dependency graph (online read deps + log-reconstructed
    /// write deps), labelled from `annot`.
    pub graph: DepGraph,
}

impl Analysis {
    /// Computes the undo set for an initial attack set under the given
    /// false-dependency rules — the "what if" primitive the paper's
    /// interactive repair tool is built around.
    pub fn undo_set(&self, initial: &[i64], rules: &[FalseDepRule]) -> BTreeSet<i64> {
        self.graph.closure(initial, rules)
    }

    /// Renders the dependency graph as GraphViz DOT, highlighting
    /// `highlight` (paper Figure 3).
    pub fn to_dot(&self, highlight: &BTreeSet<i64>) -> String {
        self.graph.to_dot(highlight)
    }

    /// Renders the dependency graph as forensic DOT: the attack set
    /// `initial` filled red, the rest of its damage closure under `rules`
    /// filled orange, and rule-pruned edges dashed gray.
    pub fn to_dot_forensic(&self, initial: &[i64], rules: &[FalseDepRule]) -> String {
        let attack: BTreeSet<i64> = initial.iter().copied().collect();
        let closure = self.graph.closure(initial, rules);
        let pruned = self.graph.pruned_edges(rules);
        self.graph
            .to_dot_styled(&attack, Some(&closure), Some(&pruned))
    }

    /// Every tracked (committed, correlated) proxy transaction id.
    pub fn tracked_transactions(&self) -> BTreeSet<i64> {
        self.correlation.internal_of.keys().copied().collect()
    }
}

/// Report of a completed repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// The proxy transactions rolled back.
    pub undo_set: BTreeSet<i64>,
    /// Total tracked transactions at repair time.
    pub tracked_total: usize,
    /// Tracked transactions whose effects survived.
    pub saved: usize,
    /// What the compensation sweep did.
    pub outcome: CompensationOutcome,
}

impl RepairReport {
    /// Percentage of tracked transactions preserved by the repair
    /// (the right-hand column of paper Figure 5).
    pub fn saved_percentage(&self) -> f64 {
        if self.tracked_total == 0 {
            100.0
        } else {
            100.0 * self.saved as f64 / self.tracked_total as f64
        }
    }
}

/// The repair tool for one database.
pub struct RepairTool {
    db: Database,
    adapter: Box<dyn LogAdapter>,
}

impl std::fmt::Debug for RepairTool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairTool")
            .field("flavor", &self.db.flavor())
            .finish_non_exhaustive()
    }
}

impl RepairTool {
    /// Creates a tool with the adapter matching the database's flavor.
    pub fn new(db: Database) -> Self {
        let adapter = adapter_for(db.flavor());
        Self { db, adapter }
    }

    /// Reads the log and tracking tables and builds the dependency graph.
    ///
    /// # Errors
    ///
    /// Log introspection or tracking-table read failures.
    pub fn analyze(&self) -> Result<Analysis, RepairError> {
        let telemetry = self.db.sim().telemetry();
        let records = {
            let _span = telemetry.span(span_names::REPAIR_LOG_SCAN);
            self.adapter.scan(&self.db)?
        };
        telemetry.flight().emit(
            0,
            0,
            EventKind::LogScan {
                records: records.len() as u64,
            },
        );
        let correlation = {
            let _span = telemetry.span(span_names::REPAIR_CORRELATE);
            TxnCorrelation::from_records(&records)
        };
        telemetry.flight().emit(
            0,
            0,
            EventKind::Correlate {
                pairs: correlation.len() as u64,
            },
        );
        let _span = telemetry.span(span_names::REPAIR_GRAPH_BUILD);
        let mut graph = DepGraph::new();

        // 1. Online (read) dependencies from trans_dep + provenance.
        let mut session = self.db.session();
        let prov_rows = session
            .query("SELECT tr_id, dep_tr_id, via_table, read_cols FROM trans_dep_prov")
            .map_err(RepairError::Engine)?;
        // (tr_id, dep_tr_id) → [(mediating table, columns read)]
        type ProvMap = HashMap<(i64, i64), Vec<(String, Vec<String>)>>;
        let mut prov: ProvMap = HashMap::new();
        for row in &prov_rows.rows {
            if let (Value::Int(tr), Value::Int(dep), Value::Str(table), Value::Str(cols)) =
                (&row[0], &row[1], &row[2], &row[3])
            {
                prov.entry((*tr, *dep)).or_default().push((
                    table.clone(),
                    cols.split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                ));
            }
        }
        let dep_rows = session
            .query("SELECT tr_id, dep_tr_ids FROM trans_dep")
            .map_err(RepairError::Engine)?;
        for row in &dep_rows.rows {
            let (Value::Int(tr), Value::Str(deps)) = (&row[0], &row[1]) else {
                continue;
            };
            for dep in deps.split_whitespace() {
                let Ok(dep) = dep.parse::<i64>() else {
                    continue;
                };
                match prov.get(&(*tr, dep)) {
                    Some(sources) => {
                        for (table, cols) in sources {
                            graph.add_edge(
                                *tr,
                                dep,
                                EdgeProvenance {
                                    table: table.clone(),
                                    kind: EdgeKind::Read {
                                        read_columns: cols.clone(),
                                    },
                                },
                            );
                        }
                    }
                    None => {
                        // No provenance recorded: keep the edge with an
                        // unknown-table marker (it always survives rules).
                        graph.add_edge(
                            *tr,
                            dep,
                            EdgeProvenance {
                                table: String::new(),
                                kind: EdgeKind::Write,
                            },
                        );
                    }
                }
            }
        }

        // 2. Labels from annot.
        let annot_rows = session
            .query("SELECT tr_id, descr FROM annot")
            .map_err(RepairError::Engine)?;
        for row in &annot_rows.rows {
            if let (Value::Int(tr), Value::Str(descr)) = (&row[0], &row[1]) {
                graph.set_label(*tr, descr.clone());
            }
        }

        // 3. Log-reconstructed dependencies (updates/deletes) and writer
        //    column notes for false-dependency evaluation.
        for rec in &records {
            let Some(proxy) = correlation.proxy_id(rec.internal_txn) else {
                continue; // uncommitted or untracked transaction
            };
            if rec.table.is_empty() || crate::is_tracking_table(&rec.table) {
                continue;
            }
            match &rec.op {
                RepairOp::Insert { .. } => graph.note_writer_insert(proxy, &rec.table),
                RepairOp::Update { after, .. } => graph.note_writer_columns(
                    proxy,
                    &rec.table,
                    after
                        .columns()
                        .iter()
                        .filter(|c| !resildb_proxy::is_tracking_column(c))
                        .map(|s| s.to_string()),
                ),
                _ => {}
            }
            // Reconstruct the overwrite dependency from the pre-image.
            // Under column-level tracking the pre-image carries one
            // `trid__<col>` stamp per overwritten column, giving precise
            // per-column edges; otherwise fall back to the row `trid`.
            let before = match &rec.op {
                RepairOp::Update { before, .. } => Some(before),
                RepairOp::Delete { row, .. } => Some(row),
                _ => None,
            };
            if let Some(image) = before {
                let mut column_edges = 0;
                for (name, value) in &image.0 {
                    let Some(col) = name.strip_prefix(resildb_proxy::COLUMN_TRID_PREFIX) else {
                        continue;
                    };
                    if let resildb_engine::Value::Int(dep) = value {
                        column_edges += 1;
                        if *dep > 0 && *dep != proxy {
                            graph.add_edge(
                                proxy,
                                *dep,
                                EdgeProvenance {
                                    table: rec.table.clone(),
                                    kind: EdgeKind::Read {
                                        read_columns: vec![col.to_string()],
                                    },
                                },
                            );
                        }
                    }
                }
                if column_edges == 0 {
                    if let Some(dep) = rec.before_trid() {
                        if dep > 0 && dep != proxy {
                            graph.add_edge(
                                proxy,
                                dep,
                                EdgeProvenance {
                                    table: rec.table.clone(),
                                    kind: EdgeKind::Write,
                                },
                            );
                        }
                    }
                }
            }
        }

        Ok(Analysis {
            records,
            correlation,
            graph,
        })
    }

    /// Full repair: analysis, closure from `initial` under `rules`, then
    /// the backward compensation sweep (static repair — the caller is
    /// responsible for quiescing the database, as in the paper).
    ///
    /// # Errors
    ///
    /// Analysis or compensation failures.
    pub fn repair(
        &self,
        initial: &[i64],
        rules: &[FalseDepRule],
    ) -> Result<RepairReport, RepairError> {
        let analysis = self.analyze()?;
        let undo_set = {
            let _span = self.db.sim().telemetry().span(span_names::REPAIR_CLOSURE);
            analysis.undo_set(initial, rules)
        };
        self.db.sim().telemetry().flight().emit(
            0,
            0,
            EventKind::ClosureComputed {
                initial: u32::try_from(initial.len()).unwrap_or(u32::MAX),
                nodes: u32::try_from(undo_set.len()).unwrap_or(u32::MAX),
            },
        );
        self.repair_with_undo_set(&analysis, &undo_set)
    }

    /// Executes the compensation sweep for an already-chosen undo set
    /// (e.g. after interactive what-if adjustment by the DBA).
    ///
    /// # Errors
    ///
    /// Compensation failures.
    pub fn repair_with_undo_set(
        &self,
        analysis: &Analysis,
        undo_set: &BTreeSet<i64>,
    ) -> Result<RepairReport, RepairError> {
        let _span = self
            .db
            .sim()
            .telemetry()
            .span(span_names::REPAIR_COMPENSATE);
        let mut undo_internal = HashMap::new();
        for &proxy in undo_set {
            if let Some(internal) = analysis.correlation.internal_id(proxy) {
                undo_internal.insert(internal, proxy);
            }
        }
        let driver = NativeDriver::new(self.db.clone(), LinkProfile::local());
        let mut conn = driver.connect()?;
        let outcome = run_compensation(
            &self.db,
            conn.as_mut(),
            &analysis.records,
            &undo_internal,
            self.adapter.address_column(),
        )?;
        let tracked = analysis.tracked_transactions();
        let rolled_back = tracked.intersection(undo_set).count();
        Ok(RepairReport {
            undo_set: undo_set.clone(),
            tracked_total: tracked.len(),
            saved: tracked.len() - rolled_back,
            outcome,
        })
    }
}
