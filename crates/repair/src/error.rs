//! Repair-tool error type.

use std::error::Error;
use std::fmt;

use resildb_engine::EngineError;
use resildb_wire::WireError;

/// Errors raised while analyzing the log or executing a repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// Engine-level failure (log introspection, schema lookup).
    Engine(EngineError),
    /// Wire-level failure while executing compensating statements.
    Wire(WireError),
    /// The log or dependency data is inconsistent with expectations.
    Analysis(String),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Engine(e) => write!(f, "engine error during repair: {e}"),
            RepairError::Wire(e) => write!(f, "wire error during repair: {e}"),
            RepairError::Analysis(m) => write!(f, "repair analysis error: {m}"),
        }
    }
}

impl Error for RepairError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RepairError::Engine(e) => Some(e),
            RepairError::Wire(e) => Some(e),
            RepairError::Analysis(_) => None,
        }
    }
}

impl From<EngineError> for RepairError {
    fn from(e: EngineError) -> Self {
        RepairError::Engine(e)
    }
}

impl From<WireError> for RepairError {
    fn from(e: WireError) -> Self {
        RepairError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: RepairError = EngineError::Deadlock.into();
        assert!(matches!(e, RepairError::Engine(_)));
        assert!(e.source().is_some());
        let w: RepairError = WireError::PoolExhausted.into();
        assert!(w.to_string().contains("pool"));
        assert!(RepairError::Analysis("x".into()).source().is_none());
    }
}
