//! Normalized repair records: the common denominator the three
//! flavor-specific log adapters produce.

use resildb_engine::{InternalTxnId, Lsn, RowId, Value};

/// How a compensating statement can address the affected row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowAddress {
    /// Via the flavor's row-id pseudo-column (`ctid`/`rowid`).
    Pseudo(RowId),
    /// Via the proxy-injected `rid` identity column (Sybase flavor).
    Identity(i64),
}

impl RowAddress {
    /// The literal to compare the address column against.
    pub fn literal(&self) -> i64 {
        match self {
            RowAddress::Pseudo(rid) => rid.0 as i64,
            RowAddress::Identity(v) => *v,
        }
    }
}

/// A row (or partial row) as `(column, value)` pairs in schema order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NamedRow(pub Vec<(String, Value)>);

impl NamedRow {
    /// Value of `col`, if present.
    pub fn get(&self, col: &str) -> Option<&Value> {
        self.0
            .iter()
            .find(|(c, _)| c.eq_ignore_ascii_case(col))
            .map(|(_, v)| v)
    }

    /// Column names, in order.
    pub fn columns(&self) -> Vec<&str> {
        self.0.iter().map(|(c, _)| c.as_str()).collect()
    }

    /// True when no columns are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<(String, Value)> for NamedRow {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        NamedRow(iter.into_iter().collect())
    }
}

/// The operation a repair record describes.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairOp {
    /// A row was inserted (`row` is the complete image).
    Insert {
        /// Address of the inserted row.
        address: RowAddress,
        /// Full image.
        row: NamedRow,
    },
    /// A row was deleted (`row` is the complete pre-delete image).
    Delete {
        /// Address the row had.
        address: RowAddress,
        /// Full pre-delete image.
        row: NamedRow,
    },
    /// A row was updated; `before`/`after` carry the **changed columns
    /// only** (that is all any of the three DBMS logs guarantees — Oracle
    /// LogMiner emits per-column SET lists, Sybase logs deltas).
    Update {
        /// Address of the updated row.
        address: RowAddress,
        /// Pre-images of the changed columns.
        before: NamedRow,
        /// Post-images of the changed columns.
        after: NamedRow,
    },
    /// Transaction committed.
    Commit,
    /// Transaction rolled back.
    Abort,
}

/// One normalized log record.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairRecord {
    /// Position in the log (orders the backward repair sweep).
    pub lsn: Lsn,
    /// DBMS-internal transaction id.
    pub internal_txn: InternalTxnId,
    /// Table the operation touched (empty for commit/abort).
    pub table: String,
    /// The operation.
    pub op: RepairOp,
}

impl RepairRecord {
    /// The pre-image `trid` value, for reconstructing update/delete
    /// dependencies (paper §3.3): the transaction whose write this
    /// operation overwrote or removed.
    pub fn before_trid(&self) -> Option<i64> {
        let row = match &self.op {
            RepairOp::Delete { row, .. } => row,
            RepairOp::Update { before, .. } => before,
            _ => return None,
        };
        match row.get("trid") {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Columns this operation changed (for updates: the changed set; for
    /// inserts/deletes: every column).
    pub fn changed_columns(&self) -> Vec<String> {
        match &self.op {
            RepairOp::Insert { row, .. } | RepairOp::Delete { row, .. } => {
                row.columns().iter().map(|s| s.to_string()).collect()
            }
            RepairOp::Update { after, .. } => {
                after.columns().iter().map(|s| s.to_string()).collect()
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: RepairOp) -> RepairRecord {
        RepairRecord {
            lsn: Lsn(0),
            internal_txn: InternalTxnId(1),
            table: "t".into(),
            op,
        }
    }

    #[test]
    fn named_row_lookup_is_case_insensitive() {
        let row: NamedRow = [("A".to_string(), Value::Int(1))].into_iter().collect();
        assert_eq!(row.get("a"), Some(&Value::Int(1)));
        assert_eq!(row.get("b"), None);
    }

    #[test]
    fn before_trid_from_update_and_delete() {
        let before: NamedRow = [
            ("bal".to_string(), Value::Float(1.0)),
            ("trid".to_string(), Value::Int(7)),
        ]
        .into_iter()
        .collect();
        let upd = rec(RepairOp::Update {
            address: RowAddress::Pseudo(RowId(3)),
            before: before.clone(),
            after: NamedRow::default(),
        });
        assert_eq!(upd.before_trid(), Some(7));
        let del = rec(RepairOp::Delete {
            address: RowAddress::Identity(5),
            row: before,
        });
        assert_eq!(del.before_trid(), Some(7));
        let ins = rec(RepairOp::Insert {
            address: RowAddress::Pseudo(RowId(1)),
            row: NamedRow::default(),
        });
        assert_eq!(ins.before_trid(), None);
    }

    #[test]
    fn changed_columns_reflect_op_kind() {
        let after: NamedRow = [("bal".to_string(), Value::Float(2.0))]
            .into_iter()
            .collect();
        let upd = rec(RepairOp::Update {
            address: RowAddress::Pseudo(RowId(1)),
            before: NamedRow::default(),
            after,
        });
        assert_eq!(upd.changed_columns(), vec!["bal"]);
        assert!(rec(RepairOp::Commit).changed_columns().is_empty());
    }

    #[test]
    fn address_literals() {
        assert_eq!(RowAddress::Pseudo(RowId(9)).literal(), 9);
        assert_eq!(RowAddress::Identity(4).literal(), 4);
    }
}
