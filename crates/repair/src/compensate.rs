//! Compensating-statement generation and execution (paper §3.3).
//!
//! The transaction log is walked from the end to the beginning; every
//! record belonging to the undo set is compensated immediately: a DELETE
//! for a logged INSERT, an INSERT for a logged DELETE, and an UPDATE
//! restoring the before-image for a logged UPDATE — each addressed to the
//! one affected row via the flavor's row address. Rows re-inserted during
//! repair receive fresh row ids, so an old→new id mapping is maintained
//! per table and discarded when the row's original INSERT is undone.

use std::collections::{BTreeMap, HashMap};

use resildb_engine::{Database, InternalTxnId, Lsn, Value};
use resildb_sim::{failpoints, EventKind, InjectedFault};
use resildb_wire::{Connection, Response, WireError};

use crate::adapters::AddressColumn;
use crate::error::RepairError;
use crate::record::{NamedRow, RepairOp, RepairRecord, RowAddress};

/// One executed compensating statement, for audit.
#[derive(Debug, Clone, PartialEq)]
pub struct CompensatingStatement {
    /// The log record this compensates.
    pub lsn: Lsn,
    /// The undone (proxy) transaction.
    pub proxy_txn: i64,
    /// The SQL executed.
    pub sql: String,
}

/// Outcome of the compensation sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompensationOutcome {
    /// Statements executed, in execution order (reverse log order).
    pub statements: Vec<CompensatingStatement>,
    /// Rows deleted (compensating inserts).
    pub rows_deleted: u64,
    /// Rows re-inserted (compensating deletes).
    pub rows_reinserted: u64,
    /// Rows restored to their before-image (compensating updates).
    pub rows_restored: u64,
}

fn sql_literal(v: &Value) -> String {
    v.to_sql_literal()
}

/// Executes the backward compensation sweep over `records`.
///
/// `undo_internal` is the set of DBMS-internal transaction ids to undo
/// (already translated from the proxy-level undo set), with the proxy id
/// attached for reporting.
///
/// `skip_before` holds proxy transaction ids a *previous* sweep already
/// compensated (live repair's fence-extension rounds). A record whose
/// before-image was written by one of them is not restored: the row
/// already holds the older, repaired value, and restoring the image
/// would re-plant the very damage the first sweep removed.
///
/// # Errors
///
/// Propagates SQL failures and inconsistencies such as a compensating
/// statement affecting an unexpected number of rows. The sweep runs inside
/// one transaction: on any error the database is rolled back to its
/// pre-repair state — a half-applied repair is worse than no repair.
pub(crate) fn run_compensation(
    db: &Database,
    conn: &mut dyn Connection,
    records: &[RepairRecord],
    undo_internal: &HashMap<InternalTxnId, i64>,
    address: AddressColumn,
    skip_before: &std::collections::BTreeSet<i64>,
) -> Result<CompensationOutcome, RepairError> {
    conn.execute("BEGIN")?;
    let result =
        sweep(db, conn, records, undo_internal, address, skip_before).and_then(|outcome| {
            repair_fault(db, failpoints::REPAIR_BEFORE_COMMIT)?;
            conn.execute("COMMIT")?;
            Ok(outcome)
        });
    if result.is_err() {
        let _ = conn.execute("ROLLBACK");
    }
    if let Ok(outcome) = &result {
        // Flight-record the per-transaction compensation tally — one event
        // per undone proxy transaction, durable only after the sweep's
        // COMMIT (a rolled-back repair compensated nothing). Transactions
        // in the undo set whose every record needed no statement (e.g.
        // no-op updates) still get a zero-count event.
        let flight = db.sim().telemetry().flight();
        if flight.is_enabled() {
            let mut per_txn: BTreeMap<i64, u32> =
                undo_internal.values().map(|&proxy| (proxy, 0)).collect();
            for stmt in &outcome.statements {
                if let Some(n) = per_txn.get_mut(&stmt.proxy_txn) {
                    *n += 1;
                }
            }
            for (proxy, statements) in per_txn {
                flight.emit(proxy, 0, EventKind::Compensated { statements });
            }
        }
    }
    result
}

/// Maps an injected repair-layer fault to a [`RepairError`].
fn repair_fault(db: &Database, name: &str) -> Result<(), RepairError> {
    match db.sim().fault_check(name) {
        None => Ok(()),
        Some(InjectedFault::Disconnect) => Err(RepairError::Wire(WireError::ConnectionDropped)),
        Some(InjectedFault::Error) => Err(RepairError::Wire(WireError::Protocol(format!(
            "injected fault at failpoint {name}"
        )))),
        Some(InjectedFault::Delay(_)) => unreachable!("fault_check consumes delays"),
    }
}

fn sweep(
    db: &Database,
    conn: &mut dyn Connection,
    records: &[RepairRecord],
    undo_internal: &HashMap<InternalTxnId, i64>,
    address: AddressColumn,
    skip_before: &std::collections::BTreeSet<i64>,
) -> Result<CompensationOutcome, RepairError> {
    let mut outcome = CompensationOutcome::default();
    // Per-table old→new address remapping.
    let mut remap: HashMap<String, HashMap<RowAddress, i64>> = HashMap::new();
    let addr_col = address.column_name();

    let current_addr =
        |remap: &HashMap<String, HashMap<RowAddress, i64>>, table: &str, a: &RowAddress| {
            remap
                .get(table)
                .and_then(|m| m.get(a))
                .copied()
                .unwrap_or_else(|| a.literal())
        };

    for rec in records.iter().rev() {
        let Some(&proxy) = undo_internal.get(&rec.internal_txn) else {
            continue;
        };
        // Extension-round rule (see run_compensation docs): a before-image
        // written by an already-compensated transaction must not be
        // restored or re-inserted — the sweep that undid its writer
        // already put the older value (or absence) in place.
        if rec.before_trid().is_some_and(|t| skip_before.contains(&t)) {
            continue;
        }
        if !outcome.statements.is_empty() {
            repair_fault(db, failpoints::REPAIR_MID_SWEEP)?;
        }
        match &rec.op {
            RepairOp::Insert { address: a, .. } => {
                let cur = current_addr(&remap, &rec.table, a);
                let sql = format!("DELETE FROM {} WHERE {addr_col} = {cur}", rec.table);
                let affected = execute_affected(conn, &sql)?;
                if affected != 1 {
                    return Err(RepairError::Analysis(format!(
                        "compensating delete touched {affected} rows (lsn {:?}): {sql}",
                        rec.lsn
                    )));
                }
                outcome.rows_deleted += 1;
                // The row's history is fully unwound: drop its mapping.
                if let Some(m) = remap.get_mut(&rec.table) {
                    m.remove(a);
                }
                outcome.statements.push(CompensatingStatement {
                    lsn: rec.lsn,
                    proxy_txn: proxy,
                    sql,
                });
            }
            RepairOp::Delete { address: a, row } => {
                let sql = insert_sql(&rec.table, row);
                execute_affected(conn, &sql)?;
                outcome.rows_reinserted += 1;
                // With pseudo addressing the re-inserted row has a fresh
                // row id that later (earlier-in-log) compensations must
                // use; identity addressing keeps the id because it is
                // ordinary column data.
                if matches!(address, AddressColumn::Pseudo(_)) {
                    let new_addr = discover_address(db, conn, &rec.table, row, addr_col)?;
                    remap
                        .entry(rec.table.clone())
                        .or_default()
                        .insert(*a, new_addr);
                }
                outcome.statements.push(CompensatingStatement {
                    lsn: rec.lsn,
                    proxy_txn: proxy,
                    sql,
                });
            }
            RepairOp::Update {
                address: a, before, ..
            } => {
                if before.is_empty() {
                    // The update changed no column values (e.g. a repeated
                    // in-transaction write): nothing to restore.
                    continue;
                }
                let cur = current_addr(&remap, &rec.table, a);
                let sets: Vec<String> = before
                    .0
                    .iter()
                    .map(|(c, v)| format!("{c} = {}", sql_literal(v)))
                    .collect();
                let sql = format!(
                    "UPDATE {} SET {} WHERE {addr_col} = {cur}",
                    rec.table,
                    sets.join(", ")
                );
                let affected = execute_affected(conn, &sql)?;
                if affected != 1 {
                    return Err(RepairError::Analysis(format!(
                        "compensating update touched {affected} rows (lsn {:?}): {sql}",
                        rec.lsn
                    )));
                }
                outcome.rows_restored += 1;
                outcome.statements.push(CompensatingStatement {
                    lsn: rec.lsn,
                    proxy_txn: proxy,
                    sql,
                });
            }
            RepairOp::Commit | RepairOp::Abort => {}
        }
    }
    Ok(outcome)
}

fn execute_affected(conn: &mut dyn Connection, sql: &str) -> Result<u64, RepairError> {
    match conn.execute(sql)? {
        Response::Affected(n) => Ok(n),
        other => Err(RepairError::Analysis(format!(
            "compensating statement produced {other:?}: {sql}"
        ))),
    }
}

fn insert_sql(table: &str, row: &NamedRow) -> String {
    let cols: Vec<&str> = row.columns();
    let vals: Vec<String> = row.0.iter().map(|(_, v)| sql_literal(v)).collect();
    format!(
        "INSERT INTO {table} ({}) VALUES ({})",
        cols.join(", "),
        vals.join(", ")
    )
}

/// Finds the row id the DBMS gave a just re-inserted row, by matching the
/// table's primary key (or, lacking one, the full row image) and taking
/// the newest row id.
fn discover_address(
    db: &Database,
    conn: &mut dyn Connection,
    table: &str,
    row: &NamedRow,
    addr_col: &str,
) -> Result<i64, RepairError> {
    let schema = db
        .table(table)
        .map_err(RepairError::Engine)?
        .read()
        .schema()
        .clone();
    let match_cols: Vec<String> = if schema.primary_key.is_empty() {
        row.0
            .iter()
            .filter(|(_, v)| !v.is_null())
            .map(|(c, _)| c.clone())
            .collect()
    } else {
        schema
            .primary_key
            .iter()
            .map(|&i| schema.columns[i].name.clone())
            .collect()
    };
    let conds: Vec<String> = match_cols
        .iter()
        .filter_map(|c| row.get(c).map(|v| format!("{c} = {}", sql_literal(v))))
        .collect();
    let sql = format!(
        "SELECT {addr_col} FROM {table} WHERE {} ORDER BY {addr_col} DESC LIMIT 1",
        conds.join(" AND ")
    );
    match conn.execute(&sql)? {
        Response::Rows(r) => match r.rows.first().and_then(|row| row.first()) {
            Some(Value::Int(v)) => Ok(*v),
            other => Err(RepairError::Analysis(format!(
                "could not rediscover re-inserted row in {table}: got {other:?}"
            ))),
        },
        other => Err(RepairError::Analysis(format!(
            "address discovery produced {other:?}"
        ))),
    }
}
