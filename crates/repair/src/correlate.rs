//! Proxy ↔ internal transaction-id correlation (paper §3.3).
//!
//! The proxy generates its own transaction ids because a DBMS's internal
//! ids are not portable. The correlation rule: the last row insert a
//! tracked transaction performs before committing is the proxy's insert
//! into `trans_dep`, whose `tr_id` attribute carries the proxy id — so
//! each `(internal txn, trans_dep insert)` pair read from the log yields
//! one mapping.

use std::collections::HashMap;

use resildb_engine::{InternalTxnId, Value};

use crate::record::{RepairOp, RepairRecord};

/// Bidirectional proxy/internal id mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnCorrelation {
    /// Internal → proxy.
    pub proxy_of: HashMap<InternalTxnId, i64>,
    /// Proxy → internal.
    pub internal_of: HashMap<i64, InternalTxnId>,
}

impl TxnCorrelation {
    /// Builds the correlation from a normalized log scan: for every
    /// transaction, the last `trans_dep` insert preceding its commit
    /// supplies the proxy id.
    pub fn from_records(records: &[RepairRecord]) -> Self {
        let mut last_trans_dep_insert: HashMap<InternalTxnId, i64> = HashMap::new();
        let mut out = TxnCorrelation::default();
        for rec in records {
            match &rec.op {
                RepairOp::Insert { row, .. }
                    if rec
                        .table
                        .eq_ignore_ascii_case(resildb_proxy::TRANS_DEP_TABLE) =>
                {
                    if let Some(Value::Int(tr_id)) = row.get("tr_id") {
                        last_trans_dep_insert.insert(rec.internal_txn, *tr_id);
                    }
                }
                RepairOp::Commit => {
                    if let Some(tr_id) = last_trans_dep_insert.remove(&rec.internal_txn) {
                        out.proxy_of.insert(rec.internal_txn, tr_id);
                        out.internal_of.insert(tr_id, rec.internal_txn);
                    }
                }
                RepairOp::Abort => {
                    last_trans_dep_insert.remove(&rec.internal_txn);
                }
                _ => {}
            }
        }
        out
    }

    /// The proxy id of an internal transaction, if it was tracked.
    pub fn proxy_id(&self, internal: InternalTxnId) -> Option<i64> {
        self.proxy_of.get(&internal).copied()
    }

    /// The internal id of a proxy transaction, if it committed.
    pub fn internal_id(&self, proxy: i64) -> Option<InternalTxnId> {
        self.internal_of.get(&proxy).copied()
    }

    /// Number of correlated transactions.
    pub fn len(&self) -> usize {
        self.proxy_of.len()
    }

    /// True when nothing correlated.
    pub fn is_empty(&self) -> bool {
        self.proxy_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{NamedRow, RowAddress};
    use resildb_engine::{Lsn, RowId};

    fn trans_dep_insert(lsn: u64, txn: u64, tr_id: i64) -> RepairRecord {
        RepairRecord {
            lsn: Lsn(lsn),
            internal_txn: InternalTxnId(txn),
            table: "trans_dep".into(),
            op: RepairOp::Insert {
                address: RowAddress::Pseudo(RowId(lsn)),
                row: [
                    ("tr_id".to_string(), Value::Int(tr_id)),
                    ("dep_tr_ids".to_string(), Value::from("")),
                ]
                .into_iter()
                .collect(),
            },
        }
    }

    fn commit(lsn: u64, txn: u64) -> RepairRecord {
        RepairRecord {
            lsn: Lsn(lsn),
            internal_txn: InternalTxnId(txn),
            table: String::new(),
            op: RepairOp::Commit,
        }
    }

    fn abort(lsn: u64, txn: u64) -> RepairRecord {
        RepairRecord {
            lsn: Lsn(lsn),
            internal_txn: InternalTxnId(txn),
            table: String::new(),
            op: RepairOp::Abort,
        }
    }

    fn user_insert(lsn: u64, txn: u64) -> RepairRecord {
        RepairRecord {
            lsn: Lsn(lsn),
            internal_txn: InternalTxnId(txn),
            table: "acct".into(),
            op: RepairOp::Insert {
                address: RowAddress::Pseudo(RowId(lsn)),
                row: NamedRow::default(),
            },
        }
    }

    #[test]
    fn correlates_committed_tracked_transactions() {
        let records = vec![
            user_insert(0, 10),
            trans_dep_insert(1, 10, 101),
            commit(2, 10),
            user_insert(3, 11),
            trans_dep_insert(4, 11, 102),
            commit(5, 11),
        ];
        let c = TxnCorrelation::from_records(&records);
        assert_eq!(c.len(), 2);
        assert_eq!(c.proxy_id(InternalTxnId(10)), Some(101));
        assert_eq!(c.internal_id(102), Some(InternalTxnId(11)));
    }

    #[test]
    fn aborted_transactions_are_not_correlated() {
        let records = vec![trans_dep_insert(0, 10, 101), abort(1, 10)];
        let c = TxnCorrelation::from_records(&records);
        assert!(c.is_empty());
    }

    #[test]
    fn interleaved_transactions_correlate_independently() {
        let records = vec![
            trans_dep_insert(0, 10, 101),
            trans_dep_insert(1, 11, 102),
            commit(2, 11),
            commit(3, 10),
        ];
        let c = TxnCorrelation::from_records(&records);
        assert_eq!(c.proxy_id(InternalTxnId(10)), Some(101));
        assert_eq!(c.proxy_id(InternalTxnId(11)), Some(102));
    }

    #[test]
    fn untracked_transactions_stay_unmapped() {
        let records = vec![user_insert(0, 10), commit(1, 10)];
        let c = TxnCorrelation::from_records(&records);
        assert!(c.is_empty());
        assert_eq!(c.proxy_id(InternalTxnId(10)), None);
    }

    #[test]
    fn multi_row_trans_dep_inserts_use_the_last() {
        // A long dependency list spills into several trans_dep rows with
        // the same tr_id — any of them yields the same mapping.
        let records = vec![
            trans_dep_insert(0, 10, 101),
            trans_dep_insert(1, 10, 101),
            commit(2, 10),
        ];
        let c = TxnCorrelation::from_records(&records);
        assert_eq!(c.proxy_id(InternalTxnId(10)), Some(101));
    }
}
