//! End-to-end repair scenarios: attack, analyze, selectively undo, verify.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::collections::BTreeSet;

use resildb_engine::{Database, Flavor, Value};
use resildb_proxy::{prepare_database, ProxyConfig, TrackingProxy};
use resildb_repair::{FalseDepRule, RepairController, RepairPlan};
use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver};

struct Fixture {
    db: Database,
    conn: Box<dyn Connection>,
}

fn fixture(flavor: Flavor) -> Fixture {
    let db = Database::in_memory(flavor);
    let native = NativeDriver::new(db.clone(), LinkProfile::local());
    prepare_database(&mut *native.connect().unwrap()).unwrap();
    // Track read-only transactions too: several scenarios below assert on
    // the undo-set membership of pure readers (paper-literal behaviour).
    let config = ProxyConfig::builder(flavor)
        .record_read_only_deps(true)
        .build();
    let driver = TrackingProxy::single_proxy(db.clone(), LinkProfile::local(), config);
    let conn = driver.connect().unwrap();
    Fixture { db, conn }
}

impl Fixture {
    fn exec(&mut self, sql: &str) {
        self.conn
            .execute(sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
    }

    /// Runs one annotated transaction consisting of `stmts`.
    fn txn(&mut self, name: &str, stmts: &[&str]) {
        self.exec(&format!("ANNOTATE {name}"));
        self.exec("BEGIN");
        for s in stmts {
            self.exec(s);
        }
        self.exec("COMMIT");
    }

    /// Proxy txn id by annotation name.
    fn txn_id(&self, name: &str) -> i64 {
        let mut s = self.db.session();
        let r = s
            .query(&format!("SELECT tr_id FROM annot WHERE descr = '{name}'"))
            .unwrap();
        match r.rows.first().map(|row| &row[0]) {
            Some(Value::Int(v)) => *v,
            other => panic!("txn {name} not found: {other:?}"),
        }
    }

    fn balance(&self, id: i64) -> Value {
        let mut s = self.db.session();
        let r = s
            .query(&format!("SELECT bal FROM acct WHERE id = {id}"))
            .unwrap();
        r.rows
            .first()
            .map(|row| row[0].clone())
            .unwrap_or(Value::Null)
    }
}

/// The canonical scenario, run on every flavor: a malicious update plus
/// dependent and independent activity, then selective undo.
fn selective_undo_scenario(flavor: Flavor) {
    let mut fx = fixture(flavor);
    fx.exec("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal FLOAT)");
    fx.txn(
        "load",
        &["INSERT INTO acct (id, bal) VALUES (1, 100.0), (2, 50.0), (3, 75.0)"],
    );
    // The attack: inflate account 1.
    fx.txn("attack", &["UPDATE acct SET bal = 1000000.0 WHERE id = 1"]);
    // A dependent transaction: reads account 1, moves money to account 2.
    fx.txn(
        "dependent",
        &[
            "SELECT bal FROM acct WHERE id = 1",
            "UPDATE acct SET bal = bal + 10.0 WHERE id = 2",
        ],
    );
    // An independent transaction touching only account 3.
    fx.txn(
        "independent",
        &["UPDATE acct SET bal = bal - 5.0 WHERE id = 3"],
    );

    let attack = fx.txn_id("attack");
    let dependent = fx.txn_id("dependent");
    let independent = fx.txn_id("independent");

    let tool = RepairController::new(fx.db.clone());
    let analysis = tool.analyze().unwrap();
    let undo = analysis.undo_set(&[attack], &[]);
    assert!(undo.contains(&attack));
    assert!(
        undo.contains(&dependent),
        "reader of poisoned row is corrupted"
    );
    assert!(!undo.contains(&independent), "unrelated txn must be spared");

    let report = tool
        .execute(&analysis, &RepairPlan::with_undo_set(&[], undo.clone()))
        .unwrap();
    assert_eq!(report.undo_set, undo);

    // Attack effect gone, dependent effect gone, independent kept.
    assert_eq!(
        fx.balance(1),
        Value::Float(100.0),
        "{flavor}: attack undone"
    );
    assert_eq!(
        fx.balance(2),
        Value::Float(50.0),
        "{flavor}: dependent undone"
    );
    assert_eq!(
        fx.balance(3),
        Value::Float(70.0),
        "{flavor}: independent preserved"
    );
}

#[test]
fn selective_undo_on_postgres_flavor() {
    selective_undo_scenario(Flavor::Postgres);
}

#[test]
fn selective_undo_on_oracle_flavor() {
    selective_undo_scenario(Flavor::Oracle);
}

#[test]
fn selective_undo_on_sybase_flavor() {
    selective_undo_scenario(Flavor::Sybase);
}

/// Inserted-then-updated-then-deleted rows exercise the row-id remapping.
fn insert_update_delete_chain(flavor: Flavor) {
    let mut fx = fixture(flavor);
    fx.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(8))");
    fx.txn("legit", &["INSERT INTO t (id, v) VALUES (1, 'keep')"]);
    // Attack inserts a row...
    fx.txn("attack", &["INSERT INTO t (id, v) VALUES (2, 'evil')"]);
    // ...a dependent txn reads it and modifies it...
    fx.txn(
        "dep1",
        &[
            "SELECT v FROM t WHERE id = 2",
            "UPDATE t SET v = 'evil2' WHERE id = 2",
        ],
    );
    // ...another dependent deletes the legit row after reading the bad one.
    fx.txn(
        "dep2",
        &["SELECT v FROM t WHERE id = 2", "DELETE FROM t WHERE id = 1"],
    );

    let attack = fx.txn_id("attack");
    let tool = RepairController::new(fx.db.clone());
    let report = tool.repair(&[attack]).unwrap();
    assert_eq!(report.undo_set.len(), 3, "{flavor}: attack + 2 dependents");

    // Evil row gone; legit row restored (via compensating INSERT).
    let mut s = fx.db.session();
    let r = s.query("SELECT id, v FROM t ORDER BY id").unwrap();
    assert_eq!(r.rows.len(), 1, "{flavor}");
    assert_eq!(r.rows[0][0], Value::Int(1));
    assert_eq!(r.rows[0][1], Value::from("keep"));
}

#[test]
fn insert_update_delete_chain_on_postgres() {
    insert_update_delete_chain(Flavor::Postgres);
}

#[test]
fn insert_update_delete_chain_on_oracle() {
    insert_update_delete_chain(Flavor::Oracle);
}

#[test]
fn insert_update_delete_chain_on_sybase() {
    insert_update_delete_chain(Flavor::Sybase);
}

/// The Sybase §4.3 path specifically: a MODIFY record whose page offset is
/// invalidated by later deletes in the same page must still be resolved to
/// the right identity value.
#[test]
fn sybase_modify_offset_adjustment_with_later_deletes() {
    let mut fx = fixture(Flavor::Sybase);
    fx.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    // Several rows on one page.
    fx.txn(
        "load",
        &["INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30), (4, 40)"],
    );
    // Attack updates row 3 (MODIFY logged at its then-offset)...
    fx.txn("attack", &["UPDATE t SET v = 999 WHERE id = 3"]);
    // ...then an unrelated txn deletes rows 1 and 2, shifting row 3 left.
    fx.txn(
        "cleanup",
        &["DELETE FROM t WHERE id = 1", "DELETE FROM t WHERE id = 2"],
    );

    let attack = fx.txn_id("attack");
    let cleanup = fx.txn_id("cleanup");
    let tool = RepairController::new(fx.db.clone());
    let analysis = tool.analyze().unwrap();
    let undo = analysis.undo_set(&[attack], &[]);
    assert!(!undo.contains(&cleanup), "cleanup touched other rows only");
    tool.execute(&analysis, &RepairPlan::with_undo_set(&[], undo.clone()))
        .unwrap();

    let mut s = fx.db.session();
    let r = s.query("SELECT v FROM t WHERE id = 3").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(30), "attack on row 3 undone");
    assert!(s
        .query("SELECT v FROM t WHERE id = 1")
        .unwrap()
        .rows
        .is_empty());
}

/// The MODIFY row itself deleted later: its identity comes from the
/// DELETE record's full image (paper §4.3 step 2, second case).
#[test]
fn sybase_modify_of_row_deleted_later() {
    let mut fx = fixture(Flavor::Sybase);
    fx.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    fx.txn("load", &["INSERT INTO t (id, v) VALUES (1, 10), (2, 20)"]);
    fx.txn("attack", &["UPDATE t SET v = 666 WHERE id = 2"]);
    // Dependent deletes the very row the attack modified.
    fx.txn(
        "dep",
        &["SELECT v FROM t WHERE id = 2", "DELETE FROM t WHERE id = 2"],
    );
    let attack = fx.txn_id("attack");
    let tool = RepairController::new(fx.db.clone());
    let report = tool.repair(&[attack]).unwrap();
    assert_eq!(report.undo_set.len(), 2);
    let mut s = fx.db.session();
    let r = s.query("SELECT v FROM t WHERE id = 2").unwrap();
    assert_eq!(
        r.rows[0][0],
        Value::Int(20),
        "row restored to pre-attack value"
    );
}

#[test]
fn false_dependency_rule_shrinks_undo_set() {
    let mut fx = fixture(Flavor::Postgres);
    fx.exec("CREATE TABLE warehouse (w_id INTEGER PRIMARY KEY, w_tax FLOAT, w_ytd FLOAT)");
    fx.txn(
        "load",
        &["INSERT INTO warehouse (w_id, w_tax, w_ytd) VALUES (1, 0.05, 0.0)"],
    );
    // Attack bumps only the derivable w_ytd column.
    fx.txn(
        "attack",
        &["UPDATE warehouse SET w_ytd = w_ytd + 5000.0 WHERE w_id = 1"],
    );
    // A New-Order-like txn reads only w_tax from the same row.
    fx.txn("neworder", &["SELECT w_tax FROM warehouse WHERE w_id = 1"]);
    // An audit txn genuinely reads w_ytd.
    fx.txn("audit", &["SELECT w_ytd FROM warehouse WHERE w_id = 1"]);

    let attack = fx.txn_id("attack");
    let neworder = fx.txn_id("neworder");
    let audit = fx.txn_id("audit");

    let tool = RepairController::new(fx.db.clone());
    let analysis = tool.analyze().unwrap();

    let all = analysis.undo_set(&[attack], &[]);
    assert!(all.contains(&neworder) && all.contains(&audit));

    let rules = vec![FalseDepRule::IgnoreDerivedColumns {
        table: "warehouse".into(),
        columns: vec!["w_ytd".into()],
    }];
    let filtered = analysis.undo_set(&[attack], &rules);
    assert!(
        !filtered.contains(&neworder),
        "w_tax reader is a false dependent"
    );
    assert!(
        filtered.contains(&audit),
        "w_ytd reader is a true dependent"
    );
}

#[test]
fn repair_removes_tracking_rows_of_undone_transactions() {
    let mut fx = fixture(Flavor::Postgres);
    fx.exec("CREATE TABLE t (a INTEGER)");
    fx.txn("keep", &["INSERT INTO t (a) VALUES (1)"]);
    fx.txn("attack", &["INSERT INTO t (a) VALUES (666)"]);
    let attack = fx.txn_id("attack");
    let before = fx.db.row_count("trans_dep").unwrap();
    RepairController::new(fx.db.clone())
        .repair(&[attack])
        .unwrap();
    let after = fx.db.row_count("trans_dep").unwrap();
    assert_eq!(after, before - 1, "undone txn's trans_dep row removed");
    let mut s = fx.db.session();
    let r = s.query("SELECT a FROM t").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn dot_export_labels_nodes_like_figure_3() {
    let mut fx = fixture(Flavor::Postgres);
    fx.exec("CREATE TABLE t (a INTEGER)");
    fx.txn("Order_0_3_0_4", &["INSERT INTO t (a) VALUES (1)"]);
    fx.txn(
        "Payment_0_3_0_5",
        &["SELECT a FROM t", "UPDATE t SET a = 2"],
    );
    let tool = RepairController::new(fx.db.clone());
    let analysis = tool.analyze().unwrap();
    let order = fx.txn_id("Order_0_3_0_4");
    let highlight: BTreeSet<i64> = [order].into_iter().collect();
    let dot = analysis.to_dot(&highlight);
    assert!(dot.contains("Order_0_3_0_4"));
    assert!(dot.contains("Payment_0_3_0_5"));
    assert!(dot.contains("->"), "at least one dependency edge: {dot}");
    assert!(dot.contains("fillcolor"), "attack node highlighted");
}

#[test]
fn log_reconstructed_update_dependency_without_select() {
    // T2 never SELECTs, it blind-updates the row T1 wrote: the dependency
    // exists only in the log (pre-image trid) — the paper's optimisation.
    let mut fx = fixture(Flavor::Postgres);
    fx.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    fx.txn("t1", &["INSERT INTO t (id, v) VALUES (1, 10)"]);
    fx.txn("t2", &["UPDATE t SET v = v + 1 WHERE id = 1"]);
    let t1 = fx.txn_id("t1");
    let t2 = fx.txn_id("t2");
    let analysis = RepairController::new(fx.db.clone()).analyze().unwrap();
    // trans_dep knows nothing...
    let mut s = fx.db.session();
    let r = s
        .query(&format!(
            "SELECT dep_tr_ids FROM trans_dep WHERE tr_id = {t2}"
        ))
        .unwrap();
    assert_eq!(r.rows[0][0], Value::from(""));
    // ...but the graph has the reconstructed edge.
    assert!(analysis.graph.dependencies_of(t2).contains(&t1));
    let undo = analysis.undo_set(&[t1], &[]);
    assert!(undo.contains(&t2));
}

#[test]
fn repairing_full_history_restores_empty_tables() {
    let mut fx = fixture(Flavor::Oracle);
    fx.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    fx.txn("a", &["INSERT INTO t (id, v) VALUES (1, 1)"]);
    fx.txn(
        "b",
        &[
            "UPDATE t SET v = 2 WHERE id = 1",
            "INSERT INTO t (id, v) VALUES (2, 2)",
        ],
    );
    fx.txn("c", &["DELETE FROM t WHERE id = 2"]);
    let a = fx.txn_id("a");
    let report = RepairController::new(fx.db.clone()).repair(&[a]).unwrap();
    assert_eq!(report.undo_set.len(), 3, "everything depends on the loader");
    assert_eq!(fx.db.row_count("t").unwrap(), 0);
    assert_eq!(report.saved, 0);
    assert_eq!(report.saved_percentage(), 0.0);
}

#[test]
fn what_if_analysis_with_ignore_table() {
    let mut fx = fixture(Flavor::Postgres);
    fx.exec("CREATE TABLE data (id INTEGER PRIMARY KEY, v INTEGER)");
    fx.exec("CREATE TABLE scratch (id INTEGER PRIMARY KEY, v INTEGER)");
    fx.txn(
        "attack",
        &[
            "INSERT INTO scratch (id, v) VALUES (1, 0)",
            "INSERT INTO data (id, v) VALUES (1, 0)",
        ],
    );
    fx.txn("via_scratch", &["SELECT v FROM scratch WHERE id = 1"]);
    fx.txn("via_data", &["SELECT v FROM data WHERE id = 1"]);
    let attack = fx.txn_id("attack");
    let via_scratch = fx.txn_id("via_scratch");
    let via_data = fx.txn_id("via_data");
    let analysis = RepairController::new(fx.db.clone()).analyze().unwrap();
    let rules = vec![FalseDepRule::IgnoreTable("scratch".into())];
    let undo = analysis.undo_set(&[attack], &rules);
    assert!(!undo.contains(&via_scratch));
    assert!(undo.contains(&via_data));
}
