//! Live (online) repair end-to-end: fence lifecycle, reject/pass
//! semantics through a tracked connection, equivalence with quiesced
//! repair, and fence teardown on the error and panic exit paths.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;

use resildb_core::{
    failpoints, ContainmentPolicy, FaultAction, FaultTrigger, FenceAction, Flavor, ResilientDb,
    Value,
};
use resildb_proxy::RowFence;

/// Loads three accounts, commits an attack on row 1, a dependent
/// transaction that reads it and writes row 2, and an independent
/// survivor on row 3. Returns the attack's proxy transaction id.
fn workload(rdb: &ResilientDb) -> i64 {
    let mut c = rdb.connect().unwrap();
    let run = |c: &mut Box<dyn resildb_core::Connection>, sql: &str| {
        c.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    };
    run(
        &mut c,
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal FLOAT)",
    );
    run(
        &mut c,
        "INSERT INTO acct (id, bal) VALUES (1, 100.0), (2, 50.0), (3, 75.0)",
    );
    run(&mut c, "ANNOTATE attack");
    run(&mut c, "BEGIN");
    run(&mut c, "UPDATE acct SET bal = 1000000.0 WHERE id = 1");
    run(&mut c, "COMMIT");
    run(&mut c, "ANNOTATE dependent");
    run(&mut c, "BEGIN");
    run(&mut c, "SELECT bal FROM acct WHERE id = 1");
    run(&mut c, "UPDATE acct SET bal = bal + 10.0 WHERE id = 2");
    run(&mut c, "COMMIT");
    run(&mut c, "ANNOTATE survivor");
    run(&mut c, "BEGIN");
    run(&mut c, "UPDATE acct SET bal = bal + 1.0 WHERE id = 3");
    run(&mut c, "COMMIT");
    rdb.txn_id_by_label("attack").unwrap().unwrap()
}

fn balances(rdb: &ResilientDb) -> Vec<(i64, f64)> {
    let mut s = rdb.database().session();
    let r = s.query("SELECT id, bal FROM acct ORDER BY id").unwrap();
    r.rows
        .iter()
        .map(|row| match (&row[0], &row[1]) {
            (Value::Int(id), Value::Float(b)) => (*id, *b),
            other => panic!("unexpected row {other:?}"),
        })
        .collect()
}

fn live_rdb() -> ResilientDb {
    ResilientDb::builder(Flavor::Postgres)
        .containment(ContainmentPolicy::FenceDynamic(FenceAction::Reject))
        .build()
        .unwrap()
}

#[test]
fn live_repair_matches_quiesced_and_reports_fence_stats() {
    // Quiesced reference world.
    let quiesced = ResilientDb::new(Flavor::Postgres).unwrap();
    let attack_q = workload(&quiesced);
    quiesced.repair(&[attack_q], &[]).unwrap();

    // Live world: identical history, repaired online.
    let live = live_rdb();
    let attack = workload(&live);
    let report = live
        .repair_controller_with(live.live_repair_options())
        .repair(&[attack])
        .unwrap();

    assert_eq!(balances(&live), balances(&quiesced));
    assert_eq!(balances(&live), vec![(1, 100.0), (2, 50.0), (3, 76.0)]);
    assert_eq!(report.undo_set.len(), 2, "attack + dependent undone");

    let stats = report.live.expect("live execution reports live stats");
    assert!(stats.fenced_tables >= 1, "static raise fenced acct");
    assert_eq!(stats.extension_rounds, 0, "no traffic: closure converges");

    let snap = live.metrics();
    assert_eq!(
        snap.gauge("repair.live.fence_size"),
        Some(0.0),
        "fence lifted after repair"
    );
    let json = resildb_core::telemetry::export::to_json(&snap);
    for key in [
        "proxy.fence.rejected",
        "proxy.fence.deferred",
        "proxy.fence.passed",
    ] {
        assert!(json.contains(key), "{key} missing from metrics");
    }

    let flight = live.flight_recorder().snapshot();
    for name in ["fence_raised", "fence_shrunk", "fence_lifted"] {
        assert!(
            flight.events.iter().any(|e| e.kind.name() == name),
            "flight recorder missing {name}"
        );
    }
}

#[test]
fn fence_rejects_intersecting_and_passes_disjoint_statements() {
    let rdb = live_rdb();
    workload(&rdb);

    // Drive the fence exactly as a mid-sweep live repair would: acct
    // shrunk to a single-row quarantine on id = 1.
    let fence = rdb.proxy_runtime().fence();
    fence.raise(vec!["acct".to_string()]);
    let mut rows = std::collections::HashMap::new();
    rows.insert(
        "acct".to_string(),
        RowFence {
            key_columns: vec!["id".to_string()],
            keys: ["1".to_string()].into_iter().collect(),
        },
    );
    fence.shrink(BTreeSet::new(), rows);

    let mut conn = rdb.connect().unwrap();
    let poisoned = conn.execute("UPDATE acct SET bal = 0.0 WHERE id = 1");
    let msg = poisoned
        .expect_err("statement on the fenced row")
        .to_string();
    assert!(msg.contains("containment fence"), "unexpected error: {msg}");

    // A full-table scan may touch the quarantined row: refused too.
    assert!(conn.execute("SELECT * FROM acct").is_err());

    // A provably-disjoint statement flows through mid-repair.
    conn.execute("UPDATE acct SET bal = bal + 1.0 WHERE id = 2")
        .expect("disjoint statement passes the row fence");

    fence.lift();
    conn.execute("SELECT * FROM acct")
        .expect("everything passes once the fence is down");

    let stats = fence.stats();
    assert!(stats.rejected >= 2 && stats.passed >= 1);
}

#[test]
fn failed_live_repair_lifts_fence_and_retry_succeeds() {
    let rdb = live_rdb();
    let attack = workload(&rdb);

    // First attempt errors at the pre-sweep failpoint: no compensation
    // ran, and the fence must come down with the error.
    let failing = rdb.live_repair_options().fault(
        failpoints::REPAIR_LIVE_BEFORE_SHRINK,
        FaultAction::Error,
        FaultTrigger::Once,
    );
    rdb.repair_controller_with(failing)
        .repair(&[attack])
        .expect_err("armed failpoint aborts the live repair");
    assert_eq!(rdb.metrics().gauge("repair.live.fence_size"), Some(0.0));
    assert_eq!(
        balances(&rdb)[0],
        (1, 1_000_000.0),
        "failed attempt rolled back before compensating"
    );

    // The fault was Once; the retry repairs and lifts cleanly.
    let report = rdb
        .repair_controller_with(rdb.live_repair_options())
        .repair(&[attack])
        .unwrap();
    assert!(report.live.is_some());
    assert_eq!(balances(&rdb), vec![(1, 100.0), (2, 50.0), (3, 76.0)]);
    assert_eq!(rdb.metrics().gauge("repair.live.fence_size"), Some(0.0));
}

#[test]
fn panicking_live_repair_still_lifts_fence() {
    let rdb = live_rdb();
    let attack = workload(&rdb);

    let exploding = rdb.live_repair_options().fault(
        failpoints::REPAIR_LIVE_BEFORE_SHRINK,
        FaultAction::Panic,
        FaultTrigger::Once,
    );
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let _ = rdb.repair_controller_with(exploding).repair(&[attack]);
    }));
    assert!(result.is_err(), "the armed failpoint panics");
    assert_eq!(
        rdb.metrics().gauge("repair.live.fence_size"),
        Some(0.0),
        "drop guard lifted the fence through the unwind"
    );

    // The incident timeline is well-formed through the unwind too: the
    // aborted episode is closed with its fence pair matched, because the
    // drop guards mark FenceLifted and close the incident in order.
    use resildb_core::IncidentPhase as P;
    let incidents = rdb.telemetry().timeline().snapshot();
    assert_eq!(incidents.len(), 1);
    assert!(!incidents[0].open, "panic teardown closed the incident");
    assert_eq!(incidents[0].count(P::FenceRaised), 1);
    assert_eq!(incidents[0].count(P::FenceLifted), 1);

    // The database remains fully serviceable and repairable.
    let report = rdb
        .repair_controller_with(rdb.live_repair_options())
        .repair(&[attack])
        .unwrap();
    assert_eq!(report.undo_set.len(), 2);
    assert_eq!(balances(&rdb), vec![(1, 100.0), (2, 50.0), (3, 76.0)]);

    // The retry is its own incident with its own matched fence pair.
    let incidents = rdb.telemetry().timeline().snapshot();
    assert_eq!(incidents.len(), 2);
    for incident in &incidents {
        assert!(!incident.open);
        assert_eq!(
            incident.count(P::FenceRaised),
            incident.count(P::FenceLifted)
        );
        let d = incident.decomposition();
        assert_eq!(d.mttd_ns + d.mttc_ns + d.mttr_ns, d.wall_ns);
    }
}

/// Minimal HTTP GET against the observability endpoint; returns the
/// status code and body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect endpoint");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn ready_endpoint_flips_across_fence_raise_and_lift() {
    use resildb_core::{MetricsServer, ServerRoutes};

    let rdb = std::sync::Arc::new(live_rdb());
    workload(&rdb);

    // Wire /ready to the real containment fence, exactly as `mttr --live
    // --serve` does, and drive the fence through its lifecycle.
    let ready_rdb = std::sync::Arc::clone(&rdb);
    let snapshot_rdb = std::sync::Arc::clone(&rdb);
    let incidents_rdb = std::sync::Arc::clone(&rdb);
    let routes = ServerRoutes::new()
        .ready(move || !ready_rdb.proxy_runtime().fence().is_active())
        .metrics(move || snapshot_rdb.metrics())
        .incidents(move || incidents_rdb.telemetry().timeline().to_json());
    let server = MetricsServer::serve("127.0.0.1:0", routes).expect("bind endpoint");
    let fence = rdb.proxy_runtime().fence();

    let (status, _) = http_get(server.addr(), "/ready");
    assert_eq!(status, 200, "no fence: ready");
    let (status, body) = http_get(server.addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("resildb_"), "prometheus body: {body:.60}");
    let (status, _) = http_get(server.addr(), "/health");
    assert_eq!(status, 200, "health is unconditional");

    fence.raise(vec!["acct".to_string()]);
    let (status, _) = http_get(server.addr(), "/ready");
    assert_eq!(status, 503, "fence raised: not ready");
    let (status, _) = http_get(server.addr(), "/health");
    assert_eq!(status, 200, "still healthy while fenced");

    fence.lift();
    let (status, _) = http_get(server.addr(), "/ready");
    assert_eq!(status, 200, "fence lifted: ready again");

    // /incidents serves the timeline JSON envelope even when empty.
    let (status, body) = http_get(server.addr(), "/incidents");
    assert_eq!(status, 200);
    assert!(
        body.starts_with("{\"incidents\":["),
        "incidents json: {body}"
    );
}

#[test]
fn incident_timeline_decomposes_live_repair() {
    let rdb = live_rdb();
    let attack = workload(&rdb);
    rdb.repair_controller_with(rdb.live_repair_options())
        .repair(&[attack])
        .unwrap();

    let incidents = rdb.telemetry().timeline().snapshot();
    assert_eq!(incidents.len(), 1, "one repair episode, one incident");
    let incident = &incidents[0];
    assert!(!incident.open, "execute() closed the incident");
    use resildb_core::IncidentPhase as P;
    for phase in [
        P::Detected,
        P::FenceRaised,
        P::QuarantineShrunk,
        P::SweepComplete,
        P::FenceLifted,
    ] {
        assert_eq!(incident.count(phase), 1, "{} marked once", phase.name());
    }
    // Marks are strictly monotonic and the decomposition is exact.
    for w in incident.marks.windows(2) {
        assert!(w[1].at_ns > w[0].at_ns, "marks strictly ordered");
    }
    let d = incident.decomposition();
    assert_eq!(d.mttd_ns + d.mttc_ns + d.mttr_ns, d.wall_ns);

    // The flight recorder saw the same story: every timeline phase with a
    // flight twin appears in the capture, so `resildb-trace --repair`
    // and `/incidents` agree on what happened.
    let flight = rdb.flight_recorder().snapshot();
    for name in [
        "incident_detected",
        "fence_raised",
        "fence_shrunk",
        "sweep_complete",
        "fence_lifted",
    ] {
        assert!(
            flight.events.iter().any(|e| e.kind.name() == name),
            "flight capture missing {name}"
        );
    }
}

#[test]
fn static_policy_keeps_whole_tables_fenced() {
    let rdb = ResilientDb::builder(Flavor::Postgres)
        .containment(ContainmentPolicy::FenceStatic(FenceAction::Reject))
        .build()
        .unwrap();
    let attack = workload(&rdb);
    let report = rdb
        .repair_controller_with(rdb.live_repair_options())
        .repair(&[attack])
        .unwrap();
    assert!(report.live.is_some());
    assert_eq!(balances(&rdb), vec![(1, 100.0), (2, 50.0), (3, 76.0)]);
    assert_eq!(rdb.metrics().gauge("repair.live.fence_size"), Some(0.0));
}
