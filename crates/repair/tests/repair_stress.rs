//! Adversarial repair scenarios: aborted transactions in the history,
//! multi-page Sybase offset adjustment, deep dependency chains, and
//! concurrent tracked clients.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_engine::{Database, Flavor, Value};
use resildb_proxy::{prepare_database, ProxyConfig, TrackingProxy};
use resildb_repair::{RepairController, RepairPlan};
use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver};

fn tracked(flavor: Flavor) -> (Database, Box<dyn Connection>) {
    let db = Database::in_memory(flavor);
    let native = NativeDriver::new(db.clone(), LinkProfile::local());
    prepare_database(&mut *native.connect().unwrap()).unwrap();
    let config = ProxyConfig::builder(flavor)
        .record_read_only_deps(true)
        .build();
    let driver = TrackingProxy::single_proxy(db.clone(), LinkProfile::local(), config);
    let conn = driver.connect().unwrap();
    (db, conn)
}

fn txn_id(db: &Database, label: &str) -> i64 {
    let mut s = db.session();
    match s
        .query(&format!("SELECT tr_id FROM annot WHERE descr = '{label}'"))
        .unwrap()
        .rows
        .first()
        .map(|r| r[0].clone())
    {
        Some(Value::Int(v)) => v,
        other => panic!("{label}: {other:?}"),
    }
}

#[test]
fn aborted_transactions_do_not_confuse_analysis_or_repair() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
        .unwrap();

    // An aborted transaction that would have been dependent.
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT v FROM t WHERE id = 1").unwrap();
    conn.execute("UPDATE t SET v = 777 WHERE id = 2").unwrap();
    conn.execute("ROLLBACK").unwrap();

    conn.execute("ANNOTATE attack").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE t SET v = 666 WHERE id = 1").unwrap();
    conn.execute("COMMIT").unwrap();

    // Another abort after the attack, touching the poisoned row.
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE t SET v = 888 WHERE id = 1").unwrap();
    conn.execute("ROLLBACK").unwrap();

    let attack = txn_id(&db, "attack");
    let tool = RepairController::new(db.clone());
    let analysis = tool.analyze().unwrap();
    // Aborted transactions are uncorrelated and absent from the graph.
    for rec in &analysis.records {
        if let Some(p) = analysis.correlation.proxy_id(rec.internal_txn) {
            assert!(analysis.tracked_transactions().contains(&p));
        }
    }
    let report = tool.repair(&[attack]).unwrap();
    assert_eq!(report.undo_set.len(), 1);
    let mut s = db.session();
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 1").unwrap().rows[0][0],
        Value::Int(10)
    );
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 2").unwrap().rows[0][0],
        Value::Int(20)
    );
}

#[test]
fn sybase_offset_adjustment_across_many_pages_and_deletes() {
    let (db, mut conn) = tracked(Flavor::Sybase);
    // Rows wide enough that a page holds only a handful.
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, pad VARCHAR(240), v INTEGER)")
        .unwrap();
    conn.execute("ANNOTATE load").unwrap();
    conn.execute("BEGIN").unwrap();
    for i in 0..120 {
        conn.execute(&format!(
            "INSERT INTO t (id, pad, v) VALUES ({i}, 'x', {i})"
        ))
        .unwrap();
    }
    conn.execute("COMMIT").unwrap();
    assert!(
        db.table("t").unwrap().read().page_count() >= 4,
        "need multiple pages"
    );

    // The attack modifies rows scattered across pages.
    conn.execute("ANNOTATE attack").unwrap();
    conn.execute("BEGIN").unwrap();
    for i in [3, 37, 71, 105] {
        conn.execute(&format!("UPDATE t SET v = 9999 WHERE id = {i}"))
            .unwrap();
    }
    conn.execute("COMMIT").unwrap();

    // Unrelated cleanup deletes interleave on every page, shifting rows
    // below (and around) each modified row.
    conn.execute("ANNOTATE cleanup").unwrap();
    conn.execute("BEGIN").unwrap();
    for i in (0..120).step_by(5) {
        if ![3, 37, 71, 105].contains(&i) {
            conn.execute(&format!("DELETE FROM t WHERE id = {i}"))
                .unwrap();
        }
    }
    conn.execute("COMMIT").unwrap();

    let attack = txn_id(&db, "attack");
    let cleanup = txn_id(&db, "cleanup");
    let tool = RepairController::new(db.clone());
    let analysis = tool.analyze().unwrap();
    let undo = analysis.undo_set(&[attack], &[]);
    assert!(
        !undo.contains(&cleanup),
        "cleanup deleted untouched rows only"
    );
    tool.execute(&analysis, &RepairPlan::with_undo_set(&[], undo.clone()))
        .unwrap();

    let mut s = db.session();
    for i in [3, 37, 71, 105] {
        assert_eq!(
            s.query(&format!("SELECT v FROM t WHERE id = {i}"))
                .unwrap()
                .rows[0][0],
            Value::Int(i),
            "row {i} restored"
        );
    }
}

#[test]
fn deep_dependency_chain_closure_and_repair() {
    let (db, mut conn) = tracked(Flavor::Oracle);
    conn.execute("CREATE TABLE chain (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("ANNOTATE t0").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO chain (id, v) VALUES (0, 0)")
        .unwrap();
    conn.execute("COMMIT").unwrap();
    // 80 transactions, each reading the previous row and inserting the
    // next — one long genuine dependency chain.
    for i in 1..=80 {
        conn.execute(&format!("ANNOTATE t{i}")).unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute(&format!("SELECT v FROM chain WHERE id = {}", i - 1))
            .unwrap();
        conn.execute(&format!("INSERT INTO chain (id, v) VALUES ({i}, {i})"))
            .unwrap();
        conn.execute("COMMIT").unwrap();
    }
    let t0 = txn_id(&db, "t0");
    let tool = RepairController::new(db.clone());
    let analysis = tool.analyze().unwrap();
    let undo = analysis.undo_set(&[t0], &[]);
    assert_eq!(undo.len(), 81, "the whole chain is transitively corrupted");
    let report = tool
        .execute(&analysis, &RepairPlan::with_undo_set(&[], undo.clone()))
        .unwrap();
    // 81 chain inserts plus each undone transaction's tracking rows.
    assert!(report.outcome.rows_deleted >= 81, "{report:?}");
    assert_eq!(db.row_count("chain").unwrap(), 0);
}

#[test]
fn mid_chain_attack_spares_the_prefix() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE chain (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    for i in 0..=20 {
        conn.execute(&format!("ANNOTATE t{i}")).unwrap();
        conn.execute("BEGIN").unwrap();
        if i > 0 {
            conn.execute(&format!("SELECT v FROM chain WHERE id = {}", i - 1))
                .unwrap();
        }
        conn.execute(&format!("INSERT INTO chain (id, v) VALUES ({i}, {i})"))
            .unwrap();
        conn.execute("COMMIT").unwrap();
    }
    let mid = txn_id(&db, "t10");
    let analysis = RepairController::new(db.clone()).analyze().unwrap();
    let undo = analysis.undo_set(&[mid], &[]);
    assert_eq!(undo.len(), 11, "t10..t20");
    RepairController::new(db.clone())
        .execute(&analysis, &RepairPlan::with_undo_set(&[], undo.clone()))
        .unwrap();
    assert_eq!(db.row_count("chain").unwrap(), 10, "rows 0..9 survive");
}

#[test]
fn concurrent_tracked_clients_share_the_proxy_id_sequence() {
    let db = Database::in_memory(Flavor::Postgres);
    let native = NativeDriver::new(db.clone(), LinkProfile::local());
    prepare_database(&mut *native.connect().unwrap()).unwrap();
    let driver = std::sync::Arc::new(TrackingProxy::single_proxy(
        db.clone(),
        LinkProfile::local(),
        ProxyConfig::new(Flavor::Postgres),
    ));
    {
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..4i64 {
        let driver = std::sync::Arc::clone(&driver);
        handles.push(std::thread::spawn(move || {
            let mut conn = driver.connect().unwrap();
            for i in 0..10 {
                conn.execute(&format!(
                    "INSERT INTO t (id, v) VALUES ({}, {i})",
                    t * 1000 + i
                ))
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // 40 tracked transactions with 40 distinct proxy ids (DDL through the
    // proxy is auto-committed by the engine and not a tracked write txn).
    let analysis = RepairController::new(db.clone()).analyze().unwrap();
    assert_eq!(analysis.tracked_transactions().len(), 40);
}

#[test]
fn repair_restores_multi_table_transactions_atomically() {
    let (db, mut conn) = tracked(Flavor::Sybase);
    conn.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO a (id, v) VALUES (1, 1)").unwrap();
    conn.execute("INSERT INTO b (id, v) VALUES (1, 1)").unwrap();
    conn.execute("ANNOTATE attack").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("UPDATE a SET v = 666 WHERE id = 1").unwrap();
    conn.execute("DELETE FROM b WHERE id = 1").unwrap();
    conn.execute("INSERT INTO a (id, v) VALUES (2, 666)")
        .unwrap();
    conn.execute("COMMIT").unwrap();

    let attack = txn_id(&db, "attack");
    RepairController::new(db.clone()).repair(&[attack]).unwrap();
    let mut s = db.session();
    assert_eq!(
        s.query("SELECT v FROM a WHERE id = 1").unwrap().rows[0][0],
        Value::Int(1)
    );
    assert_eq!(db.row_count("a").unwrap(), 1, "evil insert removed");
    assert_eq!(
        s.query("SELECT v FROM b WHERE id = 1").unwrap().rows[0][0],
        Value::Int(1),
        "deleted row re-inserted"
    );
}
