//! The nine TPC-C tables.

use resildb_wire::{Connection, WireError};

/// Names of all TPC-C tables, in creation order.
pub const TPCC_TABLES: [&str; 9] = [
    "warehouse",
    "district",
    "customer",
    "history",
    "new_order",
    "orders",
    "order_line",
    "item",
    "stock",
];

const DDL: [&str; 9] = [
    "CREATE TABLE warehouse (w_id INTEGER PRIMARY KEY, w_name VARCHAR(10), \
     w_street_1 VARCHAR(20), w_city VARCHAR(20), w_state CHAR(2), w_zip CHAR(9), \
     w_tax NUMERIC(4,4), w_ytd NUMERIC(12,2))",
    "CREATE TABLE district (d_id INTEGER, d_w_id INTEGER, d_name VARCHAR(10), \
     d_street_1 VARCHAR(20), d_city VARCHAR(20), d_state CHAR(2), d_zip CHAR(9), \
     d_tax NUMERIC(4,4), d_ytd NUMERIC(12,2), d_next_o_id INTEGER, \
     PRIMARY KEY (d_w_id, d_id))",
    "CREATE TABLE customer (c_id INTEGER, c_d_id INTEGER, c_w_id INTEGER, \
     c_first VARCHAR(16), c_last VARCHAR(16), c_street_1 VARCHAR(20), \
     c_city VARCHAR(20), c_state CHAR(2), c_zip CHAR(9), c_phone CHAR(16), \
     c_credit CHAR(2), c_credit_lim NUMERIC(12,2), c_discount NUMERIC(4,4), \
     c_balance NUMERIC(12,2), c_ytd_payment NUMERIC(12,2), \
     c_payment_cnt INTEGER, c_delivery_cnt INTEGER, c_data VARCHAR(250), \
     PRIMARY KEY (c_w_id, c_d_id, c_id))",
    "CREATE TABLE history (h_c_id INTEGER, h_c_d_id INTEGER, h_c_w_id INTEGER, \
     h_d_id INTEGER, h_w_id INTEGER, h_date INTEGER, h_amount NUMERIC(6,2), \
     h_data VARCHAR(24))",
    "CREATE TABLE new_order (no_o_id INTEGER, no_d_id INTEGER, no_w_id INTEGER, \
     PRIMARY KEY (no_w_id, no_d_id, no_o_id))",
    "CREATE TABLE orders (o_id INTEGER, o_d_id INTEGER, o_w_id INTEGER, \
     o_c_id INTEGER, o_entry_d INTEGER, o_carrier_id INTEGER, o_ol_cnt INTEGER, \
     o_all_local INTEGER, PRIMARY KEY (o_w_id, o_d_id, o_id))",
    "CREATE TABLE order_line (ol_o_id INTEGER, ol_d_id INTEGER, ol_w_id INTEGER, \
     ol_number INTEGER, ol_i_id INTEGER, ol_supply_w_id INTEGER, \
     ol_delivery_d INTEGER, ol_quantity INTEGER, ol_amount NUMERIC(6,2), \
     ol_dist_info CHAR(24), PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
    "CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_im_id INTEGER, \
     i_name VARCHAR(24), i_price NUMERIC(5,2), i_data VARCHAR(50))",
    "CREATE TABLE stock (s_i_id INTEGER, s_w_id INTEGER, s_quantity INTEGER, \
     s_dist_01 CHAR(24), s_dist_02 CHAR(24), s_dist_03 CHAR(24), \
     s_ytd NUMERIC(8,2), s_order_cnt INTEGER, s_remote_cnt INTEGER, \
     s_data VARCHAR(50), PRIMARY KEY (s_w_id, s_i_id))",
];

/// The DDL strings, for corpus recording.
pub(crate) fn ddl() -> &'static [&'static str] {
    &DDL
}

/// Issues the nine `CREATE TABLE` statements over `conn`. Run this through
/// the tracking proxy so every table transparently receives its `trid`
/// column (and, on Sybase, the identity column).
///
/// # Errors
///
/// DDL failures (e.g. tables already exist).
pub fn create_tables(conn: &mut dyn Connection) -> Result<(), WireError> {
    for ddl in DDL {
        conn.execute(ddl)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_engine::{Database, Flavor};
    use resildb_wire::{Driver, LinkProfile, NativeDriver};

    #[test]
    fn creates_all_nine_tables() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = NativeDriver::new(db.clone(), LinkProfile::local());
        create_tables(&mut *driver.connect().unwrap()).unwrap();
        let names = db.table_names();
        for t in TPCC_TABLES {
            assert!(names.contains(&t.to_string()), "{t} missing");
        }
    }

    #[test]
    fn through_proxy_tables_gain_trid() {
        let db = Database::in_memory(Flavor::Sybase);
        let native = NativeDriver::new(db.clone(), LinkProfile::local());
        resildb_proxy::prepare_database(&mut *native.connect().unwrap()).unwrap();
        let proxy = resildb_proxy::TrackingProxy::single_proxy(
            db.clone(),
            LinkProfile::local(),
            resildb_proxy::ProxyConfig::new(Flavor::Sybase),
        );
        create_tables(&mut *proxy.connect().unwrap()).unwrap();
        for t in TPCC_TABLES {
            let schema = db.table(t).unwrap().read().schema().clone();
            assert!(schema.has_column("trid"), "{t} lacks trid");
            assert!(schema.has_column("rid"), "{t} lacks rid");
        }
    }
}
