//! Attack/error scenarios for the §5.3 repair-accuracy experiments.

use resildb_wire::{Connection, WireError};

/// What the malicious/erroneous transaction does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// A forged payment: bumps `w_ytd`/`d_ytd` and a victim customer's
    /// balance — the scenario whose damage spreads through the warehouse
    /// and district rows (and whose spread is mostly *false* sharing,
    /// making it the natural subject of Figure 5's false-dependency
    /// comparison).
    ForgedPayment,
    /// Corrupts a victim customer's balance only.
    BalanceCorruption,
    /// Corrupts an item price — every later New-Order reading the item is
    /// polluted.
    PriceCorruption,
}

/// An injectable attack transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attack {
    /// What to corrupt.
    pub kind: AttackKind,
    /// Target warehouse.
    pub w_id: u32,
    /// Target district (ignored by [`AttackKind::PriceCorruption`]).
    pub d_id: u32,
    /// Target customer or item id.
    pub target_id: u32,
}

/// Annotation label given to injected attack transactions.
pub const ATTACK_LABEL: &str = "ATTACK";

impl Attack {
    /// Executes the attack as one annotated transaction through `conn`
    /// (normally the tracking proxy — the paper's threat model is a
    /// malicious *client*, whose statements flow through the proxy like
    /// anyone else's).
    ///
    /// # Errors
    ///
    /// SQL failures.
    pub fn execute(&self, conn: &mut dyn Connection) -> Result<(), WireError> {
        conn.execute(&format!("ANNOTATE {ATTACK_LABEL}"))?;
        conn.execute("BEGIN")?;
        let (w, d, t) = (self.w_id, self.d_id, self.target_id);
        match self.kind {
            AttackKind::ForgedPayment => {
                conn.execute(&format!(
                    "UPDATE warehouse SET w_ytd = w_ytd + 1000000.0 WHERE w_id = {w}"
                ))?;
                conn.execute(&format!(
                    "UPDATE district SET d_ytd = d_ytd + 1000000.0 \
                     WHERE d_w_id = {w} AND d_id = {d}"
                ))?;
                conn.execute(&format!(
                    "UPDATE customer SET c_balance = c_balance + 1000000.0 \
                     WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {t}"
                ))?;
            }
            AttackKind::BalanceCorruption => {
                conn.execute(&format!(
                    "UPDATE customer SET c_balance = 999999.0 \
                     WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {t}"
                ))?;
            }
            AttackKind::PriceCorruption => {
                conn.execute(&format!("UPDATE item SET i_price = 0.01 WHERE i_id = {t}"))?;
            }
        }
        conn.execute("COMMIT")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_fields_are_plain_data() {
        let a = Attack {
            kind: AttackKind::ForgedPayment,
            w_id: 1,
            d_id: 2,
            target_id: 3,
        };
        assert_eq!(a.kind, AttackKind::ForgedPayment);
        assert_eq!((a.w_id, a.d_id, a.target_id), (1, 2, 3));
    }
}
