//! The five TPC-C transaction types, implemented over the wire-level
//! [`Connection`] abstraction so they run identically against a raw driver
//! or the tracking proxy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resildb_engine::Value;
use resildb_wire::{Connection, Response, WireError};

use crate::config::TpccConfig;

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Order placement (`Order` in the paper's Figure 3 labels).
    NewOrder,
    /// Order payment (`Payment`).
    Payment,
    /// Order delivery (`Deliv`).
    Delivery,
    /// Order status inquiry.
    OrderStatus,
    /// Stock level inquiry.
    StockLevel,
}

impl TxnKind {
    /// Every transaction type, in the canonical round-robin order the
    /// corpus recorders use.
    pub const ALL: [TxnKind; 5] = [
        TxnKind::NewOrder,
        TxnKind::Payment,
        TxnKind::Delivery,
        TxnKind::OrderStatus,
        TxnKind::StockLevel,
    ];

    /// The label prefix used in dependency-graph annotations, matching the
    /// paper's Figure 3 (`Order`, `Payment`, `Deliv`, ...).
    pub fn label_prefix(self) -> &'static str {
        match self {
            TxnKind::NewOrder => "Order",
            TxnKind::Payment => "Payment",
            TxnKind::Delivery => "Deliv",
            TxnKind::OrderStatus => "Status",
            TxnKind::StockLevel => "Stock",
        }
    }

    /// The transaction-class name used by the profiled corpus and the
    /// blast-radius reports (`NewOrder`, `Payment`, ...).
    pub fn class_name(self) -> &'static str {
        match self {
            TxnKind::NewOrder => "NewOrder",
            TxnKind::Payment => "Payment",
            TxnKind::Delivery => "Delivery",
            TxnKind::OrderStatus => "OrderStatus",
            TxnKind::StockLevel => "StockLevel",
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions retried after a deadlock abort.
    pub deadlock_retries: u64,
}

/// Drives TPC-C transactions over a connection.
///
/// The runner annotates every transaction with a paper-style label
/// (`<Type>_<warehouse>_<district>_<customer>_<seq>`) via the proxy's
/// `ANNOTATE` extension — harmless when running without the proxy is
/// required, so callers against a raw driver should disable annotations.
#[derive(Debug)]
pub struct TpccRunner {
    config: TpccConfig,
    rng: StdRng,
    seq: u64,
    annotate: bool,
    /// When set, every transaction targets this warehouse instead of a
    /// random one — the multi-threaded benchmark pins each worker to its
    /// own warehouse so threads contend on the lock manager's machinery,
    /// not on the same rows.
    home_warehouse: Option<u32>,
    /// Statistics since construction.
    pub stats: TxnStats,
}

impl TpccRunner {
    /// Creates a runner (annotations on).
    pub fn new(config: TpccConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            annotate: true,
            home_warehouse: None,
            stats: TxnStats::default(),
        }
    }

    /// Disables `ANNOTATE` pseudo-statements (required when running
    /// against a raw driver without the proxy).
    pub fn without_annotations(mut self) -> Self {
        self.annotate = false;
        self
    }

    /// Pins every transaction to `warehouse` (1-based, clamped to the
    /// configured warehouse count). Threaded benchmark workers each take a
    /// distinct home warehouse so their row footprints are disjoint.
    pub fn with_home_warehouse(mut self, warehouse: u32) -> Self {
        self.home_warehouse = Some(warehouse.clamp(1, self.config.warehouses));
        self
    }

    fn pick_warehouse(&mut self) -> u32 {
        match self.home_warehouse {
            Some(w) => w,
            None => self.rng.gen_range(1..=self.config.warehouses),
        }
    }

    /// The most recently used annotation label (for locating the txn in
    /// the dependency graph).
    pub fn last_label(&self) -> String {
        format!("seq_{}", self.seq)
    }

    fn pick_wdc(&mut self) -> (u32, u32, u32) {
        let w = self.pick_warehouse();
        let d = self.rng.gen_range(1..=self.config.districts_per_warehouse);
        let c = self.rng.gen_range(1..=self.config.customers_per_district);
        (w, d, c)
    }

    fn begin(
        &mut self,
        conn: &mut dyn Connection,
        kind: TxnKind,
        w: u32,
        d: u32,
        c: u32,
    ) -> Result<(), WireError> {
        self.seq += 1;
        if self.annotate {
            conn.execute(&format!(
                "ANNOTATE {}_{w}_{d}_{c}_{}",
                kind.label_prefix(),
                self.seq
            ))?;
        }
        conn.execute("BEGIN")?;
        Ok(())
    }

    /// Runs one transaction of `kind` with random parameters. Deadlock
    /// victims are retried (fresh transaction), as a TPC-C client would.
    ///
    /// # Errors
    ///
    /// Non-retryable SQL failures.
    pub fn run(&mut self, conn: &mut dyn Connection, kind: TxnKind) -> Result<(), WireError> {
        loop {
            let result = match kind {
                TxnKind::NewOrder => self.new_order(conn),
                TxnKind::Payment => self.payment(conn),
                TxnKind::Delivery => self.delivery(conn),
                TxnKind::OrderStatus => self.order_status(conn),
                TxnKind::StockLevel => self.stock_level(conn),
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() => {
                    self.stats.deadlock_retries += 1;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// TPC-C New-Order (§2.4 of the spec, simplified).
    pub fn new_order(&mut self, conn: &mut dyn Connection) -> Result<(), WireError> {
        let (w, d, c) = self.pick_wdc();
        let line_count = self.rng.gen_range(1..=self.config.max_order_lines);
        let lines: Vec<(u32, u32)> = (0..line_count)
            .map(|_| {
                (
                    self.rng.gen_range(1..=self.config.items),
                    self.rng.gen_range(1..=10),
                )
            })
            .collect();
        self.begin(conn, TxnKind::NewOrder, w, d, c)?;
        query(
            conn,
            &format!("SELECT w_tax FROM warehouse WHERE w_id = {w}"),
        )?;
        let r = query(
            conn,
            &format!("SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}"),
        )?;
        let o_id = int_at(&r, 0, 1)?;
        conn.execute(&format!(
            "UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = {w} AND d_id = {d}"
        ))?;
        query(
            conn,
            &format!(
                "SELECT c_discount, c_last, c_credit FROM customer \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ),
        )?;
        conn.execute(&format!(
            "INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id, o_entry_d, o_carrier_id, \
             o_ol_cnt, o_all_local) VALUES ({o_id}, {d}, {w}, {c}, {}, NULL, {}, 1)",
            self.seq,
            lines.len()
        ))?;
        conn.execute(&format!(
            "INSERT INTO new_order (no_o_id, no_d_id, no_w_id) VALUES ({o_id}, {d}, {w})"
        ))?;
        for (n, (i, qty)) in lines.iter().enumerate() {
            let r = query(conn, &format!("SELECT i_price FROM item WHERE i_id = {i}"))?;
            let price = float_at(&r, 0, 0)?;
            let r = query(
                conn,
                &format!("SELECT s_quantity FROM stock WHERE s_w_id = {w} AND s_i_id = {i}"),
            )?;
            let s_qty = int_at(&r, 0, 0)?;
            let new_qty = if s_qty >= i64::from(*qty) + 10 {
                s_qty - i64::from(*qty)
            } else {
                s_qty - i64::from(*qty) + 91
            };
            conn.execute(&format!(
                "UPDATE stock SET s_quantity = {new_qty}, s_ytd = s_ytd + {qty}, \
                 s_order_cnt = s_order_cnt + 1 WHERE s_w_id = {w} AND s_i_id = {i}"
            ))?;
            let amount = price * f64::from(*qty);
            conn.execute(&format!(
                "INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id, \
                 ol_supply_w_id, ol_delivery_d, ol_quantity, ol_amount, ol_dist_info) \
                 VALUES ({o_id}, {d}, {w}, {}, {i}, {w}, NULL, {qty}, {amount:.2}, 'info')",
                n + 1
            ))?;
        }
        conn.execute("COMMIT")?;
        self.stats.committed += 1;
        Ok(())
    }

    /// TPC-C Payment: note that the warehouse/district SELECTs read the
    /// name/address columns but *not* `w_ytd`/`d_ytd` — the derived
    /// columns the paper's false-dependency analysis targets.
    pub fn payment(&mut self, conn: &mut dyn Connection) -> Result<(), WireError> {
        let (w, d, c) = self.pick_wdc();
        let amount: f64 = self.rng.gen_range(100..=500_000) as f64 / 100.0;
        self.begin(conn, TxnKind::Payment, w, d, c)?;
        conn.execute(&format!(
            "UPDATE warehouse SET w_ytd = w_ytd + {amount:.2} WHERE w_id = {w}"
        ))?;
        query(
            conn,
            &format!("SELECT w_name, w_street_1, w_city FROM warehouse WHERE w_id = {w}"),
        )?;
        conn.execute(&format!(
            "UPDATE district SET d_ytd = d_ytd + {amount:.2} WHERE d_w_id = {w} AND d_id = {d}"
        ))?;
        query(
            conn,
            &format!("SELECT d_name FROM district WHERE d_w_id = {w} AND d_id = {d}"),
        )?;
        query(
            conn,
            &format!(
                "SELECT c_balance, c_credit FROM customer \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ),
        )?;
        conn.execute(&format!(
            "UPDATE customer SET c_balance = c_balance - {amount:.2}, \
             c_ytd_payment = c_ytd_payment + {amount:.2}, c_payment_cnt = c_payment_cnt + 1 \
             WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
        ))?;
        conn.execute(&format!(
            "INSERT INTO history (h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, h_date, \
             h_amount, h_data) VALUES ({c}, {d}, {w}, {d}, {w}, {}, {amount:.2}, 'pay')",
            self.seq
        ))?;
        conn.execute("COMMIT")?;
        self.stats.committed += 1;
        Ok(())
    }

    /// TPC-C Delivery: delivers the oldest undelivered order per district.
    pub fn delivery(&mut self, conn: &mut dyn Connection) -> Result<(), WireError> {
        let w = self.pick_warehouse();
        let carrier = self.rng.gen_range(1..=10);
        self.begin(conn, TxnKind::Delivery, w, 0, 0)?;
        for d in 1..=self.config.districts_per_warehouse {
            let r = query(
                conn,
                &format!(
                    "SELECT no_o_id FROM new_order WHERE no_w_id = {w} AND no_d_id = {d} \
                     ORDER BY no_o_id LIMIT 1"
                ),
            )?;
            let Some(o_id) = r.rows.first().and_then(|row| match row[0] {
                Value::Int(v) => Some(v),
                _ => None,
            }) else {
                continue; // nothing to deliver in this district
            };
            conn.execute(&format!(
                "DELETE FROM new_order WHERE no_w_id = {w} AND no_d_id = {d} AND no_o_id = {o_id}"
            ))?;
            let r = query(
                conn,
                &format!(
                    "SELECT o_c_id FROM orders WHERE o_w_id = {w} AND o_d_id = {d} AND o_id = {o_id}"
                ),
            )?;
            let c = int_at(&r, 0, 0)?;
            conn.execute(&format!(
                "UPDATE orders SET o_carrier_id = {carrier} \
                 WHERE o_w_id = {w} AND o_d_id = {d} AND o_id = {o_id}"
            ))?;
            conn.execute(&format!(
                "UPDATE order_line SET ol_delivery_d = {} \
                 WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o_id}",
                self.seq
            ))?;
            // Sum order-line amounts client-side (keeps the read tracked;
            // a SUM() aggregate would be invisible to the proxy).
            let r = query(
                conn,
                &format!(
                    "SELECT ol_amount FROM order_line \
                     WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o_id}"
                ),
            )?;
            let total: f64 = r
                .rows
                .iter()
                .map(|row| match row[0] {
                    Value::Float(v) => v,
                    Value::Int(v) => v as f64,
                    _ => 0.0,
                })
                .sum();
            conn.execute(&format!(
                "UPDATE customer SET c_balance = c_balance + {total:.2}, \
                 c_delivery_cnt = c_delivery_cnt + 1 \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ))?;
        }
        conn.execute("COMMIT")?;
        self.stats.committed += 1;
        Ok(())
    }

    /// TPC-C Order-Status (read-only).
    pub fn order_status(&mut self, conn: &mut dyn Connection) -> Result<(), WireError> {
        let (w, d, c) = self.pick_wdc();
        self.begin(conn, TxnKind::OrderStatus, w, d, c)?;
        query(
            conn,
            &format!(
                "SELECT c_balance, c_first, c_last FROM customer \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ),
        )?;
        let r = query(
            conn,
            &format!(
                "SELECT o_id FROM orders WHERE o_w_id = {w} AND o_d_id = {d} AND o_c_id = {c} \
                 ORDER BY o_id DESC LIMIT 1"
            ),
        )?;
        if let Some(Value::Int(o_id)) = r.rows.first().map(|row| row[0].clone()) {
            query(
                conn,
                &format!(
                    "SELECT ol_i_id, ol_quantity, ol_amount, ol_delivery_d FROM order_line \
                     WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o_id}"
                ),
            )?;
        }
        conn.execute("COMMIT")?;
        self.stats.committed += 1;
        Ok(())
    }

    /// TPC-C Stock-Level (read-only, the paper's read-intensive unit):
    /// examines the order lines of the last 20 orders and counts distinct
    /// items below a threshold, joining client-side so the reads remain
    /// visible to the tracking proxy.
    pub fn stock_level(&mut self, conn: &mut dyn Connection) -> Result<(), WireError> {
        let w = self.pick_warehouse();
        let d = self.rng.gen_range(1..=self.config.districts_per_warehouse);
        let threshold = self.rng.gen_range(10..=20);
        self.begin(conn, TxnKind::StockLevel, w, d, 0)?;
        let r = query(
            conn,
            &format!("SELECT d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}"),
        )?;
        let next_o = int_at(&r, 0, 0)?;
        let low = (next_o - 20).max(1);
        let r = query(
            conn,
            &format!(
                "SELECT ol_i_id FROM order_line WHERE ol_w_id = {w} AND ol_d_id = {d} \
                 AND ol_o_id BETWEEN {low} AND {next_o}"
            ),
        )?;
        let mut item_ids: Vec<i64> = r
            .rows
            .iter()
            .filter_map(|row| match row[0] {
                Value::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        item_ids.sort_unstable();
        item_ids.dedup();
        if !item_ids.is_empty() {
            let list = item_ids
                .iter()
                .map(i64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let r = query(
                conn,
                &format!(
                    "SELECT s_i_id, s_quantity FROM stock \
                     WHERE s_w_id = {w} AND s_i_id IN ({list})"
                ),
            )?;
            let _low_stock = r
                .rows
                .iter()
                .filter(|row| matches!(row[1], Value::Int(q) if q < threshold))
                .count();
        }
        conn.execute("COMMIT")?;
        self.stats.committed += 1;
        Ok(())
    }
}

fn query(conn: &mut dyn Connection, sql: &str) -> Result<resildb_engine::QueryResult, WireError> {
    match conn.execute(sql)? {
        Response::Rows(r) => Ok(r),
        other => Err(WireError::Protocol(format!(
            "expected rows from {sql}, got {other:?}"
        ))),
    }
}

fn int_at(r: &resildb_engine::QueryResult, row: usize, col: usize) -> Result<i64, WireError> {
    match r.rows.get(row).and_then(|rw| rw.get(col)) {
        Some(Value::Int(v)) => Ok(*v),
        other => Err(WireError::Protocol(format!(
            "expected integer at ({row},{col}), got {other:?}"
        ))),
    }
}

fn float_at(r: &resildb_engine::QueryResult, row: usize, col: usize) -> Result<f64, WireError> {
    match r.rows.get(row).and_then(|rw| rw.get(col)) {
        Some(Value::Float(v)) => Ok(*v),
        Some(Value::Int(v)) => Ok(*v as f64),
        other => Err(WireError::Protocol(format!(
            "expected float at ({row},{col}), got {other:?}"
        ))),
    }
}
