//! TPC-C workload for the resildb evaluation (paper §5).
//!
//! The paper benchmarks its intrusion-resilience mechanism with TPC-C: a
//! wholesale supplier with `W` warehouses, each containing districts,
//! customers, stock and orders, exercised by five transaction types
//! (order placement, payment, delivery, order-status, stock-level).
//!
//! This crate provides the schema, a deterministic loader (paper Table 2's
//! parameters available as [`TpccConfig::paper`], scaled-down presets for
//! simulation speed), the five transactions implemented over the
//! [`resildb_wire::Connection`] abstraction (so they run identically with
//! and without the tracking proxy), the workload mixes of §5.2 and the
//! attack scenarios of §5.3.
//!
//! # Examples
//!
//! ```
//! use resildb_engine::{Database, Flavor};
//! use resildb_tpcc::{Loader, TpccConfig, TpccRunner};
//! use resildb_wire::{Driver, LinkProfile, NativeDriver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = Database::in_memory(Flavor::Postgres);
//! let driver = NativeDriver::new(db.clone(), LinkProfile::local());
//! let config = TpccConfig::tiny();
//! Loader::new(config.clone(), 42).load(&mut *driver.connect()?)?;
//! assert_eq!(db.row_count("warehouse")?, 1);
//!
//! // Without the tracking proxy, disable ANNOTATE pseudo-statements.
//! let mut runner = TpccRunner::new(config, 7).without_annotations();
//! runner.new_order(&mut *driver.connect()?)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod attack;
mod config;
mod corpus;
mod loader;
mod mix;
mod schema;
mod txn;

pub use attack::{Attack, AttackKind, ATTACK_LABEL};
pub use config::TpccConfig;
pub use corpus::{
    ddl_statements, profiled_corpus, record_corpus, record_profiled_corpus, statement_corpus,
};
pub use loader::Loader;
pub use mix::{Mix, MixKind};
pub use schema::{create_tables, TPCC_TABLES};
pub use txn::{TpccRunner, TxnKind, TxnStats};
