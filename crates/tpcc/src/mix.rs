//! The §5.2 workload mixes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resildb_wire::{Connection, WireError};

use crate::txn::{TpccRunner, TxnKind};

/// A named transaction mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// The paper's read-intensive workload: 100 Stock-Level transactions.
    ReadIntensive,
    /// The paper's read/write-intensive workload: 200 New-Order,
    /// 200 Payment and 100 Delivery transactions.
    ReadWrite,
    /// The standard weighted TPC-C mix (≈45 % New-Order, 43 % Payment,
    /// 4 % each of the rest), used for the §5.3 accuracy experiments.
    Standard,
}

/// A concrete sequence of transactions to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    kinds: Vec<TxnKind>,
}

impl Mix {
    /// Builds the paper's read-intensive mix, scaled to `n` transactions
    /// (the paper uses `n = 100`).
    pub fn read_intensive(n: usize) -> Self {
        Self {
            kinds: vec![TxnKind::StockLevel; n],
        }
    }

    /// Builds the paper's read/write mix scaled by `scale`: per unit,
    /// 2 New-Order, 2 Payment, 1 Delivery (the paper's 200/200/100 is
    /// `scale = 100`), interleaved deterministically.
    pub fn read_write(scale: usize) -> Self {
        let mut kinds = Vec::with_capacity(scale * 5);
        for _ in 0..scale {
            kinds.push(TxnKind::NewOrder);
            kinds.push(TxnKind::Payment);
            kinds.push(TxnKind::NewOrder);
            kinds.push(TxnKind::Payment);
            kinds.push(TxnKind::Delivery);
        }
        Self { kinds }
    }

    /// Builds `n` transactions drawn from the standard TPC-C weights with
    /// a deterministic seed.
    pub fn standard(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let kinds = (0..n)
            .map(|_| match rng.gen_range(0..100) {
                0..=44 => TxnKind::NewOrder,
                45..=87 => TxnKind::Payment,
                88..=91 => TxnKind::Delivery,
                92..=95 => TxnKind::OrderStatus,
                _ => TxnKind::StockLevel,
            })
            .collect();
        Self { kinds }
    }

    /// Builds the mix for a [`MixKind`] at the paper's sizes.
    pub fn of(kind: MixKind, seed: u64) -> Self {
        match kind {
            MixKind::ReadIntensive => Self::read_intensive(100),
            MixKind::ReadWrite => Self::read_write(100),
            MixKind::Standard => Self::standard(500, seed),
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The transaction kinds, in execution order.
    pub fn kinds(&self) -> &[TxnKind] {
        &self.kinds
    }

    /// Runs the whole mix on `conn`, returning the number of committed
    /// transactions.
    ///
    /// # Errors
    ///
    /// Non-retryable SQL failures.
    pub fn run(
        &self,
        runner: &mut TpccRunner,
        conn: &mut dyn Connection,
    ) -> Result<u64, WireError> {
        let before = runner.stats.committed;
        for &kind in &self.kinds {
            runner.run(conn, kind)?;
        }
        Ok(runner.stats.committed - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mixes_have_paper_sizes() {
        assert_eq!(Mix::of(MixKind::ReadIntensive, 0).len(), 100);
        let rw = Mix::of(MixKind::ReadWrite, 0);
        assert_eq!(rw.len(), 500);
        let orders = rw
            .kinds()
            .iter()
            .filter(|k| **k == TxnKind::NewOrder)
            .count();
        let pays = rw
            .kinds()
            .iter()
            .filter(|k| **k == TxnKind::Payment)
            .count();
        let delivs = rw
            .kinds()
            .iter()
            .filter(|k| **k == TxnKind::Delivery)
            .count();
        assert_eq!((orders, pays, delivs), (200, 200, 100));
    }

    #[test]
    fn standard_mix_is_deterministic_and_weighted() {
        let a = Mix::standard(1000, 7);
        let b = Mix::standard(1000, 7);
        assert_eq!(a, b);
        let orders = a
            .kinds()
            .iter()
            .filter(|k| **k == TxnKind::NewOrder)
            .count();
        assert!((300..600).contains(&orders), "NewOrder count {orders}");
    }
}
