//! Database sizing parameters (paper Table 2).

/// TPC-C population parameters.
///
/// [`TpccConfig::paper`] reproduces Table 2 of the paper exactly; the
/// scaled presets keep the same *structure* at sizes the simulated engine
/// loads in milliseconds, which is what the benchmark harness uses (the
/// harness prints the preset used next to each result).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpccConfig {
    /// Number of warehouses (the TPC-C scale factor `W`).
    pub warehouses: u32,
    /// Districts per warehouse.
    pub districts_per_warehouse: u32,
    /// Customers ("clients") per district.
    pub customers_per_district: u32,
    /// Items in the catalogue (stocked by every warehouse).
    pub items: u32,
    /// Initially loaded orders per district.
    pub orders_per_district: u32,
    /// Maximum order lines per order (TPC-C draws 5–15; the loader and
    /// New-Order draw `1..=max_order_lines`).
    pub max_order_lines: u32,
}

impl TpccConfig {
    /// The paper's Table 2 parameters: 10 warehouses, 30 districts per
    /// warehouse, 5000 clients per district, 100 000 items, 5000 orders
    /// per district.
    pub fn paper() -> Self {
        Self {
            warehouses: 10,
            districts_per_warehouse: 30,
            customers_per_district: 5000,
            items: 100_000,
            orders_per_district: 5000,
            max_order_lines: 15,
        }
    }

    /// A scaled-down configuration with `warehouses` warehouses keeping
    /// the paper's structure: several districts, enough customers and
    /// orders for dependency chains to form, a few hundred items.
    pub fn scaled(warehouses: u32) -> Self {
        Self {
            warehouses,
            districts_per_warehouse: 3,
            customers_per_district: 50,
            items: 500,
            orders_per_district: 30,
            max_order_lines: 5,
        }
    }

    /// The smallest useful configuration (unit tests).
    pub fn tiny() -> Self {
        Self {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 5,
            items: 20,
            orders_per_district: 3,
            max_order_lines: 3,
        }
    }

    /// Total customers in the database.
    pub fn total_customers(&self) -> u64 {
        u64::from(self.warehouses)
            * u64::from(self.districts_per_warehouse)
            * u64::from(self.customers_per_district)
    }

    /// Total initially loaded orders.
    pub fn total_orders(&self) -> u64 {
        u64::from(self.warehouses)
            * u64::from(self.districts_per_warehouse)
            * u64::from(self.orders_per_district)
    }

    /// Total stock rows (items × warehouses).
    pub fn total_stock(&self) -> u64 {
        u64::from(self.warehouses) * u64::from(self.items)
    }
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self::scaled(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_table_2() {
        let c = TpccConfig::paper();
        assert_eq!(c.warehouses, 10);
        assert_eq!(c.districts_per_warehouse, 30);
        assert_eq!(c.customers_per_district, 5000);
        assert_eq!(c.items, 100_000);
        assert_eq!(c.orders_per_district, 5000);
    }

    #[test]
    fn totals_multiply_out() {
        let c = TpccConfig::paper();
        assert_eq!(c.total_customers(), 10 * 30 * 5000);
        assert_eq!(c.total_orders(), 10 * 30 * 5000);
        assert_eq!(c.total_stock(), 10 * 100_000);
    }

    #[test]
    fn scaled_keeps_structure() {
        let c = TpccConfig::scaled(4);
        assert_eq!(c.warehouses, 4);
        assert!(c.districts_per_warehouse > 1);
        assert!(c.customers_per_district > 1);
    }
}
