//! Deterministic TPC-C population.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resildb_wire::{Connection, WireError};

use crate::config::TpccConfig;
use crate::schema::create_tables;

/// TPC-C customer last-name syllables (clause 4.3.2.3).
pub(crate) const NAME_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Builds a TPC-C last name from a number (0..=999).
pub(crate) fn last_name(num: u32) -> String {
    format!(
        "{}{}{}",
        NAME_SYLLABLES[(num / 100 % 10) as usize],
        NAME_SYLLABLES[(num / 10 % 10) as usize],
        NAME_SYLLABLES[(num % 10) as usize]
    )
}

/// Populates a TPC-C database deterministically.
#[derive(Debug)]
pub struct Loader {
    config: TpccConfig,
    rng: StdRng,
    batch: usize,
}

impl Loader {
    /// Creates a loader for `config` seeded with `seed`.
    pub fn new(config: TpccConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            batch: 40,
        }
    }

    /// Creates the schema and loads every table.
    ///
    /// Run through the tracking proxy, every loaded row receives the
    /// loader transactions' `trid`s — exactly like a database created
    /// under the paper's framework from day one.
    ///
    /// # Errors
    ///
    /// SQL failures.
    pub fn load(&mut self, conn: &mut dyn Connection) -> Result<(), WireError> {
        create_tables(conn)?;
        self.load_items(conn)?;
        for w in 1..=self.config.warehouses {
            self.load_warehouse(conn, w)?;
        }
        Ok(())
    }

    fn flush(
        conn: &mut dyn Connection,
        table_cols: &str,
        rows: &mut Vec<String>,
    ) -> Result<(), WireError> {
        if rows.is_empty() {
            return Ok(());
        }
        let sql = format!("INSERT INTO {table_cols} VALUES {}", rows.join(", "));
        rows.clear();
        conn.execute(&sql)?;
        Ok(())
    }

    fn load_items(&mut self, conn: &mut dyn Connection) -> Result<(), WireError> {
        let mut rows = Vec::new();
        for i in 1..=self.config.items {
            let price: f64 = self.rng.gen_range(100..=10000) as f64 / 100.0;
            rows.push(format!(
                "({i}, {}, 'item-{i}', {price:.2}, 'data-{i}')",
                self.rng.gen_range(1..=10_000)
            ));
            if rows.len() >= self.batch {
                Self::flush(
                    conn,
                    "item (i_id, i_im_id, i_name, i_price, i_data)",
                    &mut rows,
                )?;
            }
        }
        Self::flush(
            conn,
            "item (i_id, i_im_id, i_name, i_price, i_data)",
            &mut rows,
        )
    }

    fn load_warehouse(&mut self, conn: &mut dyn Connection, w: u32) -> Result<(), WireError> {
        let tax: f64 = self.rng.gen_range(0..=2000) as f64 / 10_000.0;
        conn.execute(&format!(
            "INSERT INTO warehouse (w_id, w_name, w_street_1, w_city, w_state, w_zip, w_tax, w_ytd) \
             VALUES ({w}, 'wh-{w}', 'street-{w}', 'city-{w}', 'NY', '123456789', {tax:.4}, 300000.0)"
        ))?;
        self.load_stock(conn, w)?;
        for d in 1..=self.config.districts_per_warehouse {
            self.load_district(conn, w, d)?;
        }
        Ok(())
    }

    fn load_stock(&mut self, conn: &mut dyn Connection, w: u32) -> Result<(), WireError> {
        let cols = "stock (s_i_id, s_w_id, s_quantity, s_dist_01, s_dist_02, s_dist_03, \
                    s_ytd, s_order_cnt, s_remote_cnt, s_data)";
        let mut rows = Vec::new();
        for i in 1..=self.config.items {
            let qty = self.rng.gen_range(10..=100);
            rows.push(format!(
                "({i}, {w}, {qty}, 'dist-info-{i:014}', 'dist-info-{i:014}', \
                 'dist-info-{i:014}', 0.0, 0, 0, 'sdata-{i}')"
            ));
            if rows.len() >= self.batch {
                Self::flush(conn, cols, &mut rows)?;
            }
        }
        Self::flush(conn, cols, &mut rows)
    }

    fn load_district(
        &mut self,
        conn: &mut dyn Connection,
        w: u32,
        d: u32,
    ) -> Result<(), WireError> {
        let tax: f64 = self.rng.gen_range(0..=2000) as f64 / 10_000.0;
        let next_o_id = self.config.orders_per_district + 1;
        conn.execute(&format!(
            "INSERT INTO district (d_id, d_w_id, d_name, d_street_1, d_city, d_state, d_zip, \
             d_tax, d_ytd, d_next_o_id) VALUES ({d}, {w}, 'dist-{d}', 'street-{d}', 'city-{d}', \
             'NY', '123456789', {tax:.4}, 30000.0, {next_o_id})"
        ))?;
        self.load_customers(conn, w, d)?;
        self.load_orders(conn, w, d)?;
        Ok(())
    }

    fn load_customers(
        &mut self,
        conn: &mut dyn Connection,
        w: u32,
        d: u32,
    ) -> Result<(), WireError> {
        let cols = "customer (c_id, c_d_id, c_w_id, c_first, c_last, c_street_1, c_city, \
                    c_state, c_zip, c_phone, c_credit, c_credit_lim, c_discount, c_balance, \
                    c_ytd_payment, c_payment_cnt, c_delivery_cnt, c_data)";
        let mut rows = Vec::new();
        for c in 1..=self.config.customers_per_district {
            let name = last_name(self.rng.gen_range(0..1000));
            let discount: f64 = self.rng.gen_range(0..=5000) as f64 / 10_000.0;
            let credit = if self.rng.gen_bool(0.1) { "BC" } else { "GC" };
            let data: String = "x".repeat(180);
            rows.push(format!(
                "({c}, {d}, {w}, 'first-{c}', '{name}', 'street-{c}', 'city-{c}', 'NY', \
                 '123456789', '0123456789012345', '{credit}', 50000.0, \
                 {discount:.4}, -10.0, 10.0, 1, 0, '{data}')"
            ));
            if rows.len() >= self.batch {
                Self::flush(conn, cols, &mut rows)?;
            }
        }
        Self::flush(conn, cols, &mut rows)?;
        // One history row per customer.
        let hcols =
            "history (h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, h_date, h_amount, h_data)";
        let mut rows = Vec::new();
        for c in 1..=self.config.customers_per_district {
            rows.push(format!("({c}, {d}, {w}, {d}, {w}, 0, 10.0, 'init')"));
            if rows.len() >= self.batch {
                Self::flush(conn, hcols, &mut rows)?;
            }
        }
        Self::flush(conn, hcols, &mut rows)
    }

    fn load_orders(&mut self, conn: &mut dyn Connection, w: u32, d: u32) -> Result<(), WireError> {
        let ocols =
            "orders (o_id, o_d_id, o_w_id, o_c_id, o_entry_d, o_carrier_id, o_ol_cnt, o_all_local)";
        let olcols = "order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id, ol_supply_w_id, \
                      ol_delivery_d, ol_quantity, ol_amount, ol_dist_info)";
        let nocols = "new_order (no_o_id, no_d_id, no_w_id)";
        let mut orows = Vec::new();
        let mut olrows = Vec::new();
        let mut norows = Vec::new();
        let delivered_upto = self.config.orders_per_district * 7 / 10;
        for o in 1..=self.config.orders_per_district {
            let c = self.rng.gen_range(1..=self.config.customers_per_district);
            let ol_cnt = self.rng.gen_range(1..=self.config.max_order_lines);
            let delivered = o <= delivered_upto;
            let carrier = if delivered {
                self.rng.gen_range(1..=10).to_string()
            } else {
                "NULL".to_string()
            };
            orows.push(format!("({o}, {d}, {w}, {c}, 0, {carrier}, {ol_cnt}, 1)"));
            if !delivered {
                norows.push(format!("({o}, {d}, {w})"));
            }
            for n in 1..=ol_cnt {
                let i = self.rng.gen_range(1..=self.config.items);
                let amount: f64 = if delivered {
                    0.0
                } else {
                    self.rng.gen_range(1..=999_999) as f64 / 100.0
                };
                let deliv_d = if delivered { "0" } else { "NULL" };
                olrows.push(format!(
                    "({o}, {d}, {w}, {n}, {i}, {w}, {deliv_d}, 5, {amount:.2}, 'dist-info')"
                ));
                if olrows.len() >= self.batch {
                    Self::flush(conn, olcols, &mut olrows)?;
                }
            }
            if orows.len() >= self.batch {
                Self::flush(conn, ocols, &mut orows)?;
            }
            if norows.len() >= self.batch {
                Self::flush(conn, nocols, &mut norows)?;
            }
        }
        Self::flush(conn, ocols, &mut orows)?;
        Self::flush(conn, olcols, &mut olrows)?;
        Self::flush(conn, nocols, &mut norows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_engine::{Database, Flavor};
    use resildb_wire::{Driver, LinkProfile, NativeDriver};

    #[test]
    fn last_names_follow_the_spec() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn loads_expected_cardinalities() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = NativeDriver::new(db.clone(), LinkProfile::local());
        let cfg = TpccConfig::tiny();
        Loader::new(cfg.clone(), 1)
            .load(&mut *driver.connect().unwrap())
            .unwrap();
        assert_eq!(
            db.row_count("warehouse").unwrap(),
            u64::from(cfg.warehouses)
        );
        assert_eq!(
            db.row_count("district").unwrap(),
            u64::from(cfg.warehouses * cfg.districts_per_warehouse)
        );
        assert_eq!(db.row_count("customer").unwrap(), cfg.total_customers());
        assert_eq!(db.row_count("history").unwrap(), cfg.total_customers());
        assert_eq!(db.row_count("item").unwrap(), u64::from(cfg.items));
        assert_eq!(db.row_count("stock").unwrap(), cfg.total_stock());
        assert_eq!(db.row_count("orders").unwrap(), cfg.total_orders());
        assert!(db.row_count("order_line").unwrap() >= cfg.total_orders());
        assert!(db.row_count("new_order").unwrap() > 0);
    }

    #[test]
    fn loading_is_deterministic() {
        let run = || {
            let db = Database::in_memory(Flavor::Postgres);
            let driver = NativeDriver::new(db.clone(), LinkProfile::local());
            Loader::new(TpccConfig::tiny(), 99)
                .load(&mut *driver.connect().unwrap())
                .unwrap();
            let mut s = db.session();
            s.query("SELECT s_quantity FROM stock ORDER BY s_i_id LIMIT 10")
                .unwrap()
                .rows
        };
        assert_eq!(run(), run());
    }
}
