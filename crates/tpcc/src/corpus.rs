//! A deterministic TPC-C statement corpus for the static analyzer.
//!
//! `resildb-lint` ships a built-in workload so soundness coverage can be
//! gated in CI without checked-in SQL fixtures. Rather than duplicating
//! the transaction SQL (which would drift from [`crate::TpccRunner`]), the
//! corpus is *recorded*: the five transactions run against a real
//! in-memory database behind a connection wrapper that captures every
//! statement as submitted. The schema DDL is included so the analyzer can
//! build a schema snapshot and the derivability pass can expand wildcards.

use resildb_engine::{Database, Flavor};
use resildb_sql::Literal;
use resildb_wire::{
    Connection, Driver, LinkProfile, NativeDriver, Response, StatementHandle, WireError,
};

use crate::{Loader, TpccConfig, TpccRunner, TxnKind};

/// The schema DDL, one `CREATE TABLE` per TPC-C table in creation order.
pub fn ddl_statements() -> &'static [&'static str] {
    crate::schema::ddl()
}

struct RecordingConnection {
    inner: Box<dyn Connection>,
    recorded: Vec<String>,
}

impl Connection for RecordingConnection {
    fn execute(&mut self, sql: &str) -> Result<Response, WireError> {
        self.recorded.push(sql.to_string());
        self.inner.execute(sql)
    }

    fn prepare(&mut self, sql: &str) -> Result<StatementHandle, WireError> {
        self.recorded.push(sql.to_string());
        self.inner.prepare(sql)
    }

    fn execute_prepared(
        &mut self,
        handle: StatementHandle,
        params: &[Literal],
    ) -> Result<Response, WireError> {
        self.inner.execute_prepared(handle, params)
    }
}

/// Records the statements of a deterministic TPC-C run: the nine
/// `CREATE TABLE`s followed by `rounds` rounds of all five transaction
/// types against a freshly loaded tiny database. Same seed, same corpus.
///
/// # Panics
///
/// Only if the bundled engine cannot execute its own workload, which
/// would be a bug in this crate.
#[allow(clippy::expect_used)]
pub fn record_corpus(rounds: usize, seed: u64) -> Vec<String> {
    let db = Database::in_memory(Flavor::Postgres);
    let driver = NativeDriver::new(db, LinkProfile::local());
    let config = TpccConfig::tiny();
    {
        let mut conn = driver.connect().expect("in-memory connect");
        Loader::new(config.clone(), seed)
            .load(&mut *conn)
            .expect("tpcc load");
    }
    let mut recorder = RecordingConnection {
        inner: driver.connect().expect("in-memory connect"),
        recorded: ddl_statements().iter().map(ToString::to_string).collect(),
    };
    // ANNOTATE pseudo-statements only exist behind the proxy; the recorder
    // talks to the engine directly, so they are disabled here.
    let mut runner = TpccRunner::new(config, seed).without_annotations();
    for _ in 0..rounds {
        for kind in TxnKind::ALL {
            runner
                .run(&mut recorder, kind)
                .expect("tpcc transaction on fresh tiny load");
        }
    }
    recorder.recorded
}

/// The default lint corpus: three rounds of the five transactions plus the
/// schema DDL, from a fixed seed.
pub fn statement_corpus() -> Vec<String> {
    record_corpus(3, 42)
}

/// Records the same deterministic run as [`record_corpus`], but grouped by
/// transaction class: one `(class name, statements)` group per transaction
/// executed, in execution order, named after the [`TxnKind`] that produced
/// it. The schema DDL is *not* included — pair with [`ddl_statements`]
/// when a schema snapshot is needed. This is the input shape of the
/// blast-radius analyzer, which merges same-named groups into one
/// [`resildb_analyze::TxnProfile`](../resildb_analyze) per class.
///
/// # Panics
///
/// Only if the bundled engine cannot execute its own workload, which
/// would be a bug in this crate.
#[allow(clippy::expect_used)]
pub fn record_profiled_corpus(rounds: usize, seed: u64) -> Vec<(String, Vec<String>)> {
    let db = Database::in_memory(Flavor::Postgres);
    let driver = NativeDriver::new(db, LinkProfile::local());
    let config = TpccConfig::tiny();
    {
        let mut conn = driver.connect().expect("in-memory connect");
        Loader::new(config.clone(), seed)
            .load(&mut *conn)
            .expect("tpcc load");
    }
    let mut recorder = RecordingConnection {
        inner: driver.connect().expect("in-memory connect"),
        recorded: Vec::new(),
    };
    let mut runner = TpccRunner::new(config, seed).without_annotations();
    let mut groups = Vec::new();
    for _ in 0..rounds {
        for kind in TxnKind::ALL {
            runner
                .run(&mut recorder, kind)
                .expect("tpcc transaction on fresh tiny load");
            groups.push((
                kind.class_name().to_string(),
                std::mem::take(&mut recorder.recorded),
            ));
        }
    }
    groups
}

/// The default profiled corpus: the same run as [`statement_corpus`],
/// grouped by transaction class.
pub fn profiled_corpus() -> Vec<(String, Vec<String>)> {
    record_profiled_corpus(3, 42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_nontrivial() {
        let a = statement_corpus();
        let b = statement_corpus();
        assert_eq!(a, b);
        assert!(a.len() > 50, "only {} statements", a.len());
        assert_eq!(&a[..9], ddl_statements());
        assert!(a.iter().any(|s| s.contains("w_ytd = w_ytd +")));
        assert!(a.iter().skip(9).any(|s| s.starts_with("BEGIN")));
    }

    #[test]
    fn profiled_corpus_matches_flat_corpus() {
        let grouped = profiled_corpus();
        assert_eq!(grouped.len(), 15, "3 rounds x 5 transaction classes");
        let names: Vec<&str> = grouped.iter().take(5).map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "NewOrder",
                "Payment",
                "Delivery",
                "OrderStatus",
                "StockLevel"
            ]
        );
        // Flattening the groups reproduces the flat corpus minus DDL: the
        // two recorders observe the same deterministic run.
        let flat: Vec<String> = grouped.into_iter().flat_map(|(_, stmts)| stmts).collect();
        assert_eq!(flat, statement_corpus()[9..]);
    }
}
