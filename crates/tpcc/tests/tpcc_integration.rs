//! TPC-C workloads run end-to-end, with and without the tracking proxy.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_engine::{Database, Flavor, Value};
use resildb_proxy::{prepare_database, ProxyConfig, TrackingProxy};
use resildb_tpcc::{Attack, AttackKind, Loader, Mix, MixKind, TpccConfig, TpccRunner, TxnKind};
use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver};

fn raw_db() -> (Database, Box<dyn Connection>) {
    let db = Database::in_memory(Flavor::Postgres);
    let driver = NativeDriver::new(db.clone(), LinkProfile::local());
    let conn = driver.connect().unwrap();
    (db, conn)
}

fn tracked_db(flavor: Flavor) -> (Database, Box<dyn Connection>) {
    let db = Database::in_memory(flavor);
    let native = NativeDriver::new(db.clone(), LinkProfile::local());
    prepare_database(&mut *native.connect().unwrap()).unwrap();
    let driver =
        TrackingProxy::single_proxy(db.clone(), LinkProfile::local(), ProxyConfig::new(flavor));
    let conn = driver.connect().unwrap();
    (db, conn)
}

#[test]
fn every_transaction_kind_runs_without_proxy() {
    let (_db, mut conn) = raw_db();
    let cfg = TpccConfig::tiny();
    Loader::new(cfg.clone(), 3).load(&mut *conn).unwrap();
    let mut runner = TpccRunner::new(cfg, 11).without_annotations();
    for kind in [
        TxnKind::NewOrder,
        TxnKind::Payment,
        TxnKind::Delivery,
        TxnKind::OrderStatus,
        TxnKind::StockLevel,
    ] {
        runner
            .run(&mut *conn, kind)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
    }
    assert_eq!(runner.stats.committed, 5);
}

#[test]
fn every_transaction_kind_runs_through_proxy_on_all_flavors() {
    for flavor in Flavor::ALL {
        let (db, mut conn) = tracked_db(flavor);
        let cfg = TpccConfig::tiny();
        Loader::new(cfg.clone(), 3).load(&mut *conn).unwrap();
        let mut runner = TpccRunner::new(cfg, 11);
        for kind in [
            TxnKind::NewOrder,
            TxnKind::Payment,
            TxnKind::Delivery,
            TxnKind::OrderStatus,
            TxnKind::StockLevel,
        ] {
            runner
                .run(&mut *conn, kind)
                .unwrap_or_else(|e| panic!("{flavor}/{kind:?}: {e}"));
        }
        // Every committed transaction left a dependency record.
        assert!(db.row_count("trans_dep").unwrap() > 0, "{flavor}");
        // Labels follow the paper's Figure 3 convention.
        let mut s = db.session();
        let r = s
            .query("SELECT descr FROM annot WHERE descr LIKE 'Order_%' LIMIT 1")
            .unwrap();
        assert!(!r.rows.is_empty(), "{flavor}: no Order_* annotation");
    }
}

#[test]
fn new_order_advances_district_counter_and_creates_rows() {
    let (db, mut conn) = raw_db();
    let cfg = TpccConfig::tiny();
    Loader::new(cfg.clone(), 3).load(&mut *conn).unwrap();
    let orders_before = db.row_count("orders").unwrap();
    let lines_before = db.row_count("order_line").unwrap();
    let mut runner = TpccRunner::new(cfg, 5).without_annotations();
    runner.new_order(&mut *conn).unwrap();
    assert_eq!(db.row_count("orders").unwrap(), orders_before + 1);
    assert!(db.row_count("order_line").unwrap() > lines_before);
}

#[test]
fn payment_moves_money() {
    let (db, mut conn) = raw_db();
    let cfg = TpccConfig::tiny();
    Loader::new(cfg.clone(), 3).load(&mut *conn).unwrap();
    let mut s = db.session();
    let before = match s
        .query("SELECT w_ytd FROM warehouse WHERE w_id = 1")
        .unwrap()
        .rows[0][0]
    {
        Value::Float(v) => v,
        ref other => panic!("{other:?}"),
    };
    let mut runner = TpccRunner::new(cfg, 5).without_annotations();
    runner.payment(&mut *conn).unwrap();
    let after = match s
        .query("SELECT w_ytd FROM warehouse WHERE w_id = 1")
        .unwrap()
        .rows[0][0]
    {
        Value::Float(v) => v,
        ref other => panic!("{other:?}"),
    };
    assert!(after > before, "w_ytd must grow: {before} -> {after}");
    assert_eq!(
        db.row_count("history").unwrap(),
        TpccConfig::tiny().total_customers() + 1
    );
}

#[test]
fn delivery_consumes_new_order_rows() {
    let (db, mut conn) = raw_db();
    let cfg = TpccConfig::tiny();
    Loader::new(cfg.clone(), 3).load(&mut *conn).unwrap();
    let before = db.row_count("new_order").unwrap();
    assert!(before > 0);
    let mut runner = TpccRunner::new(cfg, 5).without_annotations();
    runner.delivery(&mut *conn).unwrap();
    assert!(db.row_count("new_order").unwrap() < before);
}

#[test]
fn mixes_run_to_completion() {
    let (_db, mut conn) = raw_db();
    let cfg = TpccConfig::tiny();
    Loader::new(cfg.clone(), 3).load(&mut *conn).unwrap();
    let mut runner = TpccRunner::new(cfg, 5).without_annotations();
    let committed = Mix::read_intensive(10)
        .run(&mut runner, &mut *conn)
        .unwrap();
    assert_eq!(committed, 10);
    let committed = Mix::read_write(4).run(&mut runner, &mut *conn).unwrap();
    assert_eq!(committed, 20);
    let committed = Mix::of(MixKind::Standard, 1).run(&mut runner, &mut *conn);
    assert!(committed.is_ok());
}

#[test]
fn attack_then_repair_preserves_independent_work() {
    let (db, mut conn) = tracked_db(Flavor::Postgres);
    let cfg = TpccConfig::tiny();
    Loader::new(cfg.clone(), 3).load(&mut *conn).unwrap();

    // Pre-attack state of the victim.
    let mut s = db.session();
    let victim_before = s
        .query("SELECT c_balance FROM customer WHERE c_w_id = 1 AND c_d_id = 1 AND c_id = 1")
        .unwrap()
        .rows[0][0]
        .clone();

    Attack {
        kind: AttackKind::BalanceCorruption,
        w_id: 1,
        d_id: 1,
        target_id: 1,
    }
    .execute(&mut *conn)
    .unwrap();

    // Post-attack legitimate activity.
    let mut runner = TpccRunner::new(cfg, 5);
    Mix::standard(30, 9).run(&mut runner, &mut *conn).unwrap();

    // Locate the attack transaction and repair.
    let attack_id = match s
        .query(&format!(
            "SELECT tr_id FROM annot WHERE descr = '{}'",
            resildb_tpcc::ATTACK_LABEL
        ))
        .unwrap()
        .rows
        .first()
        .map(|r| r[0].clone())
    {
        Some(Value::Int(v)) => v,
        other => panic!("attack not found: {other:?}"),
    };
    let tool = resildb_repair::RepairController::new(db.clone());
    let report = tool.repair(&[attack_id]).unwrap();
    assert!(report.undo_set.contains(&attack_id));
    assert!(
        report.saved > 0,
        "some transactions must survive: {report:?}"
    );

    let victim_after = s
        .query("SELECT c_balance FROM customer WHERE c_w_id = 1 AND c_d_id = 1 AND c_id = 1")
        .unwrap()
        .rows[0][0]
        .clone();
    // The corruption itself is gone (the balance is no longer 999999).
    assert_ne!(victim_after, Value::Float(999_999.0));
    // If no surviving transaction touched the victim again, the balance is
    // exactly restored; otherwise it differs by legitimate activity only.
    let _ = victim_before;
}
