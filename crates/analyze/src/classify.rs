//! The visitor-based trackability classifier.
//!
//! [`Analyzer::classify`] answers, for one statement, the question the
//! paper leaves implicit: *will the rewriting proxy capture every
//! dependency this statement induces?* The rules mirror the rewriter's
//! behaviour exactly — every branch where `rewrite_*` backs off or loses
//! precision corresponds to one [`Reason`] here, turning a scattered set
//! of "not rewritten" special cases into an audited soundness contract.

use std::collections::BTreeMap;

use resildb_sql::{Expr, Select, SelectItem, Statement};

use crate::columns::is_tracking_column;
use crate::verdict::{Granularity, Reason, Verdict};

/// A point-in-time snapshot of table schemas (lower-cased names), used to
/// expand wildcards and resolve unqualified column references during
/// derivability inference. The analyzer works without one, at the price of
/// conservative attribution.
#[derive(Debug, Clone, Default)]
pub struct SchemaSnapshot {
    tables: BTreeMap<String, Vec<String>>,
}

impl SchemaSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table and its columns.
    pub fn add_table<N, C, I>(&mut self, name: N, columns: I)
    where
        N: AsRef<str>,
        C: AsRef<str>,
        I: IntoIterator<Item = C>,
    {
        self.tables.insert(
            name.as_ref().to_ascii_lowercase(),
            columns
                .into_iter()
                .map(|c| c.as_ref().to_ascii_lowercase())
                .collect(),
        );
    }

    /// Builds a snapshot from the `CREATE TABLE` statements in `stmts`
    /// (other statements are ignored).
    pub fn from_statements<'a>(stmts: impl IntoIterator<Item = &'a Statement>) -> Self {
        let mut snap = Self::new();
        for stmt in stmts {
            if let Statement::CreateTable(ct) = stmt {
                snap.add_table(&ct.name, ct.columns.iter().map(|c| c.name.as_str()));
            }
        }
        snap
    }

    /// The columns of `table`, if known.
    pub fn columns(&self, table: &str) -> Option<&[String]> {
        self.tables
            .get(&table.to_ascii_lowercase())
            .map(Vec::as_slice)
    }

    /// Whether `table.column` exists in the snapshot.
    pub fn has_column(&self, table: &str, column: &str) -> bool {
        self.columns(table)
            .is_some_and(|cols| cols.iter().any(|c| c.eq_ignore_ascii_case(column)))
    }

    /// Number of known tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// The static trackability analyzer.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    granularity: Granularity,
    schema: Option<SchemaSnapshot>,
}

impl Analyzer {
    /// An analyzer for a deployment tracking at `granularity`.
    pub fn new(granularity: Granularity) -> Self {
        Self {
            granularity,
            schema: None,
        }
    }

    /// Attaches a schema snapshot (enables wildcard expansion and precise
    /// unqualified-column attribution in derivability inference).
    pub fn with_schema(mut self, schema: SchemaSnapshot) -> Self {
        self.schema = Some(schema);
        self
    }

    /// The attached schema snapshot, if any.
    pub fn schema(&self) -> Option<&SchemaSnapshot> {
        self.schema.as_ref()
    }

    /// The deployment granularity this analyzer assumes.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Classifies one parsed statement.
    pub fn classify(&self, stmt: &Statement) -> Verdict {
        classify_statement(stmt, self.granularity)
    }

    /// Classifies one SQL string. Unparsable statements are
    /// [`Verdict::Untracked`] with [`Reason::ParseError`]; the proxy's
    /// `ANNOTATE` pseudo-command is accepted as sound.
    pub fn classify_sql(&self, sql: &str) -> Verdict {
        let trimmed = sql.trim();
        if trimmed
            .get(..9)
            .is_some_and(|p| p.eq_ignore_ascii_case("ANNOTATE "))
        {
            return Verdict::Sound;
        }
        match resildb_sql::parse_statement(sql) {
            Ok(stmt) => self.classify(&stmt),
            Err(_) => Verdict::Untracked(vec![Reason::ParseError]),
        }
    }
}

/// Whether the rewriter refuses this SELECT shape (aggregate / `GROUP BY`).
/// Mirrors the aggregate test in the proxy's `rewrite_select` exactly.
pub fn select_has_aggregate(sel: &Select) -> bool {
    !sel.group_by.is_empty()
        || sel.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
}

/// Columns of `binding` referenced anywhere in the statement (projection,
/// WHERE, ORDER BY). Unqualified references are attributed to every
/// binding, which errs toward keeping dependencies (false-positive-safe).
/// This is the provenance rule the proxy's rewriter uses; it lives here so
/// the static analyzer and the dynamic rewriter cannot drift apart.
pub fn columns_read_for(sel: &Select, binding: &str) -> Vec<String> {
    let mut cols: Vec<String> = Vec::new();
    let mut push = |c: &resildb_sql::ColumnRef| {
        let attribute = match &c.table {
            Some(t) => t.eq_ignore_ascii_case(binding),
            None => true,
        };
        if attribute {
            let name = c.column.to_ascii_lowercase();
            if !is_tracking_column(&name) && !cols.contains(&name) {
                cols.push(name);
            }
        }
    };
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            for c in expr.referenced_columns() {
                push(&c);
            }
        }
    }
    if let Some(w) = &sel.where_clause {
        for c in w.referenced_columns() {
            push(&c);
        }
    }
    for ob in &sel.order_by {
        for c in ob.expr.referenced_columns() {
            push(&c);
        }
    }
    cols
}

fn expr_reads_tracking_column(e: &Expr) -> bool {
    e.referenced_columns()
        .iter()
        .any(|c| is_tracking_column(&c.column))
}

fn classify_select(sel: &Select, granularity: Granularity) -> Vec<Reason> {
    let mut reasons = Vec::new();
    if sel.from.is_empty() {
        // `SELECT 1`: reads no table, induces no dependency.
        return reasons;
    }
    if select_has_aggregate(sel) {
        reasons.push(Reason::AggregateRead);
    }
    if sel.distinct {
        reasons.push(Reason::DistinctRead);
    }
    let mut has_wildcard = false;
    let mut reads_tracking = false;
    for item in &sel.items {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => has_wildcard = true,
            SelectItem::Expr { expr, .. } => {
                reads_tracking |= expr_reads_tracking_column(expr);
            }
        }
    }
    if let Some(w) = &sel.where_clause {
        reads_tracking |= expr_reads_tracking_column(w);
    }
    for e in sel
        .group_by
        .iter()
        .chain(sel.order_by.iter().map(|o| &o.expr))
    {
        reads_tracking |= expr_reads_tracking_column(e);
    }
    if reads_tracking {
        reasons.push(Reason::ReadsTrackingColumn);
    }
    if has_wildcard {
        reasons.push(Reason::WildcardProvenance);
    }
    if granularity == Granularity::Column {
        // Mirror the rewriter's fallback: a binding with no resolvable
        // read columns harvests the row stamp instead of column stamps.
        let falls_back = sel
            .from
            .iter()
            .any(|t| columns_read_for(sel, t.binding_name()).is_empty());
        if falls_back {
            reasons.push(Reason::ColumnFallback);
        }
    }
    reasons
}

/// Classifies one parsed statement for a deployment tracking at
/// `granularity`. This is the hot-path entry the proxy consults at rewrite
/// time; it allocates only when a statement is not sound.
pub fn classify_statement(stmt: &Statement, granularity: Granularity) -> Verdict {
    let reasons = match stmt {
        Statement::Select(sel) => classify_select(sel, granularity),
        Statement::Insert(ins) => {
            let mut reasons = Vec::new();
            if ins.columns.iter().any(|c| is_tracking_column(c)) {
                reasons.push(Reason::WritesTrackingColumn);
            }
            if ins.columns.is_empty() && granularity == Granularity::Column {
                reasons.push(Reason::PositionalColumnStamps);
            }
            if ins.rows.iter().flatten().any(expr_reads_tracking_column) {
                reasons.push(Reason::ReadsTrackingColumn);
            }
            reasons
        }
        Statement::Update(upd) => {
            let mut reasons = Vec::new();
            if upd
                .assignments
                .iter()
                .any(|a| is_tracking_column(&a.column))
            {
                reasons.push(Reason::WritesTrackingColumn);
            }
            let reads_tracking = upd
                .assignments
                .iter()
                .map(|a| &a.value)
                .chain(upd.where_clause.iter())
                .any(expr_reads_tracking_column);
            if reads_tracking {
                reasons.push(Reason::ReadsTrackingColumn);
            }
            reasons
        }
        Statement::Delete(del) => {
            if del.where_clause.iter().any(expr_reads_tracking_column) {
                vec![Reason::ReadsTrackingColumn]
            } else {
                Vec::new()
            }
        }
        Statement::CreateTable(ct) => {
            if ct.columns.iter().any(|c| is_tracking_column(&c.name)) {
                vec![Reason::ShadowsTrackingColumn]
            } else {
                Vec::new()
            }
        }
        Statement::DropTable(_) => vec![Reason::DropsTrackedHistory],
        Statement::Begin | Statement::Commit | Statement::Rollback => Vec::new(),
    };
    Verdict::from_reasons(reasons)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(sql: &str) -> Verdict {
        Analyzer::new(Granularity::Row).classify_sql(sql)
    }

    fn classify_col(sql: &str) -> Verdict {
        Analyzer::new(Granularity::Column).classify_sql(sql)
    }

    #[test]
    fn plain_dml_is_sound() {
        for sql in [
            "SELECT w_tax FROM warehouse WHERE w_id = 3",
            "SELECT c.c_balance, o.o_id FROM customer c, orders o WHERE c.c_id = o.o_c_id",
            "INSERT INTO t (a, b) VALUES (1, 'x')",
            "UPDATE t SET a = a + 1 WHERE b = 2",
            "DELETE FROM t WHERE a = 1",
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b FLOAT)",
            "BEGIN",
            "COMMIT",
            "ROLLBACK",
            "SELECT 1",
        ] {
            assert_eq!(classify(sql), Verdict::Sound, "{sql}");
        }
    }

    #[test]
    fn aggregate_and_distinct_are_untracked() {
        let v = classify("SELECT SUM(a) FROM t");
        assert_eq!(v.reasons(), &[Reason::AggregateRead]);
        assert!(v.is_untracked());
        let v = classify("SELECT a FROM t GROUP BY a");
        assert_eq!(v.reasons(), &[Reason::AggregateRead]);
        let v = classify("SELECT DISTINCT a FROM t");
        assert_eq!(v.reasons(), &[Reason::DistinctRead]);
        // Both at once: both reasons reported.
        let v = classify("SELECT DISTINCT COUNT(*) FROM t");
        assert_eq!(v.reasons(), &[Reason::AggregateRead, Reason::DistinctRead]);
    }

    #[test]
    fn tracking_column_writes_are_untracked() {
        assert!(classify("UPDATE t SET trid = 7").is_untracked());
        assert!(classify("INSERT INTO t (a, trid) VALUES (1, 7)").is_untracked());
        assert!(classify("CREATE TABLE t (a INTEGER, trid INTEGER)").is_untracked());
        assert!(classify_col("UPDATE t SET trid__a = 7").is_untracked());
        assert!(classify("INSERT INTO t (a, rid) VALUES (1, 7)").is_untracked());
    }

    #[test]
    fn tracking_column_reads_are_degraded() {
        for sql in [
            "SELECT trid FROM t",
            "SELECT a FROM t WHERE trid = 5",
            "SELECT a FROM t ORDER BY trid",
            "UPDATE t SET a = trid",
            "UPDATE t SET a = 1 WHERE trid = 5",
            "DELETE FROM t WHERE trid = 5",
            "INSERT INTO t (a) VALUES (trid)",
        ] {
            let v = classify(sql);
            assert!(
                v.reasons().contains(&Reason::ReadsTrackingColumn) && !v.is_untracked(),
                "{sql}: {v}"
            );
        }
    }

    #[test]
    fn wildcards_degrade_provenance() {
        let v = classify("SELECT * FROM t WHERE a = 1");
        assert_eq!(v.reasons(), &[Reason::WildcardProvenance]);
        let v = classify("SELECT t.* FROM t");
        assert_eq!(v.reasons(), &[Reason::WildcardProvenance]);
    }

    #[test]
    fn column_granularity_fallback_detected() {
        // `SELECT * FROM t` reads no resolvable columns: row-stamp fallback.
        let v = classify_col("SELECT * FROM t");
        assert!(v.reasons().contains(&Reason::ColumnFallback), "{v}");
        // A select with explicit columns does not fall back.
        assert_eq!(classify_col("SELECT a FROM t WHERE b = 1"), Verdict::Sound);
    }

    #[test]
    fn positional_insert_degrades_only_at_column_granularity() {
        assert_eq!(classify("INSERT INTO t VALUES (1, 2)"), Verdict::Sound);
        let v = classify_col("INSERT INTO t VALUES (1, 2)");
        assert_eq!(v.reasons(), &[Reason::PositionalColumnStamps]);
    }

    #[test]
    fn drop_table_and_parse_errors() {
        let v = classify("DROP TABLE t");
        assert_eq!(v.reasons(), &[Reason::DropsTrackedHistory]);
        assert!(!v.is_untracked());
        let v = classify("SELECT a FROM (SELECT b FROM t)");
        assert_eq!(v.reasons(), &[Reason::ParseError]);
        assert!(v.is_untracked());
    }

    #[test]
    fn annotate_pseudo_command_is_sound() {
        assert_eq!(classify("ANNOTATE Payment_1_2_3_4"), Verdict::Sound);
    }

    #[test]
    fn schema_snapshot_from_statements() {
        let stmts = [
            resildb_sql::parse_statement("CREATE TABLE t (A INTEGER, b FLOAT)").unwrap(),
            resildb_sql::parse_statement("SELECT 1").unwrap(),
        ];
        let snap = SchemaSnapshot::from_statements(&stmts);
        assert_eq!(snap.len(), 1);
        assert!(snap.has_column("T", "a"));
        assert!(snap.has_column("t", "B"));
        assert!(!snap.has_column("t", "c"));
        assert!(snap.columns("missing").is_none());
    }
}
