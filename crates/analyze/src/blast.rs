//! Blast-radius certification: per-profile worst-case damage closures,
//! their reports, and the CI baseline gate.
//!
//! This is the operator-facing product of the conflict graph: for every
//! transaction profile of a workload, the set of profiles a compromise
//! of it can transitively damage and the table/column surface that
//! damage can reach — computed *before* any intrusion, which is exactly
//! the fencing set ROADMAP's online-containment item needs. The report
//! is gated in CI against a checked-in JSON baseline: any growth of a
//! closure or its surface fails the build until a human reviews it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use resildb_sql::{parse_statement, ColumnSet};

use crate::conflict::ConflictGraph;
use crate::jsonish::{parse_json, JsonValue};
use crate::profile::profiles_from_groups;
use crate::report::escape_json;
use crate::{infer_derivable_columns, SchemaSnapshot};

/// The blast radius of one profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileClosure {
    /// Profiles reachable with false-dependency rules applied (always
    /// includes the profile itself).
    pub profiles: BTreeSet<String>,
    /// `table.column` / `table.*` surface those profiles can write.
    pub surface: BTreeSet<String>,
    /// Closure size without rules, for the report's context line.
    pub unpruned: usize,
}

/// The full blast-radius analysis of one workload.
#[derive(Debug, Clone)]
pub struct BlastRadius {
    /// The conflict graph the closures were computed over.
    pub graph: ConflictGraph,
    /// Per-profile closure, name-ordered.
    pub closures: BTreeMap<String, ProfileClosure>,
}

impl BlastRadius {
    /// Computes the blast radius of a workload given its transaction
    /// groups (`name → statements`) and the full statement corpus
    /// (groups *plus* DDL and ambient statements) that schema
    /// reconstruction and derivable-column inference run over.
    pub fn compute<S: AsRef<str>>(groups: &[(String, Vec<S>)], corpus: &[String]) -> BlastRadius {
        let stmts: Vec<_> = corpus
            .iter()
            .filter_map(|sql| parse_statement(sql).ok())
            .collect();
        let schema = SchemaSnapshot::from_statements(&stmts);
        let derivable = infer_derivable_columns(&stmts, Some(&schema));
        let graph = ConflictGraph::build(profiles_from_groups(groups), &derivable);
        let mut closures = BTreeMap::new();
        for p in graph.profiles() {
            let seed = [p.name.as_str()];
            let with_rules = graph.closure(&seed, true);
            let unpruned = graph.closure(&seed, false).len();
            let surface = graph.damage_surface(&with_rules);
            closures.insert(
                p.name.clone(),
                ProfileClosure {
                    profiles: with_rules,
                    surface,
                    unpruned,
                },
            );
        }
        BlastRadius { graph, closures }
    }

    /// Human-readable report; `verbose` adds per-profile footprints and
    /// the edge list.
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        let edge_count = self.graph.edges().count();
        let _ = writeln!(
            out,
            "blast radius: {} profiles, {} conflict edges ({} pruned by derivable-column rules)",
            self.graph.profiles().len(),
            edge_count,
            self.graph.pruned_edge_count(),
        );
        let derivable: Vec<String> = self
            .graph
            .derivable()
            .iter()
            .flat_map(|(t, cols)| cols.iter().map(move |c| format!("{t}.{c}")))
            .collect();
        let _ = writeln!(
            out,
            "derivable columns: {}",
            if derivable.is_empty() {
                "(none)".to_string()
            } else {
                derivable.join(", ")
            }
        );
        for (name, c) in &self.closures {
            let _ = writeln!(out, "\nprofile {name}");
            let others: Vec<&str> = c
                .profiles
                .iter()
                .filter(|p| *p != name)
                .map(String::as_str)
                .collect();
            let _ = writeln!(
                out,
                "  closure: {} profile(s){} [{} without rules]",
                c.profiles.len(),
                if others.is_empty() {
                    " (itself only)".to_string()
                } else {
                    format!(" — reaches {}", others.join(", "))
                },
                c.unpruned,
            );
            let _ = writeln!(
                out,
                "  damaged surface: {}",
                if c.surface.is_empty() {
                    "(nothing — read-only profile)".to_string()
                } else {
                    c.surface.iter().cloned().collect::<Vec<_>>().join(", ")
                }
            );
            if verbose {
                if let Some(p) = self.graph.profile(name) {
                    for (table, cols) in &p.reads {
                        let _ = writeln!(out, "    reads {table}: {}", render_colset_text(cols));
                    }
                    for (table, fp) in &p.writes {
                        let mut shapes = Vec::new();
                        if let Some(u) = &fp.updated {
                            shapes.push(format!("updates {}", render_colset_text(u)));
                        }
                        if fp.inserts {
                            shapes.push("inserts".into());
                        }
                        if fp.deletes {
                            shapes.push("deletes".into());
                        }
                        let _ = writeln!(out, "    writes {table}: {}", shapes.join(", "));
                    }
                }
            }
        }
        if verbose {
            let _ = writeln!(out, "\nedges (dependent <- dependee [tables]):");
            for e in self.graph.edges() {
                let _ = writeln!(
                    out,
                    "  {} <- {} [{}]{}",
                    e.dependent,
                    e.dependee,
                    e.tables().join(","),
                    if e.pruned { " (pruned)" } else { "" }
                );
            }
        }
        out
    }

    /// Machine-readable JSON report. Key-ordered and newline-terminated;
    /// `resildb-lint blast-radius --json > ci/blast-radius-baseline.json`
    /// is how the CI baseline is (re)generated.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"profiles\": [\n");
        let profiles = self.graph.profiles();
        for (i, p) in profiles.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"statements\": {}, \"parse_failures\": {}, \"reads\": {}, \"writes\": {}}}",
                escape_json(&p.name),
                p.statements,
                p.parse_failures,
                render_reads_json(&p.reads),
                render_writes_json(&p.writes),
            );
            out.push_str(if i + 1 < profiles.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"derivable\": {");
        let derivable: Vec<String> = self
            .graph
            .derivable()
            .iter()
            .map(|(t, cols)| format!("\"{}\": {}", escape_json(t), render_str_set(cols)))
            .collect();
        out.push_str(&derivable.join(", "));
        out.push_str("},\n  \"edges\": [\n");
        let edges: Vec<String> = self
            .graph
            .edges()
            .map(|e| {
                format!(
                    "    {{\"dependent\": \"{}\", \"dependee\": \"{}\", \"tables\": [{}], \"pruned\": {}}}",
                    escape_json(&e.dependent),
                    escape_json(&e.dependee),
                    e.tables()
                        .iter()
                        .map(|t| format!("\"{}\"", escape_json(t)))
                        .collect::<Vec<_>>()
                        .join(", "),
                    e.pruned,
                )
            })
            .collect();
        out.push_str(&edges.join(",\n"));
        out.push_str("\n  ],\n  \"closures\": {\n");
        let closures: Vec<String> = self
            .closures
            .iter()
            .map(|(name, c)| {
                format!(
                    "    \"{}\": {{\"profiles\": {}, \"surface\": {}, \"unpruned\": {}}}",
                    escape_json(name),
                    render_str_set(&c.profiles),
                    render_str_set(&c.surface),
                    c.unpruned,
                )
            })
            .collect();
        out.push_str(&closures.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }

    /// Gates the computed closures against a baseline document (either a
    /// full `render_json` report or a bare `closures` object).
    ///
    /// Returns `Err` when the baseline does not parse — the caller must
    /// fail loudly, never skip the gate. On success, `errors` lists
    /// closure/surface *growth* (fails CI until reviewed) and `warnings`
    /// lists staleness (baseline entries that shrank or disappeared,
    /// a prompt to regenerate).
    pub fn check_baseline(&self, baseline: &str) -> Result<BaselineVerdict, String> {
        let doc = parse_json(baseline).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let closures = doc
            .get("closures")
            .unwrap_or(&doc)
            .as_object()
            .ok_or_else(|| "baseline: expected a `closures` object".to_string())?;

        let mut errors = Vec::new();
        let mut warnings = Vec::new();
        for (name, c) in &self.closures {
            let Some(entry) = closures.get(name) else {
                errors.push(format!(
                    "profile {name} is not in the baseline (new profile — review its closure)"
                ));
                continue;
            };
            for (field, computed) in [("profiles", &c.profiles), ("surface", &c.surface)] {
                let base = baseline_set(entry, field)
                    .ok_or_else(|| format!("baseline: {name}.{field} missing or malformed"))?;
                let grown: Vec<&String> = computed.iter().filter(|x| !base.contains(*x)).collect();
                if !grown.is_empty() {
                    errors.push(format!(
                        "profile {name}: {field} grew beyond baseline: {}",
                        grown
                            .iter()
                            .map(|s| s.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                let shrunk: Vec<String> = base
                    .iter()
                    .filter(|x| !computed.contains(*x))
                    .cloned()
                    .collect();
                if !shrunk.is_empty() {
                    warnings.push(format!(
                        "profile {name}: {field} shrank below baseline ({}) — regenerate the baseline",
                        shrunk.join(", ")
                    ));
                }
            }
        }
        for name in closures.keys() {
            if !self.closures.contains_key(name) {
                warnings.push(format!(
                    "baseline profile {name} no longer exists — regenerate the baseline"
                ));
            }
        }
        Ok(BaselineVerdict { errors, warnings })
    }
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineVerdict {
    /// Closure growth: must fail the gate.
    pub errors: Vec<String>,
    /// Staleness: reported, does not fail.
    pub warnings: Vec<String>,
}

impl BaselineVerdict {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

fn baseline_set(entry: &JsonValue, field: &str) -> Option<BTreeSet<String>> {
    entry
        .get(field)?
        .as_array()?
        .iter()
        .map(|v| v.as_str().map(ToString::to_string))
        .collect()
}

fn render_colset_text(c: &ColumnSet) -> String {
    match c.columns() {
        Some(cols) => cols.iter().cloned().collect::<Vec<_>>().join(", "),
        None => "*".to_string(),
    }
}

fn render_colset_json(c: &ColumnSet) -> String {
    match c.columns() {
        Some(cols) => render_str_set(cols),
        None => "\"*\"".to_string(),
    }
}

fn render_str_set(set: &BTreeSet<String>) -> String {
    let items: Vec<String> = set
        .iter()
        .map(|s| format!("\"{}\"", escape_json(s)))
        .collect();
    format!("[{}]", items.join(", "))
}

fn render_reads_json(reads: &BTreeMap<String, ColumnSet>) -> String {
    let items: Vec<String> = reads
        .iter()
        .map(|(t, c)| format!("\"{}\": {}", escape_json(t), render_colset_json(c)))
        .collect();
    format!("{{{}}}", items.join(", "))
}

fn render_writes_json(writes: &BTreeMap<String, crate::profile::WriteFootprint>) -> String {
    let items: Vec<String> = writes
        .iter()
        .map(|(t, fp)| {
            format!(
                "\"{}\": {{\"updated\": {}, \"inserts\": {}, \"deletes\": {}}}",
                escape_json(t),
                fp.updated
                    .as_ref()
                    .map_or("null".to_string(), render_colset_json),
                fp.inserts,
                fp.deletes,
            )
        })
        .collect();
    format!("{{{}}}", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> (Vec<(String, Vec<String>)>, Vec<String>) {
        let groups = vec![
            (
                "Payment".to_string(),
                vec![
                    "UPDATE warehouse SET w_ytd = w_ytd + 5 WHERE w_id = 1".to_string(),
                    "UPDATE customer SET c_balance = c_balance - 5 WHERE c_id = 1".to_string(),
                ],
            ),
            (
                "NewOrder".to_string(),
                vec![
                    "SELECT c_balance FROM customer WHERE c_id = 1".to_string(),
                    "INSERT INTO orders (o_id) VALUES (1)".to_string(),
                ],
            ),
            (
                "Probe".to_string(),
                vec!["SELECT o_id FROM orders WHERE o_id = 1".to_string()],
            ),
        ];
        let mut corpus: Vec<String> = vec![
            "CREATE TABLE warehouse (w_id INT, w_ytd INT)".into(),
            "CREATE TABLE customer (c_id INT, c_balance INT)".into(),
            "CREATE TABLE orders (o_id INT)".into(),
        ];
        for (_, stmts) in &groups {
            corpus.extend(stmts.iter().cloned());
        }
        (groups, corpus)
    }

    fn compute() -> BlastRadius {
        let (groups, corpus) = workload();
        BlastRadius::compute(&groups, &corpus)
    }

    #[test]
    fn closures_follow_conflicts_transitively() {
        let b = compute();
        // Payment's c_balance write reaches NewOrder (read) which
        // inserts into orders, reaching Probe.
        let c = &b.closures["Payment"];
        assert!(c.profiles.contains("NewOrder") && c.profiles.contains("Probe"));
        assert!(c.surface.contains("customer.c_balance"));
        assert!(c.surface.contains("orders.*"));
        assert!(c.surface.contains("warehouse.w_ytd"));
        // w_ytd is derivable and unread → it carries no closure edge,
        // but Payment's own write keeps it on the surface.
        assert!(b.graph.derivable()["warehouse"].contains("w_ytd"));
        // Read-only profile: itself, empty surface.
        let probe = &b.closures["Probe"];
        assert_eq!(probe.profiles.len(), 1);
        assert!(probe.surface.is_empty());
    }

    #[test]
    fn json_report_parses_and_gates_itself() {
        let b = compute();
        let json = b.render_json();
        let doc = parse_json(&json).expect("report JSON must parse");
        assert!(doc.get("closures").is_some());
        let verdict = b.check_baseline(&json).unwrap();
        assert!(verdict.passed(), "{:?}", verdict.errors);
        assert!(verdict.warnings.is_empty(), "{:?}", verdict.warnings);
    }

    #[test]
    fn baseline_growth_fails_shrink_warns() {
        let b = compute();
        // Growth: baseline that misses Probe from Payment's closure.
        let baseline = r#"{"closures": {
            "Payment": {"profiles": ["NewOrder", "Payment"], "surface": ["customer.c_balance", "orders.*", "warehouse.w_ytd"]},
            "NewOrder": {"profiles": ["NewOrder", "Probe"], "surface": ["orders.*"]},
            "Probe": {"profiles": ["Probe", "Ghost"], "surface": []}
        }}"#;
        let verdict = b.check_baseline(baseline).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.errors.iter().any(|e| e.contains("Payment")));
        // Shrink (Ghost) only warns.
        assert!(verdict.warnings.iter().any(|w| w.contains("Ghost")));
    }

    #[test]
    fn missing_profile_in_baseline_is_an_error() {
        let b = compute();
        let verdict = b.check_baseline(r#"{"closures": {}}"#).unwrap();
        assert!(!verdict.passed());
    }

    #[test]
    fn unparseable_baseline_is_a_loud_error() {
        let b = compute();
        assert!(b.check_baseline("not json").is_err());
        assert!(b.check_baseline("[1, 2]").is_err());
    }
}
