//! A minimal JSON reader for baseline files.
//!
//! The workspace is dependency-free by policy, so machine-readable
//! artifacts are written with hand-rolled emitters ([`crate::escape_json`]
//! and friends) and read back with this recursive-descent parser. It
//! accepts the full JSON grammar the emitters produce — objects, arrays,
//! strings with `\uXXXX` escapes, numbers, booleans, null — and reports
//! the byte offset of the first violation otherwise, which is what lets
//! `resildb-lint` fail *loudly* on a corrupted baseline instead of
//! silently gating against garbage.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; the baselines only carry counts).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, key-ordered.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our exporters;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!(
                                "invalid escape `\\{}` at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid); find its length from the leading byte.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| (*b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_json(
            r#"{"profiles": {"Payment": {"closure": ["Deliv", "Payment"], "n": 2.5}},
               "ok": true, "none": null, "neg": -3}"#,
        )
        .unwrap();
        let closure = v
            .get("profiles")
            .and_then(|p| p.get("Payment"))
            .and_then(|p| p.get("closure"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(closure[0].as_str(), Some("Deliv"));
        assert_eq!(v.get("neg"), Some(&JsonValue::Number(-3.0)));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse_json(r#""a\"b\\c\nAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nAé"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "tru", "{\"a\" 1}", "1 2", "", "\"unterminated"] {
            assert!(parse_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(
            parse_json("{}").unwrap(),
            JsonValue::Object(BTreeMap::new())
        );
        assert_eq!(parse_json("[]").unwrap(), JsonValue::Array(Vec::new()));
    }
}
