//! The tracking layer's column vocabulary.
//!
//! These names are the contract between the rewriting proxy (which injects
//! and stamps the columns), the repair tool (which reads them from log
//! pre-images) and the static analyzer (which must know which identifiers
//! a client statement may not touch). They live here, in the lowest layer
//! that all three share, and are re-exported by `resildb-proxy` for
//! backward compatibility.

/// Name of the injected last-writer column.
pub const TRID_COLUMN: &str = "trid";

/// Prefix of the per-column last-writer stamps used by column-level
/// tracking: column `c` gets a companion `trid__c INTEGER`.
pub const COLUMN_TRID_PREFIX: &str = "trid__";

/// Name of the identity column injected on flavors without a row-id
/// pseudo-column (Sybase, paper §4.3).
pub const IDENTITY_COLUMN: &str = "rid";

/// Whether `name` is one of the columns the tracking layer injects
/// (`trid`, `trid__<col>`, or the Sybase identity `rid`).
pub fn is_tracking_column(name: &str) -> bool {
    // `get` rather than direct slicing: the prefix length may fall inside a
    // multi-byte character of a non-ASCII column name.
    name.eq_ignore_ascii_case(TRID_COLUMN)
        || name.eq_ignore_ascii_case(IDENTITY_COLUMN)
        || name
            .get(..COLUMN_TRID_PREFIX.len())
            .is_some_and(|p| p.eq_ignore_ascii_case(COLUMN_TRID_PREFIX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracking_column_predicate() {
        assert!(is_tracking_column("trid"));
        assert!(is_tracking_column("TRID"));
        assert!(is_tracking_column("TRID__w_ytd"));
        assert!(is_tracking_column("rid"));
        assert!(!is_tracking_column("w_ytd"));
        assert!(!is_tracking_column("trident"));
        assert!(!is_tracking_column("tri"));
        assert!(!is_tracking_column("ütrid"));
    }
}
