//! The trackability verdict lattice and its machine-readable reason codes.

/// Granularity of dependency tracking, mirrored from the proxy
/// configuration so the analyzer can be used without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One `trid` per row (the paper's design).
    #[default]
    Row,
    /// `trid` per row plus `trid__<col>` per column (§6 extension).
    Column,
}

/// Why a statement is not (fully) soundly tracked.
///
/// Every variant carries a stable machine-readable code (`U-*` for
/// untracked, `D-*` for degraded) so lint baselines, JSON reports and
/// proxy statistics survive renames of the Rust identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reason {
    // ---- Untracked: dependencies vanish entirely -----------------------
    /// Aggregate or `GROUP BY` SELECT: the rewriter cannot append per-row
    /// trid harvest columns, so every read dependency of the statement is
    /// lost (paper Table 1, documented limitation).
    AggregateRead,
    /// `SELECT DISTINCT`: appending trid columns would change which rows
    /// are duplicates, so the statement is not rewritten and its reads go
    /// untracked.
    DistinctRead,
    /// An INSERT or UPDATE that assigns a tracking column itself
    /// (`trid`, `trid__<col>`, `rid`): the rewriter backs off and the
    /// client-supplied value forges the last-writer stamp.
    WritesTrackingColumn,
    /// `CREATE TABLE` declaring a column that collides with a tracking
    /// name: the rewriter skips injection for it, so user data and
    /// last-writer stamps share a column.
    ShadowsTrackingColumn,
    /// The statement does not parse in the proxy's dialect, so the proxy
    /// rejects it before it ever reaches the DBMS. (Subqueries, derived
    /// tables and multi-table writes fall in this class: the dialect —
    /// and hence the rewriter — has no representation for them.)
    ParseError,

    // ---- Degraded: tracked, but coarser or semantically polluted -------
    /// The SELECT references a tracking column explicitly. The proxy
    /// strips those columns from every result, so the client receives a
    /// different shape than it asked for, and the read itself is of
    /// bookkeeping state rather than user data.
    ReadsTrackingColumn,
    /// Wildcard projection (`*` / `t.*`): dependencies are harvested, but
    /// the recorded read-column provenance is empty, so false-dependency
    /// filtering must keep every edge conservatively.
    WildcardProvenance,
    /// Column-granularity deployment, but the INSERT has no column list:
    /// the schema-less rewriter can only stamp the row `trid`, not the
    /// per-column stamps.
    PositionalColumnStamps,
    /// Column-granularity deployment, but the SELECT resolves no concrete
    /// columns (wildcard-style read): harvest falls back to the row stamp,
    /// re-introducing the false sharing column tracking exists to remove.
    ColumnFallback,
    /// `DROP TABLE` destroys the per-row stamps with the table; prior
    /// transactions on it can no longer be repaired through the log's
    /// tracking columns.
    DropsTrackedHistory,
}

impl Reason {
    /// Stable machine-readable code for reports and baselines.
    pub fn code(self) -> &'static str {
        match self {
            Reason::AggregateRead => "U-AGG",
            Reason::DistinctRead => "U-DISTINCT",
            Reason::WritesTrackingColumn => "U-TRID-WRITE",
            Reason::ShadowsTrackingColumn => "U-TRID-SHADOW",
            Reason::ParseError => "U-PARSE",
            Reason::ReadsTrackingColumn => "D-TRID-READ",
            Reason::WildcardProvenance => "D-WILDCARD",
            Reason::PositionalColumnStamps => "D-POSITIONAL-INSERT",
            Reason::ColumnFallback => "D-COL-FALLBACK",
            Reason::DropsTrackedHistory => "D-DROP",
        }
    }

    /// Whether the reason makes the statement untracked (dependencies
    /// lost) rather than merely degraded (tracked coarsely).
    pub fn is_untracked(self) -> bool {
        matches!(
            self,
            Reason::AggregateRead
                | Reason::DistinctRead
                | Reason::WritesTrackingColumn
                | Reason::ShadowsTrackingColumn
                | Reason::ParseError
        )
    }

    /// One-line human explanation.
    pub fn message(self) -> &'static str {
        match self {
            Reason::AggregateRead => {
                "aggregate/GROUP BY select is not rewritten; its read dependencies are lost"
            }
            Reason::DistinctRead => {
                "DISTINCT select is not rewritten; its read dependencies are lost"
            }
            Reason::WritesTrackingColumn => {
                "statement assigns a tracking column, forging the last-writer stamp"
            }
            Reason::ShadowsTrackingColumn => {
                "table declares a column shadowing a tracking column name"
            }
            Reason::ParseError => "statement does not parse in the proxy's dialect",
            Reason::ReadsTrackingColumn => {
                "select references a tracking column; the proxy strips it from results"
            }
            Reason::WildcardProvenance => {
                "wildcard projection leaves read-column provenance empty; \
                 false-dependency filtering is disabled for these edges"
            }
            Reason::PositionalColumnStamps => {
                "positional insert cannot receive per-column stamps; row stamp only"
            }
            Reason::ColumnFallback => {
                "column-level read resolves no columns; harvest falls back to the row stamp"
            }
            Reason::DropsTrackedHistory => {
                "DROP TABLE destroys the table's tracking stamps and repair history"
            }
        }
    }
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code(), self.message())
    }
}

/// The analyzer's three-point verdict lattice, ordered
/// `Sound < Degraded < Untracked` by severity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every dependency the statement induces is captured by the dynamic
    /// tracker (online harvest or log reconstruction).
    Sound,
    /// Dependencies are captured, but coarser than the statement's real
    /// footprint, or the statement touches tracking bookkeeping.
    Degraded(Vec<Reason>),
    /// At least one dependency class of the statement is invisible to the
    /// tracker: repair closures computed over it are unsound.
    Untracked(Vec<Reason>),
}

impl Verdict {
    /// Builds the verdict from a (possibly empty) reason list: the worst
    /// reason decides the lattice point.
    pub fn from_reasons(mut reasons: Vec<Reason>) -> Verdict {
        if reasons.is_empty() {
            return Verdict::Sound;
        }
        reasons.sort_unstable();
        reasons.dedup();
        if reasons.iter().any(|r| r.is_untracked()) {
            Verdict::Untracked(reasons)
        } else {
            Verdict::Degraded(reasons)
        }
    }

    /// Whether the statement is fully soundly tracked.
    pub fn is_sound(&self) -> bool {
        matches!(self, Verdict::Sound)
    }

    /// Whether the statement's dependencies are (partially) lost.
    pub fn is_untracked(&self) -> bool {
        matches!(self, Verdict::Untracked(_))
    }

    /// The reasons behind a non-sound verdict (empty for [`Verdict::Sound`]).
    pub fn reasons(&self) -> &[Reason] {
        match self {
            Verdict::Sound => &[],
            Verdict::Degraded(r) | Verdict::Untracked(r) => r,
        }
    }

    /// Short label for display and stats: `sound`, `degraded`, `untracked`.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Sound => "sound",
            Verdict::Degraded(_) => "degraded",
            Verdict::Untracked(_) => "untracked",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())?;
        let codes: Vec<&str> = self.reasons().iter().map(|r| r.code()).collect();
        if !codes.is_empty() {
            write!(f, " [{}]", codes.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_reason_decides_lattice_point() {
        assert_eq!(Verdict::from_reasons(vec![]), Verdict::Sound);
        assert!(matches!(
            Verdict::from_reasons(vec![Reason::WildcardProvenance]),
            Verdict::Degraded(_)
        ));
        let v = Verdict::from_reasons(vec![Reason::WildcardProvenance, Reason::AggregateRead]);
        assert!(v.is_untracked());
        assert_eq!(v.reasons().len(), 2);
    }

    #[test]
    fn reasons_deduplicate() {
        let v = Verdict::from_reasons(vec![Reason::DistinctRead, Reason::DistinctRead]);
        assert_eq!(v.reasons(), &[Reason::DistinctRead]);
    }

    #[test]
    fn codes_partition_by_severity() {
        for r in [
            Reason::AggregateRead,
            Reason::DistinctRead,
            Reason::WritesTrackingColumn,
            Reason::ShadowsTrackingColumn,
            Reason::ParseError,
        ] {
            assert!(r.is_untracked(), "{r:?}");
            assert!(r.code().starts_with("U-"), "{r:?}");
        }
        for r in [
            Reason::ReadsTrackingColumn,
            Reason::WildcardProvenance,
            Reason::PositionalColumnStamps,
            Reason::ColumnFallback,
            Reason::DropsTrackedHistory,
        ] {
            assert!(!r.is_untracked(), "{r:?}");
            assert!(r.code().starts_with("D-"), "{r:?}");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Verdict::Sound.to_string(), "sound");
        let v = Verdict::from_reasons(vec![Reason::AggregateRead]);
        assert_eq!(v.to_string(), "untracked [U-AGG]");
    }
}
