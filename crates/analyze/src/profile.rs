//! Transaction profiles: whole-transaction read/write footprints.
//!
//! PR 3's analyzer classifies *statements*; this module lifts the
//! analysis to *transaction shapes*. A [`TxnProfile`] is the abstract
//! footprint of one transaction class — every table it reads via
//! `SELECT` and every table it mutates, each at column granularity —
//! computed by abstract interpretation of the class's recorded SQL: each
//! statement contributes its [`resildb_sql::statement_access`] footprint
//! and the profile is the union. Imprecision is one-directional by
//! construction: anything the extractor cannot resolve widens to "all
//! columns", so a profile over-approximates every concrete transaction
//! of its class. That is the property the VOPR soundness oracle
//! machine-checks (dynamic damage closure ⊆ static bound).

use std::collections::BTreeMap;

use resildb_sql::{parse_statement, statement_access, ColumnSet, Statement, WriteKind};

/// The write footprint of one profile in one table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteFootprint {
    /// Union of `UPDATE` assignment targets (`None` = the profile never
    /// updates this table; `Some(All)` = an update with unresolvable
    /// targets, treated as touching every column).
    pub updated: Option<ColumnSet>,
    /// The profile inserts rows into the table.
    pub inserts: bool,
    /// The profile deletes rows from the table.
    pub deletes: bool,
}

impl WriteFootprint {
    fn note_update(&mut self, columns: &ColumnSet) {
        match &mut self.updated {
            Some(existing) => existing.union(columns),
            None => self.updated = Some(columns.clone()),
        }
    }

    fn merge(&mut self, other: &WriteFootprint) {
        if let Some(cols) = &other.updated {
            self.note_update(cols);
        }
        self.inserts |= other.inserts;
        self.deletes |= other.deletes;
    }

    /// The columns this footprint can damage, for blast-surface reports:
    /// `None` means every column (inserts, deletes, or unresolvable
    /// updates touch whole rows).
    pub fn damaged_columns(&self) -> Option<&std::collections::BTreeSet<String>> {
        if self.inserts || self.deletes {
            return None;
        }
        self.updated.as_ref().and_then(ColumnSet::columns)
    }
}

/// The static footprint of one transaction class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnProfile {
    /// Profile name (transaction-class label).
    pub name: String,
    /// Statements interpreted (transaction control excluded).
    pub statements: usize,
    /// Statements that did not parse in the proxy dialect. Their
    /// footprint is unknowable, but also unreachable: the proxy rejects
    /// what it cannot parse, so they widen nothing.
    pub parse_failures: usize,
    /// table → columns read via `SELECT`.
    pub reads: BTreeMap<String, ColumnSet>,
    /// table → write footprint.
    pub writes: BTreeMap<String, WriteFootprint>,
}

impl TxnProfile {
    /// Builds the profile of `name` by interpreting `statements`.
    pub fn from_sql<S: AsRef<str>>(name: impl Into<String>, statements: &[S]) -> TxnProfile {
        let mut profile = TxnProfile {
            name: name.into(),
            statements: 0,
            parse_failures: 0,
            reads: BTreeMap::new(),
            writes: BTreeMap::new(),
        };
        for sql in statements {
            let stmt = match parse_statement(sql.as_ref()) {
                Ok(s) => s,
                Err(_) => {
                    profile.parse_failures += 1;
                    continue;
                }
            };
            if matches!(
                stmt,
                Statement::Begin | Statement::Commit | Statement::Rollback
            ) {
                continue;
            }
            profile.statements += 1;
            let access = statement_access(&stmt);
            for read in access.reads {
                profile
                    .reads
                    .entry(read.table)
                    .and_modify(|c| c.union(&read.columns))
                    .or_insert(read.columns);
            }
            for write in access.writes {
                let fp = profile.writes.entry(write.table).or_default();
                match write.kind {
                    WriteKind::Insert => fp.inserts = true,
                    WriteKind::Delete => fp.deletes = true,
                    WriteKind::Update => fp.note_update(&write.columns),
                }
            }
        }
        profile
    }

    /// Unions `other` into `self` (profiles of the same class recorded
    /// from different runs).
    pub fn merge(&mut self, other: &TxnProfile) {
        self.statements += other.statements;
        self.parse_failures += other.parse_failures;
        for (table, cols) in &other.reads {
            self.reads
                .entry(table.clone())
                .and_modify(|c| c.union(cols))
                .or_insert_with(|| cols.clone());
        }
        for (table, fp) in &other.writes {
            self.writes.entry(table.clone()).or_default().merge(fp);
        }
    }

    /// Whether the profile writes anywhere.
    pub fn writes_rows(&self) -> bool {
        !self.writes.is_empty()
    }
}

/// Builds one profile per distinct group name, merging groups that share
/// a name, sorted by name.
pub fn profiles_from_groups<S: AsRef<str>>(groups: &[(String, Vec<S>)]) -> Vec<TxnProfile> {
    let mut by_name: BTreeMap<String, TxnProfile> = BTreeMap::new();
    for (name, statements) in groups {
        let profile = TxnProfile::from_sql(name.clone(), statements);
        match by_name.get_mut(name) {
            Some(existing) => existing.merge(&profile),
            None => {
                by_name.insert(name.clone(), profile);
            }
        }
    }
    by_name.into_values().collect()
}

/// Splits a flat statement corpus into `BEGIN`…`COMMIT` transaction
/// groups named `txn_<k>`, returning `(groups, ambient)` where `ambient`
/// collects the statements outside any transaction block (DDL,
/// autocommitted statements). A `ROLLBACK` discards its group — a rolled
/// back transaction has no footprint the tracker would record.
pub fn group_transactions(corpus: &[String]) -> (Vec<(String, Vec<String>)>, Vec<String>) {
    let mut groups: Vec<(String, Vec<String>)> = Vec::new();
    let mut ambient: Vec<String> = Vec::new();
    let mut open: Option<Vec<String>> = None;
    for sql in corpus {
        match parse_statement(sql) {
            Ok(Statement::Begin) => open = Some(Vec::new()),
            Ok(Statement::Commit) => {
                if let Some(stmts) = open.take() {
                    groups.push((format!("txn_{}", groups.len()), stmts));
                }
            }
            Ok(Statement::Rollback) => {
                open = None;
            }
            _ => match &mut open {
                Some(stmts) => stmts.push(sql.clone()),
                None => ambient.push(sql.clone()),
            },
        }
    }
    if let Some(stmts) = open {
        // Unterminated trailing block: keep it — a conservative report
        // should not silently drop statements.
        groups.push((format!("txn_{}", groups.len()), stmts));
    }
    (groups, ambient)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payment_profile() -> TxnProfile {
        TxnProfile::from_sql(
            "Payment",
            &[
                "SELECT w_name FROM warehouse WHERE w_id = 1",
                "UPDATE warehouse SET w_ytd = w_ytd + 10 WHERE w_id = 1",
                "UPDATE customer SET c_balance = c_balance - 10, c_payment_cnt = c_payment_cnt + 1 \
                 WHERE c_id = 3",
                "INSERT INTO history (h_w_id, h_amount) VALUES (1, 10)",
            ],
        )
    }

    #[test]
    fn profile_unions_statement_footprints() {
        let p = payment_profile();
        assert_eq!(p.statements, 4);
        assert_eq!(p.parse_failures, 0);
        assert!(p.reads["warehouse"].contains("w_name"));
        assert!(!p.reads["warehouse"].contains("w_ytd"));
        let w = &p.writes["warehouse"];
        assert_eq!(
            w.updated.as_ref().and_then(ColumnSet::columns).unwrap(),
            &["w_ytd".to_string()].into_iter().collect()
        );
        assert!(!w.inserts && !w.deletes);
        assert!(p.writes["history"].inserts);
        assert!(p.writes["customer"]
            .damaged_columns()
            .unwrap()
            .contains("c_payment_cnt"));
        assert!(p.writes["history"].damaged_columns().is_none());
    }

    #[test]
    fn control_statements_are_skipped_and_parse_errors_counted() {
        let p = TxnProfile::from_sql("X", &["BEGIN", "SELECT a FROM t", "NOT EVEN SQL", "COMMIT"]);
        assert_eq!(p.statements, 1);
        assert_eq!(p.parse_failures, 1);
    }

    #[test]
    fn merge_widens_to_union() {
        let mut a = TxnProfile::from_sql("P", &["UPDATE t SET x = 1"]);
        let b = TxnProfile::from_sql("P", &["UPDATE t SET y = 2", "DELETE FROM u"]);
        a.merge(&b);
        let cols = a.writes["t"]
            .updated
            .as_ref()
            .and_then(ColumnSet::columns)
            .unwrap();
        assert_eq!(cols.len(), 2);
        assert!(a.writes["u"].deletes);
        assert_eq!(a.statements, 3);
    }

    #[test]
    fn groups_merge_by_name() {
        let groups = vec![
            ("P".to_string(), vec!["UPDATE t SET a = 1".to_string()]),
            ("Q".to_string(), vec!["SELECT b FROM t".to_string()]),
            ("P".to_string(), vec!["UPDATE t SET c = 2".to_string()]),
        ];
        let profiles = profiles_from_groups(&groups);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].name, "P");
        assert_eq!(
            profiles[0].writes["t"]
                .updated
                .as_ref()
                .and_then(ColumnSet::columns)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn group_transactions_splits_on_txn_boundaries() {
        let corpus: Vec<String> = [
            "CREATE TABLE t (a INT)",
            "BEGIN",
            "UPDATE t SET a = 1",
            "COMMIT",
            "BEGIN",
            "UPDATE t SET a = 2",
            "ROLLBACK",
            "BEGIN",
            "SELECT a FROM t",
            "COMMIT",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let (groups, ambient) = group_transactions(&corpus);
        assert_eq!(ambient.len(), 1);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "txn_0");
        assert_eq!(groups[0].1, vec!["UPDATE t SET a = 1"]);
        assert_eq!(groups[1].1, vec!["SELECT a FROM t"]);
    }
}
