//! Derivable-column (false-dependency) inference.
//!
//! The paper (§5.3) relies on the DBA to hand-identify *false
//! dependencies*: columns like TPC-C's `w_ytd` whose writes spread damage
//! closures without carrying real information flow, because they are pure
//! accumulators nobody reads. This pass infers those candidates statically
//! from the workload, Ultraverse-style: a column is **derivable** when
//!
//! 1. it is updated somewhere as a commutative self-increment
//!    (`col = col + expr` or `col = col - expr`, `expr` free of column
//!    references), and
//! 2. no statement in the corpus updates it any other way, and
//! 3. no statement in the corpus *reads* it (projection, predicate,
//!    grouping/ordering, or inside another assignment's value).
//!
//! Condition 3 is what keeps the inference sound where a syntactic
//! accumulator is actually consumed — TPC-C's `d_next_o_id` is written
//! only as `d_next_o_id + 1` but *read* by New-Order and Stock-Level, so
//! it never becomes a candidate, while `w_ytd`/`d_ytd`/`c_ytd_payment`
//! do. The inferred set feeds the repair tool's false-dependency discard
//! rules in place of hand-maintained DBA input.

use std::collections::BTreeSet;

use resildb_sql::{BinaryOp, Expr, Select, SelectItem, Statement};

use crate::classify::SchemaSnapshot;
use crate::columns::is_tracking_column;

/// One inferred false-dependency candidate: writes that touch only this
/// column can be discarded from damage closures when the reader did not
/// consume it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DerivableColumn {
    /// Table the column belongs to (lower-cased).
    pub table: String,
    /// Column name (lower-cased).
    pub column: String,
}

impl std::fmt::Display for DerivableColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

type ColKey = (String, String);

#[derive(Debug, Default)]
struct DeriveState {
    /// (table, column) updated as `col = col ± expr` at least once.
    incremented: BTreeSet<ColKey>,
    /// (table, column) assigned in any other form.
    otherwise_written: BTreeSet<ColKey>,
    /// (table, column) read anywhere.
    read: BTreeSet<ColKey>,
    /// Tables read through a wildcard the schema cannot expand: every
    /// column of such a table must be assumed read.
    fully_read: BTreeSet<String>,
}

/// Whether `value` is a commutative self-increment of `column` on `table`:
/// `col + e`, `col - e`, or `e + col`, with `e` free of column references.
fn is_self_increment(column: &str, value: &Expr) -> bool {
    let Expr::Binary { left, op, right } = value else {
        return false;
    };
    let is_col = |e: &Expr| matches!(e, Expr::Column(c) if c.column.eq_ignore_ascii_case(column));
    let no_cols = |e: &Expr| e.referenced_columns().is_empty();
    match op {
        BinaryOp::Add => (is_col(left) && no_cols(right)) || (no_cols(left) && is_col(right)),
        BinaryOp::Sub => is_col(left) && no_cols(right),
        _ => false,
    }
}

fn mark_read(state: &mut DeriveState, table: &str, column: &str) {
    if !is_tracking_column(column) {
        state
            .read
            .insert((table.to_string(), column.to_ascii_lowercase()));
    }
}

/// Attributes every column `expr` references to tables in `scope`
/// (binding-name → table-name pairs), resolving unqualified references
/// through the schema when possible and conservatively to every scope
/// table otherwise.
fn mark_expr_reads(
    state: &mut DeriveState,
    scope: &[(String, String)],
    schema: Option<&SchemaSnapshot>,
    expr: &Expr,
) {
    for c in expr.referenced_columns() {
        match &c.table {
            Some(qualifier) => {
                // Resolve the qualifier through the FROM bindings; an
                // unknown qualifier is attributed to every scope table.
                let mut resolved = false;
                for (binding, table) in scope {
                    if binding.eq_ignore_ascii_case(qualifier) {
                        mark_read(state, table, &c.column);
                        resolved = true;
                    }
                }
                if !resolved {
                    for (_, table) in scope {
                        mark_read(state, table, &c.column);
                    }
                }
            }
            None => {
                let owners: Vec<&str> = match schema {
                    Some(snap) => scope
                        .iter()
                        .filter(|(_, table)| snap.has_column(table, &c.column))
                        .map(|(_, table)| table.as_str())
                        .collect(),
                    None => Vec::new(),
                };
                if owners.is_empty() {
                    // Unknown schema or unknown column: every scope table
                    // may own it (false-positive-safe: more reads, fewer
                    // candidates).
                    for (_, table) in scope {
                        mark_read(state, table, &c.column);
                    }
                } else {
                    for table in owners {
                        mark_read(state, table, &c.column);
                    }
                }
            }
        }
    }
}

fn visit_select(state: &mut DeriveState, sel: &Select, schema: Option<&SchemaSnapshot>) {
    let scope: Vec<(String, String)> = sel
        .from
        .iter()
        .map(|t| {
            (
                t.binding_name().to_ascii_lowercase(),
                t.name.to_ascii_lowercase(),
            )
        })
        .collect();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (_, table) in &scope {
                    expand_wildcard(state, table, schema);
                }
            }
            SelectItem::QualifiedWildcard(qualifier) => {
                let mut resolved = false;
                for (binding, table) in &scope {
                    if binding.eq_ignore_ascii_case(qualifier) {
                        expand_wildcard(state, table, schema);
                        resolved = true;
                    }
                }
                if !resolved {
                    for (_, table) in &scope {
                        expand_wildcard(state, table, schema);
                    }
                }
            }
            SelectItem::Expr { expr, .. } => mark_expr_reads(state, &scope, schema, expr),
        }
    }
    for e in sel
        .where_clause
        .iter()
        .chain(sel.group_by.iter())
        .chain(sel.order_by.iter().map(|o| &o.expr))
    {
        mark_expr_reads(state, &scope, schema, e);
    }
}

fn expand_wildcard(state: &mut DeriveState, table: &str, schema: Option<&SchemaSnapshot>) {
    match schema.and_then(|s| s.columns(table)) {
        Some(cols) => {
            for c in cols {
                mark_read(state, table, c);
            }
        }
        None => {
            state.fully_read.insert(table.to_string());
        }
    }
}

/// Runs the inference over a parsed workload corpus.
pub fn infer_derivable_columns(
    stmts: &[Statement],
    schema: Option<&SchemaSnapshot>,
) -> Vec<DerivableColumn> {
    let mut state = DeriveState::default();
    for stmt in stmts {
        match stmt {
            Statement::Update(upd) => {
                let table = upd.table.to_ascii_lowercase();
                let scope = vec![(table.clone(), table.clone())];
                for a in &upd.assignments {
                    if is_tracking_column(&a.column) {
                        continue;
                    }
                    let key = (table.clone(), a.column.to_ascii_lowercase());
                    if is_self_increment(&a.column, &a.value) {
                        state.incremented.insert(key);
                        // The self-reference inside the increment is not a
                        // read: nothing downstream consumes the value.
                    } else {
                        state.otherwise_written.insert(key);
                        mark_expr_reads(&mut state, &scope, schema, &a.value);
                    }
                }
                if let Some(w) = &upd.where_clause {
                    mark_expr_reads(&mut state, &scope, schema, w);
                }
            }
            Statement::Select(sel) => visit_select(&mut state, sel, schema),
            Statement::Delete(del) => {
                let table = del.table.to_ascii_lowercase();
                let scope = vec![(table.clone(), table)];
                if let Some(w) = &del.where_clause {
                    mark_expr_reads(&mut state, &scope, schema, w);
                }
            }
            Statement::Insert(ins) => {
                // VALUES tuples rarely reference columns, but if they do,
                // those are reads of the target table.
                let table = ins.table.to_ascii_lowercase();
                let scope = vec![(table.clone(), table)];
                for e in ins.rows.iter().flatten() {
                    mark_expr_reads(&mut state, &scope, schema, e);
                }
            }
            _ => {}
        }
    }
    state
        .incremented
        .iter()
        .filter(|key| {
            !state.otherwise_written.contains(*key)
                && !state.read.contains(*key)
                && !state.fully_read.contains(&key.0)
        })
        .map(|(table, column)| DerivableColumn {
            table: table.clone(),
            column: column.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(stmts: &[&str]) -> Vec<Statement> {
        stmts
            .iter()
            .map(|s| resildb_sql::parse_statement(s).unwrap())
            .collect()
    }

    fn infer(stmts: &[&str]) -> Vec<String> {
        infer_derivable_columns(&parse(stmts), None)
            .iter()
            .map(ToString::to_string)
            .collect()
    }

    #[test]
    fn pure_accumulator_is_derivable() {
        let cols = infer(&[
            "UPDATE warehouse SET w_ytd = w_ytd + 100.0 WHERE w_id = 1",
            "SELECT w_tax FROM warehouse WHERE w_id = 1",
        ]);
        assert_eq!(cols, ["warehouse.w_ytd"]);
    }

    #[test]
    fn read_accumulator_is_not_derivable() {
        // d_next_o_id is self-incremented but also read: a real flow.
        let cols = infer(&[
            "UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_id = 1",
            "SELECT d_next_o_id FROM district WHERE d_id = 1",
        ]);
        assert!(cols.is_empty(), "{cols:?}");
    }

    #[test]
    fn reads_in_predicates_disqualify() {
        let cols = infer(&["UPDATE t SET a = a + 1", "SELECT b FROM t WHERE a > 10"]);
        assert!(cols.is_empty(), "{cols:?}");
    }

    #[test]
    fn non_increment_write_disqualifies() {
        let cols = infer(&["UPDATE t SET a = a + 1", "UPDATE t SET a = 0"]);
        assert!(cols.is_empty(), "{cols:?}");
    }

    #[test]
    fn increment_forms_accepted_and_rejected() {
        // e + col is commutative; e - col is not an increment.
        assert_eq!(infer(&["UPDATE t SET a = 1 + a"]), ["t.a"]);
        assert!(infer(&["UPDATE t SET a = 1 - a"]).is_empty());
        assert!(infer(&["UPDATE t SET a = a * 2"]).is_empty());
        // Increment by another column is not self-contained.
        assert!(infer(&["UPDATE t SET a = a + b"]).is_empty());
    }

    #[test]
    fn read_inside_other_assignment_disqualifies() {
        // `b = a` reads a, so a is not derivable; b itself is not an
        // increment either.
        let cols = infer(&["UPDATE t SET a = a + 1", "UPDATE t SET b = a"]);
        assert!(cols.is_empty(), "{cols:?}");
    }

    #[test]
    fn wildcard_without_schema_disqualifies_table() {
        let cols = infer(&["UPDATE t SET a = a + 1", "SELECT * FROM t"]);
        assert!(cols.is_empty(), "{cols:?}");
    }

    #[test]
    fn wildcard_with_schema_expands_precisely() {
        let mut schema = SchemaSnapshot::new();
        schema.add_table("t", ["a", "b"]);
        schema.add_table("u", ["x"]);
        let stmts = parse(&[
            "UPDATE t SET a = a + 1",
            "UPDATE u SET x = x + 1",
            "SELECT t.* FROM t, u",
        ]);
        let cols = infer_derivable_columns(&stmts, Some(&schema));
        // t.* reads t.a → only u.x survives.
        assert_eq!(
            cols,
            [DerivableColumn {
                table: "u".into(),
                column: "x".into()
            }]
        );
    }

    #[test]
    fn unqualified_read_resolves_through_schema() {
        let mut schema = SchemaSnapshot::new();
        schema.add_table("t", ["a", "b"]);
        schema.add_table("u", ["x", "a"]);
        // `a` exists in both tables → read marks both; `b` only in t.
        let stmts = parse(&[
            "UPDATE t SET a = a + 1",
            "UPDATE u SET a = a + 1",
            "UPDATE u SET x = x + 1",
            "SELECT b FROM t, u WHERE a = 1",
        ]);
        let cols = infer_derivable_columns(&stmts, Some(&schema));
        assert_eq!(
            cols,
            [DerivableColumn {
                table: "u".into(),
                column: "x".into()
            }]
        );
    }

    #[test]
    fn tracking_columns_never_become_candidates() {
        assert!(infer(&["UPDATE t SET trid = trid + 1"]).is_empty());
    }

    #[test]
    fn tpcc_shaped_workload_infers_the_paper_columns() {
        let cols = infer(&[
            // Payment
            "UPDATE warehouse SET w_ytd = w_ytd + 100.0 WHERE w_id = 1",
            "SELECT w_name, w_street_1, w_city FROM warehouse WHERE w_id = 1",
            "UPDATE district SET d_ytd = d_ytd + 100.0 WHERE d_w_id = 1 AND d_id = 2",
            "SELECT d_name FROM district WHERE d_w_id = 1 AND d_id = 2",
            "SELECT c_balance, c_credit FROM customer WHERE c_id = 3",
            "UPDATE customer SET c_balance = c_balance - 100.0, \
             c_ytd_payment = c_ytd_payment + 100.0, c_payment_cnt = c_payment_cnt + 1 \
             WHERE c_id = 3",
            // New-Order
            "SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = 1 AND d_id = 2",
            "UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = 1 AND d_id = 2",
        ]);
        assert!(cols.contains(&"warehouse.w_ytd".to_string()), "{cols:?}");
        assert!(cols.contains(&"district.d_ytd".to_string()), "{cols:?}");
        assert!(cols.contains(&"customer.c_ytd_payment".to_string()));
        assert!(cols.contains(&"customer.c_payment_cnt".to_string()));
        // c_balance is read → excluded; d_next_o_id is read → excluded.
        assert!(!cols.contains(&"customer.c_balance".to_string()));
        assert!(!cols.contains(&"district.d_next_o_id".to_string()));
    }
}
