//! Workload coverage reports for `resildb-lint`.
//!
//! A [`CoverageReport`] runs the classifier over every statement of a
//! workload, runs derivability inference over the parseable subset, and
//! renders the result as human-readable text or machine-readable JSON
//! (hand-rolled: the build is offline and carries no serde).

use std::collections::BTreeMap;

use resildb_sql::Statement;

use crate::classify::{Analyzer, SchemaSnapshot};
use crate::derive::{infer_derivable_columns, DerivableColumn};
use crate::verdict::Verdict;

/// One analyzed workload statement.
#[derive(Debug, Clone)]
pub struct StatementReport {
    /// Zero-based position in the workload.
    pub index: usize,
    /// The statement text as submitted.
    pub sql: String,
    /// The analyzer's verdict.
    pub verdict: Verdict,
}

/// The result of linting one workload corpus.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Per-statement verdicts, in workload order.
    pub statements: Vec<StatementReport>,
    /// Columns inferred derivable (false-dependency candidates).
    pub derivable: Vec<DerivableColumn>,
}

impl CoverageReport {
    /// Classifies every statement in `corpus` and runs derivability
    /// inference over the parseable subset. When the analyzer carries no
    /// schema snapshot, one is reconstructed from the corpus's own
    /// `CREATE TABLE` statements so wildcards expand precisely.
    pub fn analyze<S: AsRef<str>>(analyzer: &Analyzer, corpus: &[S]) -> Self {
        let mut statements = Vec::with_capacity(corpus.len());
        let mut parsed: Vec<Statement> = Vec::new();
        for (index, sql) in corpus.iter().enumerate() {
            let sql = sql.as_ref();
            statements.push(StatementReport {
                index,
                sql: sql.to_string(),
                verdict: analyzer.classify_sql(sql),
            });
            if let Ok(stmt) = resildb_sql::parse_statement(sql) {
                parsed.push(stmt);
            }
        }
        let corpus_schema;
        let schema = match analyzer.schema() {
            Some(s) => Some(s),
            None => {
                let snap = SchemaSnapshot::from_statements(&parsed);
                if snap.is_empty() {
                    None
                } else {
                    corpus_schema = snap;
                    Some(&corpus_schema)
                }
            }
        };
        let derivable = infer_derivable_columns(&parsed, schema);
        CoverageReport {
            statements,
            derivable,
        }
    }

    /// Total statement count.
    pub fn total(&self) -> usize {
        self.statements.len()
    }

    /// Count of sound statements.
    pub fn sound_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| s.verdict.is_sound())
            .count()
    }

    /// Count of degraded (tracked, imprecise) statements.
    pub fn degraded_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| matches!(s.verdict, Verdict::Degraded(_)))
            .count()
    }

    /// Count of untracked statements.
    pub fn untracked_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| s.verdict.is_untracked())
            .count()
    }

    /// Fraction of the workload that is soundly tracked, in `[0, 1]`.
    /// An empty workload counts as fully covered.
    pub fn sound_coverage(&self) -> f64 {
        if self.statements.is_empty() {
            return 1.0;
        }
        self.sound_count() as f64 / self.statements.len() as f64
    }

    /// Reason-code histogram over all non-sound statements.
    pub fn reason_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut hist = BTreeMap::new();
        for s in &self.statements {
            for r in s.verdict.reasons() {
                *hist.entry(r.code()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Renders the human-readable report. With `verbose`, every non-sound
    /// statement is listed with its reasons; otherwise only the summary,
    /// histogram and derivable columns appear.
    pub fn render_text(&self, verbose: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "statements: {} total, {} sound, {} degraded, {} untracked",
            self.total(),
            self.sound_count(),
            self.degraded_count(),
            self.untracked_count()
        );
        let _ = writeln!(out, "sound coverage: {:.1}%", self.sound_coverage() * 100.0);
        let hist = self.reason_histogram();
        if !hist.is_empty() {
            let _ = writeln!(out, "reasons:");
            for (code, n) in &hist {
                let _ = writeln!(out, "  {code:<20} {n}");
            }
        }
        if verbose {
            for s in &self.statements {
                if !s.verdict.is_sound() {
                    let _ = writeln!(out, "[{}] {}", s.index, s.verdict);
                    for r in s.verdict.reasons() {
                        let _ = writeln!(out, "      {}: {}", r.code(), r.message());
                    }
                    let _ = writeln!(out, "      {}", truncate(&s.sql, 120));
                }
            }
        }
        if self.derivable.is_empty() {
            let _ = writeln!(out, "derivable columns: none inferred");
        } else {
            let _ = writeln!(out, "derivable columns (false-dependency candidates):");
            for d in &self.derivable {
                let _ = writeln!(out, "  {d}");
            }
        }
        out
    }

    /// Renders the report as a JSON object with `summary`, `statements`
    /// and `derivable_columns` keys.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"summary\": {");
        out.push_str(&format!(
            "\"total\": {}, \"sound\": {}, \"degraded\": {}, \"untracked\": {}, \
             \"sound_coverage\": {:.4}}},\n",
            self.total(),
            self.sound_count(),
            self.degraded_count(),
            self.untracked_count(),
            self.sound_coverage()
        ));
        out.push_str("  \"statements\": [\n");
        for (i, s) in self.statements.iter().enumerate() {
            let codes: Vec<String> = s
                .verdict
                .reasons()
                .iter()
                .map(|r| format!("\"{}\"", r.code()))
                .collect();
            out.push_str(&format!(
                "    {{\"index\": {}, \"verdict\": \"{}\", \"reasons\": [{}], \"sql\": \"{}\"}}{}\n",
                s.index,
                s.verdict.label(),
                codes.join(", "),
                escape_json(&s.sql),
                if i + 1 < self.statements.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"derivable_columns\": [");
        let derivable: Vec<String> = self
            .derivable
            .iter()
            .map(|d| {
                format!(
                    "{{\"table\": \"{}\", \"column\": \"{}\"}}",
                    escape_json(&d.table),
                    escape_json(&d.column)
                )
            })
            .collect();
        out.push_str(&derivable.join(", "));
        out.push_str("]\n}\n");
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        return s.to_string();
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::Granularity;

    fn report(corpus: &[&str]) -> CoverageReport {
        CoverageReport::analyze(&Analyzer::new(Granularity::Row), corpus)
    }

    #[test]
    fn counts_and_coverage() {
        let r = report(&[
            "SELECT a FROM t WHERE b = 1",
            "SELECT SUM(a) FROM t",
            "SELECT * FROM t",
            "UPDATE t SET a = 1",
        ]);
        assert_eq!(r.total(), 4);
        assert_eq!(r.sound_count(), 2);
        assert_eq!(r.degraded_count(), 1);
        assert_eq!(r.untracked_count(), 1);
        assert!((r.sound_coverage() - 0.5).abs() < 1e-9);
        let hist = r.reason_histogram();
        assert_eq!(hist.get("U-AGG"), Some(&1));
        assert_eq!(hist.get("D-WILDCARD"), Some(&1));
    }

    #[test]
    fn empty_workload_is_fully_covered() {
        let r = report(&[]);
        assert!((r.sound_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn corpus_schema_enables_wildcard_expansion() {
        // Without the CREATE TABLE, `SELECT * FROM t` would mark t fully
        // read and kill the candidate; with it, the wildcard expands to
        // {b} and t.a stays derivable.
        let r = report(&[
            "CREATE TABLE t (b INTEGER)",
            "UPDATE t SET a = a + 1",
            "SELECT * FROM t",
        ]);
        assert_eq!(r.derivable.len(), 1);
        assert_eq!(r.derivable[0].to_string(), "t.a");
    }

    #[test]
    fn text_render_mentions_the_essentials() {
        let r = report(&["SELECT SUM(a) FROM t", "UPDATE t SET b = b + 1"]);
        let text = r.render_text(true);
        assert!(text.contains("sound coverage: 50.0%"), "{text}");
        assert!(text.contains("U-AGG"), "{text}");
        assert!(text.contains("t.b"), "{text}");
    }

    #[test]
    fn json_render_is_well_formed_enough() {
        let r = report(&["SELECT \"x\" FROM t", "SELECT SUM(a) FROM t"]);
        let json = r.render_json();
        assert!(json.contains("\"sound_coverage\": 0.5000"), "{json}");
        assert!(json.contains("\\\"x\\\""), "{json}");
        assert!(json.contains("\"reasons\": [\"U-AGG\"]"), "{json}");
        // Balanced braces/brackets as a cheap structural check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
