//! The static inter-profile conflict graph and worst-case damage closure.
//!
//! Nodes are [`TxnProfile`]s; an edge `Q → P` ("Q depends on P") exists
//! whenever a concrete transaction of class Q *could* pick up a
//! dependency on a committed transaction of class P — the static
//! over-approximation of the dynamic `trans_dep` graph the repair tool
//! reconstructs at intrusion time:
//!
//! * **Read-write**: Q `SELECT`s from a table P writes (the proxy's
//!   online harvest edge);
//! * **Write-write**: Q updates or deletes in a table P writes (the log
//!   pre-image edge — Q's pure inserts create no pre-image, exactly as
//!   the dynamic tracker sees them).
//!
//! Both are row-conservative: any write to a table is assumed to reach
//! any read of it. False-dependency pruning mirrors the repair tool's
//! [`IgnoreDerivedColumns`] rule, but *strictly more weakly*: an edge
//! provenance is pruned only when the writer profile provably changes
//! nothing beyond derivable columns of the table (no inserts, no
//! deletes, resolvable update targets) and — for read edges — the
//! reader's resolved columns are disjoint from them. Since a profile's
//! footprint over-approximates every concrete transaction, every edge
//! the dynamic graph keeps has a static counterpart that is kept too;
//! the closure computed here bounds the runtime damage closure from
//! above. The VOPR soundness oracle checks that inclusion on every
//! fuzzed scenario.
//!
//! [`IgnoreDerivedColumns`]: crate::infer_derivable_columns

use std::collections::{BTreeMap, BTreeSet};

use crate::dot::{DotBuilder, EdgeStyle, FILL_ATTACK, FILL_CLOSURE};
use crate::profile::TxnProfile;
use crate::{is_tracking_column, ColumnSet, DerivableColumn};

/// How a static conflict edge arises (mirror of the dynamic
/// `EdgeKind`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictKind {
    /// The dependent profile `SELECT`s from the mediating table.
    Read {
        /// Columns the dependent reads there.
        read: ColumnSet,
    },
    /// The dependent profile updates or deletes in the mediating table.
    Write,
}

/// One table-level reason an edge exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictProvenance {
    /// Mediating table.
    pub table: String,
    /// Conflict shape.
    pub kind: ConflictKind,
    /// Whether the derivable-column rules dismiss this provenance.
    pub pruned: bool,
}

/// One edge of the conflict graph: `dependent` depends on `dependee`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEdge {
    /// The profile that would pick up the dependency (Q).
    pub dependent: String,
    /// The profile whose writes it would depend on (P).
    pub dependee: String,
    /// Every table-level reason for the edge.
    pub provenances: Vec<ConflictProvenance>,
    /// Whether every provenance is pruned (the edge vanishes under
    /// false-dependency rules).
    pub pruned: bool,
}

impl ProfileEdge {
    /// The mediating tables, deduplicated in order.
    pub fn tables(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        self.provenances
            .iter()
            .filter(|p| seen.insert(p.table.as_str()))
            .map(|p| p.table.as_str())
            .collect()
    }
}

/// The static conflict graph over a set of transaction profiles.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    profiles: Vec<TxnProfile>,
    /// (dependee index, dependent index) → edge, key-ordered for
    /// deterministic iteration.
    edges: BTreeMap<(usize, usize), ProfileEdge>,
    /// table → derivable columns (lower-cased), the pruning vocabulary.
    derivable: BTreeMap<String, BTreeSet<String>>,
}

/// Whether profile `p` provably changes nothing beyond `derivable`
/// columns in `table` — the static analog of the dynamic rule's
/// writer-side condition.
fn writer_prunable(
    p: &TxnProfile,
    table: &str,
    derivable: &BTreeMap<String, BTreeSet<String>>,
) -> bool {
    let Some(fp) = p.writes.get(table) else {
        return false;
    };
    if fp.inserts || fp.deletes {
        return false; // inserted/deleted rows are real dependencies
    }
    let Some(cols) = fp.updated.as_ref().and_then(ColumnSet::columns) else {
        return false; // unresolvable update targets: assume every column
    };
    let Some(derived) = derivable.get(table) else {
        return false;
    };
    cols.iter()
        .filter(|c| !is_tracking_column(c))
        .all(|c| derived.contains(c.as_str()))
}

impl ConflictGraph {
    /// Builds the graph over `profiles`, pruning against `derivable`
    /// (typically [`crate::infer_derivable_columns`] over the same
    /// corpus the profiles came from).
    pub fn build(profiles: Vec<TxnProfile>, derivable: &[DerivableColumn]) -> ConflictGraph {
        let mut derived: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for c in derivable {
            derived
                .entry(c.table.to_ascii_lowercase())
                .or_default()
                .insert(c.column.to_ascii_lowercase());
        }

        let mut edges = BTreeMap::new();
        for (pi, p) in profiles.iter().enumerate() {
            for table in p.writes.keys() {
                let w_prunable = writer_prunable(p, table, &derived);
                let derived_cols = derived.get(table);
                for (qi, q) in profiles.iter().enumerate() {
                    if qi == pi {
                        continue;
                    }
                    let mut provs: Vec<ConflictProvenance> = Vec::new();
                    if let Some(read) = q.reads.get(table) {
                        let read_prunable = read.columns().is_some_and(|cols| {
                            !cols.is_empty()
                                && derived_cols
                                    .is_some_and(|d| cols.iter().all(|c| !d.contains(c.as_str())))
                        });
                        provs.push(ConflictProvenance {
                            table: table.clone(),
                            kind: ConflictKind::Read { read: read.clone() },
                            pruned: w_prunable && read_prunable,
                        });
                    }
                    if let Some(fq) = q.writes.get(table) {
                        if fq.updated.is_some() || fq.deletes {
                            provs.push(ConflictProvenance {
                                table: table.clone(),
                                kind: ConflictKind::Write,
                                pruned: w_prunable,
                            });
                        }
                    }
                    if provs.is_empty() {
                        continue;
                    }
                    let edge = edges.entry((pi, qi)).or_insert_with(|| ProfileEdge {
                        dependent: q.name.clone(),
                        dependee: p.name.clone(),
                        provenances: Vec::new(),
                        pruned: true,
                    });
                    edge.provenances.extend(provs);
                    edge.pruned = edge.provenances.iter().all(|p| p.pruned);
                }
            }
        }
        ConflictGraph {
            profiles,
            edges,
            derivable: derived,
        }
    }

    /// The profiles (graph nodes), in name order.
    pub fn profiles(&self) -> &[TxnProfile] {
        &self.profiles
    }

    /// The profile named `name`, if present.
    pub fn profile(&self, name: &str) -> Option<&TxnProfile> {
        self.profiles.iter().find(|p| p.name == name)
    }

    /// Every edge, in deterministic (dependee, dependent) order.
    pub fn edges(&self) -> impl Iterator<Item = &ProfileEdge> {
        self.edges.values()
    }

    /// Count of edges dismissed entirely by the derivable-column rules.
    pub fn pruned_edge_count(&self) -> usize {
        self.edges.values().filter(|e| e.pruned).count()
    }

    /// The derivable columns the graph was pruned against, as
    /// `table → columns`.
    pub fn derivable(&self) -> &BTreeMap<String, BTreeSet<String>> {
        &self.derivable
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.profiles.iter().position(|p| p.name == name)
    }

    /// The worst-case transitive damage closure: `seeds` plus every
    /// profile reachable over dependent edges. With `use_rules`, edges
    /// fully dismissed by the derivable-column rules are skipped —
    /// mirroring a repair run with false-dependency pruning enabled;
    /// without, every edge counts (the bound for an unpruned repair).
    /// Seed names not in the graph are kept in the result (closure of an
    /// unknown profile is itself), matching the dynamic graph's closure
    /// semantics for disconnected nodes.
    pub fn closure<S: AsRef<str>>(&self, seeds: &[S], use_rules: bool) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = seeds.iter().map(|s| s.as_ref().to_string()).collect();
        let mut frontier: Vec<usize> = seeds
            .iter()
            .filter_map(|s| self.index_of(s.as_ref()))
            .collect();
        let mut visited: BTreeSet<usize> = frontier.iter().copied().collect();
        while let Some(pi) = frontier.pop() {
            for ((dependee, dependent), edge) in &self.edges {
                if *dependee != pi || visited.contains(dependent) {
                    continue;
                }
                if use_rules && edge.pruned {
                    continue;
                }
                visited.insert(*dependent);
                out.insert(self.profiles[*dependent].name.clone());
                frontier.push(*dependent);
            }
        }
        out
    }

    /// The damaged surface of a closure: every `table.column` the
    /// closure's profiles can write, `table.*` where a profile touches
    /// whole rows (inserts, deletes, unresolvable updates). Tracking
    /// bookkeeping columns are excluded — they are the mechanism, not
    /// client data.
    pub fn damage_surface(&self, closure: &BTreeSet<String>) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for p in self.profiles.iter().filter(|p| closure.contains(&p.name)) {
            for (table, fp) in &p.writes {
                match fp.damaged_columns() {
                    Some(cols) => out.extend(
                        cols.iter()
                            .filter(|c| !is_tracking_column(c))
                            .map(|c| format!("{table}.{c}")),
                    ),
                    None => {
                        out.insert(format!("{table}.*"));
                    }
                }
            }
        }
        out
    }

    /// Renders the graph in the workspace's styled DOT vocabulary:
    /// `seeds` red, other `closure` members orange, edges labelled with
    /// their mediating tables, rule-dismissed edges dashed gray
    /// `pruned`. Edges are drawn dependee → dependent (the dataflow
    /// direction, as in the repair tool's exports).
    pub fn to_dot(&self, seeds: &BTreeSet<String>, closure: Option<&BTreeSet<String>>) -> String {
        let mut dot = DotBuilder::new("conflict_profiles");
        for (i, p) in self.profiles.iter().enumerate() {
            let fill = if seeds.contains(&p.name) {
                Some(FILL_ATTACK)
            } else if closure.is_some_and(|c| c.contains(&p.name)) {
                Some(FILL_CLOSURE)
            } else {
                None
            };
            dot.node(&format!("p{i}"), &p.name, fill);
        }
        for ((dependee, dependent), edge) in &self.edges {
            let style = if edge.pruned {
                EdgeStyle::pruned()
            } else {
                EdgeStyle::labelled(edge.tables().join(","))
            };
            dot.edge(
                &format!("p{dependee}"),
                &format!("p{dependent}"),
                Some(&style),
            );
        }
        dot.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TxnProfile;

    fn profile(name: &str, statements: &[&str]) -> TxnProfile {
        TxnProfile::from_sql(name, statements)
    }

    fn derivable(pairs: &[(&str, &str)]) -> Vec<DerivableColumn> {
        pairs
            .iter()
            .map(|(t, c)| DerivableColumn {
                table: t.to_string(),
                column: c.to_string(),
            })
            .collect()
    }

    fn graph() -> ConflictGraph {
        // The paper's scenario in miniature: Payment only bumps w_ytd;
        // NewOrder reads w_tax (a false dependency); Report reads w_ytd
        // (a true one); Audit deletes warehouse rows.
        let profiles = vec![
            profile("Audit", &["DELETE FROM warehouse WHERE w_id = 9"]),
            profile(
                "NewOrder",
                &[
                    "SELECT w_tax FROM warehouse WHERE w_id = 1",
                    "INSERT INTO orders (o_id) VALUES (1)",
                ],
            ),
            profile(
                "Payment",
                &["UPDATE warehouse SET w_ytd = w_ytd + 5 WHERE w_id = 1"],
            ),
            profile("Report", &["SELECT w_ytd FROM warehouse WHERE w_id = 1"]),
        ];
        ConflictGraph::build(profiles, &derivable(&[("warehouse", "w_ytd")]))
    }

    fn closure_of(g: &ConflictGraph, seed: &str, rules: bool) -> BTreeSet<String> {
        g.closure(&[seed], rules)
    }

    #[test]
    fn read_write_edges_exist_and_prune_matches_dynamic_rule() {
        let g = graph();
        // Unpruned: Payment's warehouse write reaches both readers.
        let c = closure_of(&g, "Payment", false);
        assert!(c.contains("NewOrder") && c.contains("Report"));
        // With rules: the w_tax read is a false dependency, the w_ytd
        // read a true one.
        let c = closure_of(&g, "Payment", true);
        assert!(!c.contains("NewOrder"), "{c:?}");
        assert!(c.contains("Report"));
    }

    #[test]
    fn deleting_writer_is_never_prunable() {
        let g = graph();
        let c = closure_of(&g, "Audit", true);
        // Audit deletes whole rows: both readers stay dependent, and so
        // does Payment (write-write on warehouse).
        assert!(c.contains("NewOrder") && c.contains("Report") && c.contains("Payment"));
    }

    #[test]
    fn write_write_edges_skip_pure_inserters() {
        let g = graph();
        // Payment updates warehouse; Audit deletes there → WW edge.
        assert!(g
            .edges()
            .any(|e| e.dependent == "Audit" && e.dependee == "Payment"));
        // NewOrder only *inserts* into orders; nobody else touches
        // orders, and NewOrder's warehouse contact is read-only → no
        // edge NewOrder → NewOrder-style WW artifacts.
        assert!(!g.edges().any(|e| e.dependent == "NewOrder"
            && e.provenances
                .iter()
                .any(|p| p.table == "orders" && matches!(p.kind, ConflictKind::Write))));
    }

    #[test]
    fn unknown_seed_closure_is_itself() {
        let g = graph();
        let c = closure_of(&g, "Nope", true);
        assert_eq!(c, ["Nope".to_string()].into_iter().collect());
    }

    #[test]
    fn damage_surface_lists_columns_and_whole_tables() {
        let g = graph();
        let c = closure_of(&g, "Payment", false);
        let s = g.damage_surface(&c);
        assert!(s.contains("warehouse.w_ytd"));
        assert!(s.contains("orders.*")); // NewOrder's insert
        assert!(!s.iter().any(|x| x.starts_with("item.")));
    }

    #[test]
    fn wildcard_reader_edges_survive_rules() {
        let profiles = vec![
            profile("Payment", &["UPDATE warehouse SET w_ytd = w_ytd + 5"]),
            profile("Scan", &["SELECT * FROM warehouse"]),
        ];
        let g = ConflictGraph::build(profiles, &derivable(&[("warehouse", "w_ytd")]));
        let c = g.closure(&["Payment"], true);
        assert!(c.contains("Scan"));
    }

    #[test]
    fn dot_export_styles_seeds_closure_and_pruned_edges() {
        let g = graph();
        let seeds: BTreeSet<String> = ["Payment".to_string()].into_iter().collect();
        let closure = g.closure(&["Payment"], true);
        let dot = g.to_dot(&seeds, Some(&closure));
        assert!(dot.contains("label=\"Payment\", style=filled, fillcolor=indianred1"));
        assert!(dot.contains("label=\"Report\", style=filled, fillcolor=orange"));
        assert!(dot.contains("[style=dashed, color=gray, label=\"pruned\"]"));
        assert!(dot.contains("label=\"warehouse\""));
    }
}
