//! Shared GraphViz DOT emission.
//!
//! One builder behind every DOT export in the workspace — the repair
//! tool's dependency-graph renderings (`DepGraph::to_dot_styled`,
//! `Analysis::to_dot_forensic`) and the static conflict-graph exporter
//! here — so the styling vocabulary (attack red, closure orange, pruned
//! dashed gray) is defined once and the outputs stay byte-compatible
//! with the formats the explorer tools and tests already consume.

use std::fmt::Write as _;

/// Fill color for attack-set nodes.
pub const FILL_ATTACK: &str = "indianred1";
/// Fill color for transitively damaged (closure) nodes.
pub const FILL_CLOSURE: &str = "orange";

/// Styling of one edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeStyle {
    /// Draw dashed.
    pub dashed: bool,
    /// Stroke color.
    pub color: Option<&'static str>,
    /// Edge label.
    pub label: Option<String>,
}

impl EdgeStyle {
    /// The style of an edge dismissed by false-dependency rules: dashed,
    /// gray, labelled `pruned`.
    pub fn pruned() -> EdgeStyle {
        EdgeStyle {
            dashed: true,
            color: Some("gray"),
            label: Some("pruned".into()),
        }
    }

    /// A plain labelled edge.
    pub fn labelled(label: impl Into<String>) -> EdgeStyle {
        EdgeStyle {
            dashed: false,
            color: None,
            label: Some(label.into()),
        }
    }
}

/// Incremental DOT writer for directed graphs.
#[derive(Debug)]
pub struct DotBuilder {
    out: String,
}

impl DotBuilder {
    /// Opens `digraph <name>` with the house defaults (top-to-bottom
    /// ranking, ellipse nodes).
    pub fn new(name: &str) -> DotBuilder {
        DotBuilder {
            out: format!("digraph {name} {{\n  rankdir=TB;\n  node [shape=ellipse];\n"),
        }
    }

    /// Emits one node. `fill` of `Some(color)` renders it filled.
    pub fn node(&mut self, id: &str, label: &str, fill: Option<&str>) {
        let style = match fill {
            Some(color) => format!(", style=filled, fillcolor={color}"),
            None => String::new(),
        };
        let _ = writeln!(
            self.out,
            "  {id} [label=\"{}\"{style}];",
            escape_label(label)
        );
    }

    /// Emits one edge `from -> to`, with optional styling.
    pub fn edge(&mut self, from: &str, to: &str, style: Option<&EdgeStyle>) {
        let attrs = style.map(render_edge_attrs).unwrap_or_default();
        let _ = writeln!(self.out, "  {from} -> {to}{attrs};");
    }

    /// Closes the graph and returns the DOT text.
    pub fn finish(mut self) -> String {
        self.out.push_str("}\n");
        self.out
    }
}

fn render_edge_attrs(style: &EdgeStyle) -> String {
    let mut attrs: Vec<String> = Vec::new();
    if style.dashed {
        attrs.push("style=dashed".into());
    }
    if let Some(color) = style.color {
        attrs.push(format!("color={color}"));
    }
    if let Some(label) = &style.label {
        attrs.push(format!("label=\"{}\"", escape_label(label)));
    }
    if attrs.is_empty() {
        String::new()
    } else {
        format!(" [{}]", attrs.join(", "))
    }
}

/// Escapes a string for use inside a double-quoted DOT attribute.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_reproduces_repair_tool_format() {
        // Byte format the repair tool's tests and the trace explorer
        // consume: this must not drift.
        let mut dot = DotBuilder::new("trans_dep");
        dot.node("t1", "Order_0_3_0_4", Some(FILL_ATTACK));
        dot.node("t2", "Payment_0_3_0_5", None);
        dot.node("t3", "txn_3", Some(FILL_CLOSURE));
        dot.edge("t1", "t2", None);
        dot.edge("t1", "t3", Some(&EdgeStyle::pruned()));
        let out = dot.finish();
        assert_eq!(
            out,
            "digraph trans_dep {\n\
             \x20 rankdir=TB;\n\
             \x20 node [shape=ellipse];\n\
             \x20 t1 [label=\"Order_0_3_0_4\", style=filled, fillcolor=indianred1];\n\
             \x20 t2 [label=\"Payment_0_3_0_5\"];\n\
             \x20 t3 [label=\"txn_3\", style=filled, fillcolor=orange];\n\
             \x20 t1 -> t2;\n\
             \x20 t1 -> t3 [style=dashed, color=gray, label=\"pruned\"];\n\
             }\n"
        );
    }

    #[test]
    fn labels_are_escaped() {
        let mut dot = DotBuilder::new("g");
        dot.node("n1", "say \"hi\"", None);
        dot.edge("n1", "n1", Some(&EdgeStyle::labelled("a\\b")));
        let out = dot.finish();
        assert!(out.contains("label=\"say \\\"hi\\\"\""));
        assert!(out.contains("label=\"a\\\\b\""));
    }

    #[test]
    fn labelled_edge_without_dash_or_color() {
        let mut dot = DotBuilder::new("g");
        dot.edge("a", "b", Some(&EdgeStyle::labelled("customer")));
        assert!(dot.finish().contains("  a -> b [label=\"customer\"];\n"));
    }
}
