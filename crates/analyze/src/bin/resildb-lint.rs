//! Workload trackability linter.
//!
//! Classifies every statement of a SQL workload against the rewriting
//! proxy's soundness contract and reports coverage, reason histograms and
//! inferred derivable (false-dependency) columns. With no input files the
//! built-in TPC-C corpus is linted, which is what the CI coverage gate
//! runs.
//!
//! The `blast-radius` subcommand lifts the analysis from statements to
//! transaction profiles: it computes the static inter-profile conflict
//! graph and, per profile, the worst-case transitive damage closure a
//! compromise of that profile could cause (see DESIGN.md §15).
//!
//! ```text
//! resildb-lint [OPTIONS] [FILE...]
//!
//!   FILE                 workload file, one SQL statement per line
//!                        (blank lines and `--` comments ignored);
//!                        omitted = built-in TPC-C corpus
//!   --json               machine-readable JSON report on stdout
//!   --verbose            list every non-sound statement
//!   --granularity <g>    row (default) or column
//!   --min-coverage <f>   fail (exit 1) if sound coverage < f (0..=1)
//!   --baseline <file>    read the minimum coverage from a baseline file
//!                        (first non-comment line, a fraction in 0..=1)
//!
//! resildb-lint blast-radius [OPTIONS] [FILE...]
//!
//!   FILE                 workload file as above; transactions are grouped
//!                        at BEGIN/COMMIT boundaries. Omitted = built-in
//!                        TPC-C corpus with its five transaction classes.
//!   --json               machine-readable closure report on stdout
//!                        (also the CI baseline format)
//!   --dot                styled Graphviz conflict graph on stdout
//!   --seed <profile>     highlight <profile>'s damage closure in --dot
//!   --verbose            add per-profile footprints and the edge list
//!   --baseline <file>    gate closures against a JSON baseline: exit 1
//!                        on closure growth, exit 2 if the baseline is
//!                        missing or unparseable (never silently skipped)
//! ```
//!
//! Exit status: 0 on success, 1 when coverage falls below the requested
//! minimum or a closure grew beyond the baseline, 2 on usage or I/O
//! errors (including unreadable baselines).

use std::process::ExitCode;

use resildb_analyze::{group_transactions, Analyzer, BlastRadius, CoverageReport, Granularity};

struct Options {
    files: Vec<String>,
    json: bool,
    verbose: bool,
    granularity: Granularity,
    min_coverage: Option<f64>,
}

fn usage() -> String {
    "usage: resildb-lint [--json] [--verbose] [--granularity row|column] \
     [--min-coverage <0..1>] [--baseline <file>] [FILE...]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        json: false,
        verbose: false,
        granularity: Granularity::Row,
        min_coverage: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--granularity" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--granularity needs a value".to_string())?;
                opts.granularity = match v.as_str() {
                    "row" => Granularity::Row,
                    "column" => Granularity::Column,
                    other => return Err(format!("unknown granularity `{other}`")),
                };
            }
            "--min-coverage" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--min-coverage needs a value".to_string())?;
                let f: f64 = v.parse().map_err(|_| format!("invalid coverage `{v}`"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("coverage `{v}` not in 0..=1"));
                }
                opts.min_coverage = Some(f);
            }
            "--baseline" => {
                let path = it
                    .next()
                    .ok_or_else(|| "--baseline needs a file".to_string())?;
                opts.min_coverage = Some(read_baseline(path)?);
            }
            "--help" | "-h" => return Err(usage()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{}", usage()))
            }
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(opts)
}

/// Reads a baseline file: the first line that is neither blank nor a `#`
/// comment must parse as a fraction in `0..=1`.
fn read_baseline(path: &str) -> Result<f64, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: f64 = line
            .parse()
            .map_err(|_| format!("baseline {path}: invalid fraction `{line}`"))?;
        if !(0.0..=1.0).contains(&f) {
            return Err(format!("baseline {path}: `{line}` not in 0..=1"));
        }
        return Ok(f);
    }
    Err(format!("baseline {path}: no coverage line found"))
}

/// Loads a workload file: one statement per line, blank lines and `--`
/// comment lines skipped, trailing `;` trimmed.
fn load_workload(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("--"))
        .map(|l| l.trim_end_matches(';').trim_end().to_string())
        .collect())
}

struct BlastOptions {
    files: Vec<String>,
    json: bool,
    dot: bool,
    seed: Option<String>,
    verbose: bool,
    baseline: Option<String>,
}

fn blast_usage() -> String {
    "usage: resildb-lint blast-radius [--json] [--dot] [--seed <profile>] \
     [--verbose] [--baseline <file>] [FILE...]"
        .to_string()
}

fn parse_blast_args(args: &[String]) -> Result<BlastOptions, String> {
    let mut opts = BlastOptions {
        files: Vec::new(),
        json: false,
        dot: false,
        seed: None,
        verbose: false,
        baseline: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--dot" => opts.dot = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--seed needs a profile".to_string())?;
                opts.seed = Some(v.clone());
            }
            "--baseline" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--baseline needs a file".to_string())?;
                opts.baseline = Some(v.clone());
            }
            "--help" | "-h" => return Err(blast_usage()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{}", blast_usage()))
            }
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(opts)
}

fn run_blast(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_blast_args(args)?;
    let (groups, corpus) = if opts.files.is_empty() {
        // Built-in corpus: the five TPC-C transaction classes, plus the
        // DDL so schema reconstruction and derivability inference work.
        (
            resildb_tpcc::profiled_corpus(),
            resildb_tpcc::statement_corpus(),
        )
    } else {
        let mut flat = Vec::new();
        for f in &opts.files {
            flat.extend(load_workload(f)?);
        }
        let (groups, _ambient) = group_transactions(&flat);
        (groups, flat)
    };
    if groups.is_empty() {
        return Err("no transactions found (BEGIN/COMMIT blocks or built-in corpus)".to_string());
    }
    let blast = BlastRadius::compute(&groups, &corpus);
    if let Some(seed) = &opts.seed {
        if blast.graph.profile(seed).is_none() {
            return Err(format!("--seed: no profile named `{seed}`"));
        }
    }
    if opts.dot {
        let seeds: std::collections::BTreeSet<String> = opts.seed.iter().cloned().collect();
        let closure = opts
            .seed
            .as_ref()
            .map(|s| blast.graph.closure(&[s.as_str()], true));
        print!("{}", blast.graph.to_dot(&seeds, closure.as_ref()));
    } else if opts.json {
        print!("{}", blast.render_json());
    } else {
        print!("{}", blast.render_text(opts.verbose));
    }
    if let Some(path) = &opts.baseline {
        // A missing or corrupt baseline must fail loudly (exit 2): a gate
        // that silently skips itself is worse than no gate.
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let verdict = blast
            .check_baseline(&text)
            .map_err(|e| format!("baseline {path}: {e}"))?;
        for w in &verdict.warnings {
            eprintln!("warning: {w}");
        }
        if !verdict.passed() {
            for e in &verdict.errors {
                eprintln!("FAIL: {e}");
            }
            eprintln!(
                "blast radius grew beyond {path}; review the new closure and regenerate \
                 the baseline with `resildb-lint blast-radius --json`"
            );
            return Ok(ExitCode::from(1));
        }
        eprintln!("OK: blast radius within baseline {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.first().map(String::as_str) == Some("blast-radius") {
        return run_blast(&args[1..]);
    }
    let opts = parse_args(args)?;
    let corpus: Vec<String> = if opts.files.is_empty() {
        resildb_tpcc::statement_corpus()
    } else {
        let mut all = Vec::new();
        for f in &opts.files {
            all.extend(load_workload(f)?);
        }
        all
    };
    let analyzer = Analyzer::new(opts.granularity);
    let report = CoverageReport::analyze(&analyzer, &corpus);
    if opts.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text(opts.verbose));
    }
    if let Some(min) = opts.min_coverage {
        let got = report.sound_coverage();
        if got < min {
            eprintln!(
                "FAIL: sound coverage {:.2}% below required {:.2}%",
                got * 100.0,
                min * 100.0
            );
            return Ok(ExitCode::from(1));
        }
        eprintln!(
            "OK: sound coverage {:.2}% >= required {:.2}%",
            got * 100.0,
            min * 100.0
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
