//! Workload trackability linter.
//!
//! Classifies every statement of a SQL workload against the rewriting
//! proxy's soundness contract and reports coverage, reason histograms and
//! inferred derivable (false-dependency) columns. With no input files the
//! built-in TPC-C corpus is linted, which is what the CI coverage gate
//! runs.
//!
//! ```text
//! resildb-lint [OPTIONS] [FILE...]
//!
//!   FILE                 workload file, one SQL statement per line
//!                        (blank lines and `--` comments ignored);
//!                        omitted = built-in TPC-C corpus
//!   --json               machine-readable JSON report on stdout
//!   --verbose            list every non-sound statement
//!   --granularity <g>    row (default) or column
//!   --min-coverage <f>   fail (exit 1) if sound coverage < f (0..=1)
//!   --baseline <file>    read the minimum coverage from a baseline file
//!                        (first non-comment line, a fraction in 0..=1)
//! ```
//!
//! Exit status: 0 on success, 1 when coverage falls below the requested
//! minimum, 2 on usage or I/O errors.

use std::process::ExitCode;

use resildb_analyze::{Analyzer, CoverageReport, Granularity};

struct Options {
    files: Vec<String>,
    json: bool,
    verbose: bool,
    granularity: Granularity,
    min_coverage: Option<f64>,
}

fn usage() -> String {
    "usage: resildb-lint [--json] [--verbose] [--granularity row|column] \
     [--min-coverage <0..1>] [--baseline <file>] [FILE...]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        json: false,
        verbose: false,
        granularity: Granularity::Row,
        min_coverage: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--granularity" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--granularity needs a value".to_string())?;
                opts.granularity = match v.as_str() {
                    "row" => Granularity::Row,
                    "column" => Granularity::Column,
                    other => return Err(format!("unknown granularity `{other}`")),
                };
            }
            "--min-coverage" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--min-coverage needs a value".to_string())?;
                let f: f64 = v.parse().map_err(|_| format!("invalid coverage `{v}`"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("coverage `{v}` not in 0..=1"));
                }
                opts.min_coverage = Some(f);
            }
            "--baseline" => {
                let path = it
                    .next()
                    .ok_or_else(|| "--baseline needs a file".to_string())?;
                opts.min_coverage = Some(read_baseline(path)?);
            }
            "--help" | "-h" => return Err(usage()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{}", usage()))
            }
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(opts)
}

/// Reads a baseline file: the first line that is neither blank nor a `#`
/// comment must parse as a fraction in `0..=1`.
fn read_baseline(path: &str) -> Result<f64, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: f64 = line
            .parse()
            .map_err(|_| format!("baseline {path}: invalid fraction `{line}`"))?;
        if !(0.0..=1.0).contains(&f) {
            return Err(format!("baseline {path}: `{line}` not in 0..=1"));
        }
        return Ok(f);
    }
    Err(format!("baseline {path}: no coverage line found"))
}

/// Loads a workload file: one statement per line, blank lines and `--`
/// comment lines skipped, trailing `;` trimmed.
fn load_workload(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("--"))
        .map(|l| l.trim_end_matches(';').trim_end().to_string())
        .collect())
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_args(args)?;
    let corpus: Vec<String> = if opts.files.is_empty() {
        resildb_tpcc::statement_corpus()
    } else {
        let mut all = Vec::new();
        for f in &opts.files {
            all.extend(load_workload(f)?);
        }
        all
    };
    let analyzer = Analyzer::new(opts.granularity);
    let report = CoverageReport::analyze(&analyzer, &corpus);
    if opts.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text(opts.verbose));
    }
    if let Some(min) = opts.min_coverage {
        let got = report.sound_coverage();
        if got < min {
            eprintln!(
                "FAIL: sound coverage {:.2}% below required {:.2}%",
                got * 100.0,
                min * 100.0
            );
            return Ok(ExitCode::from(1));
        }
        eprintln!(
            "OK: sound coverage {:.2}% >= required {:.2}%",
            got * 100.0,
            min * 100.0
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
